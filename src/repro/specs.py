"""Typed, declarative experiment specs — the public configuration layer.

Every way of driving this repo — a single evaluation batch, a scheme x
model x quant grid, or the multi-tenant serving gateway — is described
by one of the frozen dataclasses below and executed through
:func:`repro.session.open_session`.  Specs are:

* **validated** at construction (fail fast, before any heavy work);
* **serializable** — ``to_dict()`` produces a plain JSON-compatible
  dict and ``from_dict()`` reconstructs an equal spec, nested specs
  included;
* **picklable** — they cross the process-pool boundary untouched
  (they hold only strings, numbers and tuples; see the pickling
  boundary notes in ROADMAP.md).

This module imports nothing heavy, so ``from repro import AgentSpec``
stays cheap.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any


def _encode(value: Any) -> Any:
    """Recursively convert a spec field value to plain JSON-able data."""
    if isinstance(value, _SpecBase):
        return value.to_dict()
    if isinstance(value, tuple):
        return [_encode(item) for item in value]
    return value


@dataclass(frozen=True)
class _SpecBase:
    """Shared ``to_dict``/``from_dict`` machinery for all specs."""

    def to_dict(self) -> dict:
        """Plain-dict form (nested specs become nested dicts)."""
        return {f.name: _encode(getattr(self, f.name))
                for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "_SpecBase":
        """Rebuild a spec from :meth:`to_dict` output.

        Unknown keys raise ``TypeError`` (the dataclass constructor's
        own error), so stale serialized specs fail loudly.
        """
        return cls(**data)

    def replace(self, **changes):
        """A modified copy (frozen specs are edited by replacement)."""
        return dataclasses.replace(self, **changes)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _as_tuple(value) -> tuple:
    if isinstance(value, str):
        return tuple(part for part in value.split(",") if part)
    return tuple(value)


#: description variants a CatalogSpec may select — mirror
#: repro.tools.schema.DESCRIPTION_VARIANTS (kept in sync by
#: tests/test_specs.py) so constructing a spec stays import-free
CATALOG_VARIANTS = ("full", "compressed", "minimal")

#: engines every install ships — mirror the builtin names declared on
#: repro.registry.ENGINES (kept in sync by tests/test_specs.py) so
#: constructing an EngineSpec stays import-free for the common names
ENGINE_BUILTINS = ("simulated", "openai_http")


@dataclass(frozen=True)
class EngineSpec(_SpecBase):
    """Which LLM engine backs an agent, and how to reach it.

    ``name`` resolves through the engine registry
    (:data:`repro.registry.ENGINES`).  The default ``simulated`` engine
    is the deterministic in-process recommender and needs no other
    fields.  ``openai_http`` speaks the OpenAI-compatible
    chat-completions wire format (llama.cpp ``llama-server``, vLLM,
    Ollama, ...) and requires ``base_url``; ``wire_model`` is the model
    name sent on the wire when it differs from the repo's model id.

    The spec holds only plain data — live HTTP clients are constructed
    from it on each side of the process-pool boundary, never pickled.
    """

    name: str = "simulated"
    base_url: str | None = None
    wire_model: str | None = None
    api_key: str | None = None
    timeout_s: float = 30.0
    retries: int = 2
    retry_backoff_ms: float = 100.0
    max_tokens: int = 512
    temperature: float = 0.0

    def __post_init__(self):
        _require(bool(self.name), "EngineSpec.name must be a non-empty string")
        if self.name not in ENGINE_BUILTINS:
            from repro.registry import ENGINES

            # import-free for the builtin names above; an unknown name
            # loads the engine modules to give a definitive answer
            if self.name not in ENGINES:
                raise ValueError(
                    f"unknown engine {self.name!r}; registered engines: "
                    f"{', '.join(ENGINES.names())}")
        _require(self.name != "openai_http" or bool(self.base_url),
                 "EngineSpec(name='openai_http') requires base_url "
                 "(e.g. 'http://127.0.0.1:8080/v1')")
        _require(self.timeout_s > 0.0,
                 f"EngineSpec.timeout_s must be > 0, got {self.timeout_s}")
        _require(self.retries >= 0,
                 f"EngineSpec.retries must be >= 0, got {self.retries}")
        _require(self.retry_backoff_ms >= 0.0,
                 f"EngineSpec.retry_backoff_ms must be >= 0, "
                 f"got {self.retry_backoff_ms}")
        _require(self.max_tokens >= 1,
                 f"EngineSpec.max_tokens must be >= 1, got {self.max_tokens}")
        _require(self.temperature >= 0.0,
                 f"EngineSpec.temperature must be >= 0, got {self.temperature}")

    def build_llm(self, model: str, quant: str):
        """Resolve the engine factory and build the agent-facing LLM."""
        from repro.engines import build_engine_llm

        return build_engine_llm(self, model, quant)


def _coerce_engine(value):
    """Accept an EngineSpec, a bare engine name, or a to_dict() dict."""
    if isinstance(value, str):
        return EngineSpec(value)
    if isinstance(value, dict):
        return EngineSpec.from_dict(value)
    return value


@dataclass(frozen=True)
class CatalogSpec(_SpecBase):
    """Which tool catalog to present, under which description variant.

    ``name`` resolves through the catalog registry
    (:data:`repro.registry.CATALOGS`).  ``variant`` selects the per-tool
    description variant (``full`` | ``compressed`` | ``minimal`` — the
    paper's description-length lever); ``include`` optionally subsets to
    the named tools, preserving the catalog's registration order.
    """

    name: str
    variant: str = "full"
    include: tuple[str, ...] | None = None

    def __post_init__(self):
        _require(bool(self.name), "CatalogSpec.name must be a non-empty string")
        _require(self.variant in CATALOG_VARIANTS,
                 f"CatalogSpec.variant must be one of "
                 f"{', '.join(CATALOG_VARIANTS)}, got {self.variant!r}")
        if self.include is not None:
            object.__setattr__(self, "include", _as_tuple(self.include))
            _require(bool(self.include),
                     "CatalogSpec.include must name at least one tool "
                     "(or be None for the whole catalog)")

    def load(self):
        """Build the :class:`~repro.tools.catalog.ToolCatalog`."""
        from repro.tools.catalog import load_catalog

        return load_catalog(self.name, variant=self.variant,
                            include=self.include)


@dataclass(frozen=True)
class SuiteSpec(_SpecBase):
    """Which benchmark suite to load, and how big a query pool.

    ``name`` resolves through the suite registry
    (:data:`repro.registry.SUITES`), so registered third-party suites
    work everywhere built-ins do.  ``n_queries``/``seed`` default to the
    builder's own defaults (the paper's 230-query mini-batch, seed 0).
    ``catalog`` optionally re-tools the suite onto a
    :class:`CatalogSpec` (e.g. a compressed-variant pool); it is only
    forwarded to builders when set, so suite builders without a
    ``catalog`` parameter keep working.
    """

    name: str
    n_queries: int | None = None
    seed: int | None = None
    catalog: CatalogSpec | None = None

    def __post_init__(self):
        _require(bool(self.name), "SuiteSpec.name must be a non-empty string")
        _require(self.n_queries is None or self.n_queries >= 1,
                 f"SuiteSpec.n_queries must be >= 1, got {self.n_queries}")
        if isinstance(self.catalog, str):
            object.__setattr__(self, "catalog", CatalogSpec(self.catalog))
        elif isinstance(self.catalog, dict):
            object.__setattr__(self, "catalog", CatalogSpec.from_dict(self.catalog))
        _require(self.catalog is None or isinstance(self.catalog, CatalogSpec),
                 f"SuiteSpec.catalog must be a CatalogSpec, "
                 f"got {type(self.catalog).__name__}")

    def load(self):
        """Build the suite (and its catalog, if pinned) via the registries."""
        from repro.suites import load_suite

        catalog = self.catalog.load() if self.catalog is not None else None
        return load_suite(self.name, n_queries=self.n_queries, seed=self.seed,
                          catalog=catalog)


@dataclass(frozen=True)
class AgentSpec(_SpecBase):
    """One agent grid cell: scheme x model x quant, plus scheme knobs.

    ``scheme`` resolves through the scheme registry — ``default``,
    ``gorilla``, ``toolllm``, ``lis`` and the parameterized
    ``lis-k<N>`` forms out of the box.  The optional knobs are forwarded
    to the scheme factory only when set, so a spec carrying just
    ``(scheme, model, quant)`` builds every scheme with its own
    defaults; knobs a scheme does not accept raise its constructor's
    ``TypeError``.
    """

    scheme: str = "lis-k3"
    model: str = "llama3.1-8b"
    quant: str = "q4_K_M"
    k: int | None = None
    confidence_threshold: float | None = None
    force_level: int | None = None
    context_window: int | None = None
    engine: EngineSpec | None = None

    def __post_init__(self):
        _require(bool(self.scheme), "AgentSpec.scheme must be a non-empty string")
        _require(bool(self.model), "AgentSpec.model must be a non-empty string")
        _require(bool(self.quant), "AgentSpec.quant must be a non-empty string")
        object.__setattr__(self, "engine", _coerce_engine(self.engine))
        _require(self.engine is None or isinstance(self.engine, EngineSpec),
                 f"AgentSpec.engine must be an EngineSpec, "
                 f"got {type(self.engine).__name__}")
        _require(self.k is None or self.k >= 1,
                 f"AgentSpec.k must be >= 1, got {self.k}")
        _require(self.force_level is None or self.force_level in (1, 2, 3),
                 f"AgentSpec.force_level must be 1, 2 or 3, got {self.force_level}")
        _require(self.context_window is None or self.context_window >= 1024,
                 f"AgentSpec.context_window must be >= 1024, "
                 f"got {self.context_window}")

    def agent_kwargs(self) -> dict:
        """The scheme-factory kwargs this spec pins (unset knobs omitted)."""
        kwargs = {}
        for name in ("k", "confidence_threshold", "force_level", "context_window"):
            value = getattr(self, name)
            if value is not None:
                kwargs[name] = value
        return kwargs


@dataclass(frozen=True)
class GridSpec(_SpecBase):
    """A scheme x model x quant sweep and how to execute it.

    Axis fields accept any iterable of names (or a comma-separated
    string) and normalize to tuples so the spec stays hashable and
    picklable.  ``backend`` resolves through the grid-backend registry
    (``sequential`` | ``thread`` | ``process`` built in).
    """

    schemes: tuple[str, ...] = ("default", "gorilla", "lis-k3")
    models: tuple[str, ...] = ("llama3.1-8b",)
    quants: tuple[str, ...] = ("q4_K_M",)
    backend: str = "thread"
    workers: int | None = None
    n_queries: int | None = None

    def __post_init__(self):
        for axis in ("schemes", "models", "quants"):
            object.__setattr__(self, axis, _as_tuple(getattr(self, axis)))
            _require(bool(getattr(self, axis)),
                     f"GridSpec.{axis} must name at least one entry")
        _require(bool(self.backend), "GridSpec.backend must be a non-empty string")
        _require(self.workers is None or self.workers >= 1,
                 f"GridSpec.workers must be >= 1, got {self.workers}")
        _require(self.n_queries is None or self.n_queries >= 1,
                 f"GridSpec.n_queries must be >= 1, got {self.n_queries}")

    @property
    def cells(self) -> tuple[tuple[str, str, str], ...]:
        """Every (scheme, model, quant) cell, in execution order."""
        return tuple((scheme, model, quant)
                     for model in self.models
                     for quant in self.quants
                     for scheme in self.schemes)


@dataclass(frozen=True)
class TenantSpec(_SpecBase):
    """One serving tenant: a name bound to a suite and its tool catalog.

    ``catalog`` overrides the suite's own catalog spec for this tenant —
    the declarative form of per-tenant tooling (e.g. one tenant on the
    ``compressed`` variant while another serves ``full``); it is also
    the baseline :meth:`~repro.serving.gateway.Gateway.update_catalog`
    hot-swaps away from.
    """

    name: str
    suite: SuiteSpec
    catalog: CatalogSpec | None = None
    engine: EngineSpec | None = None

    def __post_init__(self):
        _require(bool(self.name), "TenantSpec.name must be a non-empty string")
        if isinstance(self.suite, str):
            object.__setattr__(self, "suite", SuiteSpec(self.suite))
        elif isinstance(self.suite, dict):
            object.__setattr__(self, "suite", SuiteSpec.from_dict(self.suite))
        _require(isinstance(self.suite, SuiteSpec),
                 f"TenantSpec.suite must be a SuiteSpec, got {type(self.suite).__name__}")
        if isinstance(self.catalog, str):
            object.__setattr__(self, "catalog", CatalogSpec(self.catalog))
        elif isinstance(self.catalog, dict):
            object.__setattr__(self, "catalog", CatalogSpec.from_dict(self.catalog))
        _require(self.catalog is None or isinstance(self.catalog, CatalogSpec),
                 f"TenantSpec.catalog must be a CatalogSpec, "
                 f"got {type(self.catalog).__name__}")
        object.__setattr__(self, "engine", _coerce_engine(self.engine))
        _require(self.engine is None or isinstance(self.engine, EngineSpec),
                 f"TenantSpec.engine must be an EngineSpec, "
                 f"got {type(self.engine).__name__}")

    def effective_suite(self) -> SuiteSpec:
        """The suite spec with this tenant's catalog override applied."""
        if self.catalog is None:
            return self.suite
        return self.suite.replace(catalog=self.catalog)


#: trace sinks every install ships — mirror the builtin names declared
#: on repro.registry.TRACE_SINKS (kept in sync by tests/test_specs.py)
#: so constructing an ObsSpec stays import-free for the common names
TRACE_SINK_BUILTINS = ("memory", "jsonl", "null")


@dataclass(frozen=True)
class ObsSpec(_SpecBase):
    """Observability configuration: tracing, sampling, slow-span marking.

    ``sink`` names a registered trace sink
    (:data:`repro.registry.TRACE_SINKS`): ``memory`` retains the last
    ``ring_capacity`` spans queryable by trace id, ``jsonl`` streams one
    JSON span per line to ``sink_path``, ``null`` discards spans (for
    measuring tracer overhead).  ``sample_rate`` selects the fraction of
    requests traced; the decision is derived from the deterministic
    trace id, so the sampled subset is reproducible run-to-run.
    ``slow_span_ms`` marks spans at or above the threshold with a
    ``slow`` attribute.
    """

    sink: str = "memory"
    sink_path: str | None = None
    sample_rate: float = 1.0
    slow_span_ms: float | None = None
    ring_capacity: int = 2048

    def __post_init__(self):
        _require(bool(self.sink), "ObsSpec.sink must be a non-empty string")
        if self.sink not in TRACE_SINK_BUILTINS:
            from repro.registry import TRACE_SINKS

            # import-free for the builtin names above; an unknown name
            # loads the sink module to give a definitive answer
            if self.sink not in TRACE_SINKS:
                raise ValueError(
                    f"unknown trace sink {self.sink!r}; registered trace "
                    f"sinks: {', '.join(TRACE_SINKS.names())}")
        _require(0.0 <= self.sample_rate <= 1.0,
                 f"ObsSpec.sample_rate must be in [0, 1], "
                 f"got {self.sample_rate}")
        _require(self.slow_span_ms is None or self.slow_span_ms > 0.0,
                 f"ObsSpec.slow_span_ms must be > 0 (or None), "
                 f"got {self.slow_span_ms}")
        _require(self.ring_capacity >= 1,
                 f"ObsSpec.ring_capacity must be >= 1, "
                 f"got {self.ring_capacity}")
        _require(self.sink != "jsonl" or bool(self.sink_path),
                 "ObsSpec(sink='jsonl') requires sink_path to name the "
                 "output file")

    def build_tracer(self):
        """Construct the configured :class:`~repro.obs.trace.Tracer`."""
        from repro.obs.trace import build_tracer

        return build_tracer(self)


#: carbon signals every install ships — mirror the builtin names
#: declared on repro.registry.CARBON_SIGNALS (kept in sync by
#: tests/test_specs.py) so constructing a BudgetSpec stays import-free
#: for the common names
CARBON_SIGNAL_BUILTINS = ("static", "sinusoid", "trace")

#: nvpmodel modes, fastest first — mirror of
#: repro.hardware.power_modes.POWER_MODES / repro.power.budget.MODE_LADDER
#: (kept in sync by tests/test_specs.py), import-free for validation
POWER_MODE_NAMES = ("MAXN", "30W", "15W")


@dataclass(frozen=True)
class BudgetSpec(_SpecBase):
    """Carbon/power budget configuration for the serving gateway.

    Threading this through :class:`ServingSpec` makes the gateway build
    an :class:`~repro.power.budget.BudgetController`: tenants whose
    rolling mean joules (``energy_budget_j``) or gCO₂
    (``carbon_budget_g``) per request exceed the budget step down the
    degradation ladder, and while the grid's carbon intensity sits at or
    above ``intensity_high`` the simulated board steps down nvpmodel
    power modes (MAXN → 30W → 15W), both climbing back with hysteresis.

    ``signal`` names a registered carbon signal
    (:data:`repro.registry.CARBON_SIGNALS`): ``static`` holds
    ``intensity_g_per_kwh`` flat, ``sinusoid`` swings ±
    ``intensity_amplitude`` around it over ``period_s``, ``trace``
    replays the grid-intensity CSV at ``trace_path``.  Budget windows
    count requests, not seconds, so the loop is drivable without a
    clock; see :class:`~repro.power.budget.BudgetPolicy` for the knob
    semantics.
    """

    energy_budget_j: float | None = None
    carbon_budget_g: float | None = None
    window_requests: int = 32
    settle_requests: int | None = None
    recovery_ticks: int = 3
    recovery_margin: float = 0.8
    signal: str = "static"
    intensity_g_per_kwh: float = 400.0
    intensity_amplitude: float = 150.0
    period_s: float = 86400.0
    phase_s: float = 0.0
    trace_path: str | None = None
    intensity_high: float | None = None
    intensity_low: float | None = None
    min_power_mode: str = "15W"
    interval_ms: float = 100.0

    def __post_init__(self):
        _require(self.energy_budget_j is not None
                 or self.carbon_budget_g is not None
                 or self.intensity_high is not None,
                 "BudgetSpec needs at least one control: energy_budget_j, "
                 "carbon_budget_g or intensity_high")
        _require(self.energy_budget_j is None or self.energy_budget_j > 0.0,
                 f"BudgetSpec.energy_budget_j must be > 0 (or None), "
                 f"got {self.energy_budget_j}")
        _require(self.carbon_budget_g is None or self.carbon_budget_g > 0.0,
                 f"BudgetSpec.carbon_budget_g must be > 0 (or None), "
                 f"got {self.carbon_budget_g}")
        _require(self.window_requests >= 1,
                 f"BudgetSpec.window_requests must be >= 1, "
                 f"got {self.window_requests}")
        _require(self.settle_requests is None or self.settle_requests >= 1,
                 f"BudgetSpec.settle_requests must be >= 1 (or None), "
                 f"got {self.settle_requests}")
        _require(self.recovery_ticks >= 1,
                 f"BudgetSpec.recovery_ticks must be >= 1, "
                 f"got {self.recovery_ticks}")
        _require(0.0 < self.recovery_margin <= 1.0,
                 f"BudgetSpec.recovery_margin must be in (0, 1], "
                 f"got {self.recovery_margin}")
        if self.signal not in CARBON_SIGNAL_BUILTINS:
            from repro.registry import CARBON_SIGNALS

            # import-free for the builtin names above; an unknown name
            # loads the signal module to give a definitive answer
            if self.signal not in CARBON_SIGNALS:
                raise ValueError(
                    f"unknown carbon signal {self.signal!r}; registered "
                    f"carbon signals: {', '.join(CARBON_SIGNALS.names())}")
        _require(self.intensity_g_per_kwh >= 0.0,
                 f"BudgetSpec.intensity_g_per_kwh must be >= 0, "
                 f"got {self.intensity_g_per_kwh}")
        _require(self.intensity_amplitude >= 0.0,
                 f"BudgetSpec.intensity_amplitude must be >= 0, "
                 f"got {self.intensity_amplitude}")
        _require(self.period_s > 0.0,
                 f"BudgetSpec.period_s must be > 0, got {self.period_s}")
        _require(self.signal != "trace" or bool(self.trace_path),
                 "BudgetSpec(signal='trace') requires trace_path to name "
                 "the grid-intensity CSV")
        _require(self.intensity_high is None or self.intensity_high > 0.0,
                 f"BudgetSpec.intensity_high must be > 0 (or None), "
                 f"got {self.intensity_high}")
        _require(self.intensity_low is None
                 or self.intensity_high is not None,
                 "BudgetSpec.intensity_low requires intensity_high")
        _require(self.intensity_low is None
                 or 0.0 <= self.intensity_low < self.intensity_high,
                 f"BudgetSpec.intensity_low must be in [0, intensity_high), "
                 f"got {self.intensity_low}")
        _require(self.min_power_mode in POWER_MODE_NAMES,
                 f"BudgetSpec.min_power_mode must be one of "
                 f"{', '.join(POWER_MODE_NAMES)}, got {self.min_power_mode!r}")
        _require(self.interval_ms > 0.0,
                 f"BudgetSpec.interval_ms must be > 0, "
                 f"got {self.interval_ms}")

    def to_policy(self):
        """The runtime :class:`~repro.power.budget.BudgetPolicy` equivalent."""
        from repro.power.budget import BudgetPolicy

        return BudgetPolicy.from_spec(self)

    def build_signal(self):
        """Construct the configured carbon signal."""
        from repro.power.signals import build_signal

        return build_signal(self)


@dataclass(frozen=True)
class HttpSpec(_SpecBase):
    """Where the HTTP front door listens.

    ``port=0`` asks the OS for an ephemeral port (tests and benches bind
    this way and read the bound port back from the server).  ``backlog``
    is the listen-socket accept queue — connections beyond it are
    refused by the kernel before they ever reach the gateway's own
    admission control.

    The edge-hardening knobs are off by default: ``api_key`` requires
    ``Authorization: Bearer <key>`` on every endpoint except
    ``/healthz`` (missing/wrong keys get 401); ``rate_limit_rps``
    enforces a per-tenant token bucket on ``POST /v1/call`` (bucket
    capacity ``rate_limit_burst``, default the ceiling of one second of
    refill) answering 429 with a ``Retry-After`` header when drained.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    backlog: int = 128
    api_key: str | None = None
    rate_limit_rps: float | None = None
    rate_limit_burst: int | None = None

    def __post_init__(self):
        _require(bool(self.host), "HttpSpec.host must be a non-empty string")
        _require(0 <= self.port <= 65535,
                 f"HttpSpec.port must be in [0, 65535], got {self.port}")
        _require(self.backlog >= 1,
                 f"HttpSpec.backlog must be >= 1, got {self.backlog}")
        _require(self.api_key is None or bool(self.api_key),
                 "HttpSpec.api_key must be a non-empty string (or None)")
        _require(self.rate_limit_rps is None or self.rate_limit_rps > 0.0,
                 f"HttpSpec.rate_limit_rps must be > 0 (or None), "
                 f"got {self.rate_limit_rps}")
        _require(self.rate_limit_burst is None or self.rate_limit_burst >= 1,
                 f"HttpSpec.rate_limit_burst must be >= 1 (or None), "
                 f"got {self.rate_limit_burst}")
        _require(self.rate_limit_burst is None or self.rate_limit_rps is not None,
                 "HttpSpec.rate_limit_burst requires rate_limit_rps")


@dataclass(frozen=True)
class ServingSpec(_SpecBase):
    """Declarative gateway configuration: tenants + batching + execution.

    The batching/backend fields mirror
    :class:`repro.serving.config.ServingConfig` (see its docstring for
    the tuning guidance); :meth:`to_config` converts.  ``plan_cache_size``
    enables plan-result memoization: up to N ``(tenant, query, scheme,
    model, quant) -> ToolPlan`` entries are reused across requests,
    skipping the recommender + retrieval stage for repeated traffic
    (cached replies are bitwise identical — plans are deterministic per
    query).
    """

    tenants: tuple[TenantSpec, ...] = ()
    default_engine: EngineSpec | None = None
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    queue_capacity: int = 256
    default_scheme: str = "lis-k3"
    default_model: str = "hermes2-pro-8b"
    default_quant: str = "q4_K_M"
    execution_backend: str = "thread"
    execution_workers: int | None = None
    plan_cache_size: int = 0
    timeout_ms: float | None = None
    worker_init_timeout_s: float = 60.0
    execution_retries: int = 2
    retry_backoff_ms: float = 50.0
    slice_timeout_s: float | None = 30.0
    obs: ObsSpec | None = None
    http: HttpSpec | None = None
    budget: BudgetSpec | None = None

    def __post_init__(self):
        tenants = tuple(
            TenantSpec.from_dict(t) if isinstance(t, dict) else t
            for t in self.tenants)
        object.__setattr__(self, "tenants", tenants)
        for tenant in tenants:
            _require(isinstance(tenant, TenantSpec),
                     f"ServingSpec.tenants entries must be TenantSpec, "
                     f"got {type(tenant).__name__}")
        names = [tenant.name for tenant in tenants]
        _require(len(names) == len(set(names)),
                 f"ServingSpec.tenants names must be unique, got {names}")
        # mirror ServingConfig's validation (keep the two in sync) rather
        # than calling to_config(): constructing a spec must stay cheap —
        # importing repro.serving here would drag in the whole stack
        _require(self.max_batch_size >= 1,
                 f"max_batch_size must be >= 1, got {self.max_batch_size}")
        _require(self.max_wait_ms >= 0.0,
                 f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        _require(self.queue_capacity >= 1,
                 f"queue_capacity must be >= 1, got {self.queue_capacity}")
        for field_name in ("default_scheme", "default_model", "default_quant"):
            _require(bool(getattr(self, field_name)),
                     f"ServingSpec.{field_name} must be a non-empty string")
        from repro.registry import SERVING_BACKENDS

        # membership against declared builtin names is import-free; only
        # an unknown name loads the backend modules to report the full list
        if self.execution_backend not in SERVING_BACKENDS:
            raise ValueError(
                f"unknown execution_backend {self.execution_backend!r}; "
                f"registered serving execution backends: "
                f"{', '.join(SERVING_BACKENDS.names())}")
        _require(self.execution_workers is None or self.execution_workers >= 1,
                 f"execution_workers must be >= 1, got {self.execution_workers}")
        _require(self.plan_cache_size >= 0,
                 f"plan_cache_size must be >= 0, got {self.plan_cache_size}")
        _require(self.timeout_ms is None or self.timeout_ms > 0.0,
                 f"timeout_ms must be > 0 (or None), got {self.timeout_ms}")
        _require(self.worker_init_timeout_s > 0.0,
                 f"worker_init_timeout_s must be > 0, "
                 f"got {self.worker_init_timeout_s}")
        _require(self.execution_retries >= 0,
                 f"execution_retries must be >= 0, got {self.execution_retries}")
        _require(self.retry_backoff_ms >= 0.0,
                 f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms}")
        _require(self.slice_timeout_s is None or self.slice_timeout_s > 0.0,
                 f"slice_timeout_s must be > 0 (or None), "
                 f"got {self.slice_timeout_s}")
        if isinstance(self.obs, dict):
            object.__setattr__(self, "obs", ObsSpec.from_dict(self.obs))
        _require(self.obs is None or isinstance(self.obs, ObsSpec),
                 f"ServingSpec.obs must be an ObsSpec, "
                 f"got {type(self.obs).__name__}")
        if isinstance(self.http, dict):
            object.__setattr__(self, "http", HttpSpec.from_dict(self.http))
        _require(self.http is None or isinstance(self.http, HttpSpec),
                 f"ServingSpec.http must be an HttpSpec, "
                 f"got {type(self.http).__name__}")
        if isinstance(self.budget, dict):
            object.__setattr__(self, "budget",
                               BudgetSpec.from_dict(self.budget))
        _require(self.budget is None or isinstance(self.budget, BudgetSpec),
                 f"ServingSpec.budget must be a BudgetSpec, "
                 f"got {type(self.budget).__name__}")
        object.__setattr__(self, "default_engine",
                           _coerce_engine(self.default_engine))
        _require(self.default_engine is None
                 or isinstance(self.default_engine, EngineSpec),
                 f"ServingSpec.default_engine must be an EngineSpec, "
                 f"got {type(self.default_engine).__name__}")

    def to_config(self):
        """The runtime :class:`ServingConfig` equivalent of this spec."""
        from repro.serving.config import ServingConfig

        return ServingConfig(
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            queue_capacity=self.queue_capacity,
            default_scheme=self.default_scheme,
            default_model=self.default_model,
            default_quant=self.default_quant,
            execution_backend=self.execution_backend,
            execution_workers=self.execution_workers,
            plan_cache_size=self.plan_cache_size,
            timeout_ms=self.timeout_ms,
            worker_init_timeout_s=self.worker_init_timeout_s,
            execution_retries=self.execution_retries,
            retry_backoff_ms=self.retry_backoff_ms,
            slice_timeout_s=self.slice_timeout_s,
            obs=self.obs,
            http=self.http,
            budget=self.budget,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ServingSpec":
        data = dict(data)
        data["tenants"] = tuple(
            TenantSpec.from_dict(t) if isinstance(t, dict) else t
            for t in data.get("tenants", ()))
        return cls(**data)


@dataclass(frozen=True)
class ExperimentSpec(_SpecBase):
    """The composite spec: suite + default agent + optional grid/serving.

    Everything is optional so a spec can describe exactly one facet —
    ``ExperimentSpec(suite=...)`` for interactive runs,
    ``ExperimentSpec(serving=...)`` for a gateway — but at least one of
    ``suite`` or ``serving`` must be present.
    """

    suite: SuiteSpec | None = None
    agent: AgentSpec | None = None
    grid: GridSpec | None = None
    serving: ServingSpec | None = None

    def __post_init__(self):
        conversions = (("suite", SuiteSpec), ("agent", AgentSpec),
                       ("grid", GridSpec), ("serving", ServingSpec))
        for name, spec_cls in conversions:
            value = getattr(self, name)
            if isinstance(value, dict):
                object.__setattr__(self, name, spec_cls.from_dict(value))
            elif name == "suite" and isinstance(value, str):
                object.__setattr__(self, name, SuiteSpec(value))
            value = getattr(self, name)
            _require(value is None or isinstance(value, spec_cls),
                     f"ExperimentSpec.{name} must be a {spec_cls.__name__}, "
                     f"got {type(value).__name__}")
        _require(self.suite is not None or self.serving is not None,
                 "ExperimentSpec needs a suite (for run/run_grid) or a "
                 "serving spec (for serve)")

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        return cls(**data)


__all__ = [
    "AgentSpec",
    "BudgetSpec",
    "CatalogSpec",
    "EngineSpec",
    "ExperimentSpec",
    "GridSpec",
    "HttpSpec",
    "ObsSpec",
    "ServingSpec",
    "SuiteSpec",
    "TenantSpec",
]

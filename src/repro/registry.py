"""Plugin registries: string-keyed dispatch for schemes, suites, backends.

Every name→implementation decision in the public surface goes through
one of the registries below, so a third-party scheme, benchmark suite,
execution backend or trace sink plugs in with a one-line decorator
instead of editing core files::

    from repro.registry import register_scheme

    @register_scheme("react")
    def build_react(model, quant, context, **kwargs):
        ...
        return agent

Built-in implementations self-register when their home module is
imported; each registry lists those modules and imports them lazily on
first lookup, so ``import repro.registry`` (and ``import repro``) stays
cheap and the import graph stays acyclic — this module imports nothing
from the rest of the package at module scope.

Unknown names raise a :class:`ValueError` that lists every registered
name, never a bare :class:`KeyError`.
"""

from __future__ import annotations

import importlib
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


class Registry:
    """A string-keyed plugin table with decorator registration.

    Parameters
    ----------
    kind:
        Human-readable entry kind (``"scheme"``, ``"suite"``, ...) used
        in error messages.
    builtin_modules:
        Modules whose import registers the built-in entries.  They are
        imported (once) before the first lookup or listing, so built-ins
        are always visible without eagerly importing the heavy stack.
    builtin_names:
        Names those modules are known to register.  ``in`` checks against
        them succeed *without* triggering the import, so cheap layers
        (spec validation) can vet a name while only ``get()`` — the point
        of actual use — pays for loading the implementation.
    """

    def __init__(self, kind: str, builtin_modules: tuple[str, ...] = (),
                 builtin_names: tuple[str, ...] = ()):
        self.kind = kind
        self._builtin_modules = builtin_modules
        self._builtin_names = frozenset(name.lower() for name in builtin_names)
        self._entries: dict[str, Any] = {}
        # reentrant: importing a builtin module inside _ensure_builtins
        # re-enters the registry through its register() calls
        self._lock = threading.RLock()
        self._builtins_loaded = not builtin_modules
        self._builtins_loading = False

    def _ensure_builtins(self) -> None:
        if self._builtins_loaded:
            return
        with self._lock:
            if self._builtins_loaded or self._builtins_loading:
                # loaded, or a builtin module is looking the registry up
                # mid-import on this thread (the RLock lets it through) —
                # don't recurse into the import
                return
            self._builtins_loading = True
            try:
                for module in self._builtin_modules:
                    importlib.import_module(module)
            finally:
                self._builtins_loading = False
            # only now: a failed import leaves the registry retryable
            # (and the error visible) instead of silently empty, and a
            # concurrent thread blocked on the lock above never observes
            # a half-populated table
            self._builtins_loaded = True

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name: str, obj: Any = None, *, replace: bool = False):
        """Register ``obj`` under ``name`` (case-insensitive).

        With ``obj`` omitted, acts as a decorator::

            @SCHEMES.register("lis")
            def build_lis(...): ...

        Duplicate names raise :class:`ValueError` unless ``replace=True``
        (the hook for plugins that deliberately override a built-in).
        """
        key = name.lower()

        def _install(value: Any) -> Any:
            with self._lock:
                if not replace and key in self._entries:
                    raise ValueError(
                        f"{self.kind} {name!r} is already registered; pass "
                        f"replace=True to override it")
                self._entries[key] = value
            return value

        if obj is None:
            return _install
        return _install(obj)

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests tearing down plugins)."""
        with self._lock:
            self._entries.pop(name.lower(), None)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> Any:
        """Return the entry for ``name`` or raise an actionable error."""
        self._ensure_builtins()
        try:
            return self._entries[name.lower()]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered {self.kind}s: "
                f"{', '.join(self.names()) or '(none)'}") from None

    def names(self) -> list[str]:
        """Sorted registered names."""
        self._ensure_builtins()
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        key = name.lower()
        # declared builtin names answer without importing anything, so
        # spec/config validation stays cheap; only unknown names force
        # the builtin load (to give a definitive answer)
        if key in self._builtin_names or key in self._entries:
            return True
        self._ensure_builtins()
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, entries={self.names()})"


# ----------------------------------------------------------------------
# the public registries
# ----------------------------------------------------------------------
#: scheme name -> agent factory ``f(model, quant, context, **kwargs)``
SCHEMES = Registry("scheme", builtin_modules=(
    "repro.baselines", "repro.core.pipeline"))

#: suite name -> builder ``f(n_queries=..., seed=...) -> BenchmarkSuite``
SUITES = Registry("suite", builtin_modules=("repro.suites",))

#: grid backend name -> ``f(runner, cells, n_queries, max_workers) -> runs``
GRID_BACKENDS = Registry("grid backend", builtin_modules=(
    "repro.evaluation.runner",))

#: serving execution backend name -> ``f(config) -> stage | None``
#: (``None`` means "execute inline on the gateway's batch worker")
SERVING_BACKENDS = Registry("serving execution backend", builtin_modules=(
    "repro.serving.config", "repro.serving.process"),
    builtin_names=("thread", "process"))

#: catalog name -> zero-arg builder returning a
#: :class:`~repro.tools.catalog.ToolCatalog` (full variant).  Resolve via
#: :func:`repro.tools.catalog.load_catalog`, which also applies subsets
#: and description variants.
CATALOGS = Registry("catalog", builtin_modules=(
    "repro.suites.bfcl_catalog", "repro.suites.geoengine_catalog",
    "repro.suites.edgehome", "repro.suites.browser"),
    builtin_names=("bfcl", "geoengine", "edgehome", "browser"))

#: trace sink name -> factory ``f(obs_spec) -> sink`` where the sink
#: satisfies the :class:`~repro.obs.sinks.TraceSink` protocol
#: (``emit(span)``).  Resolved by :func:`repro.obs.trace.build_tracer`
#: when a gateway is configured with an :class:`~repro.specs.ObsSpec`.
TRACE_SINKS = Registry("trace sink", builtin_modules=(
    "repro.obs.sinks",),
    builtin_names=("memory", "jsonl", "null"))

#: engine name -> factory ``f(spec, model, quant) -> llm`` returning an
#: agent-facing LLM (the :class:`~repro.llm.engine.SimulatedLLM`
#: surface: ``model``/``quant``/``name``, ``recommend_tools``,
#: ``execute_step``).  ``spec`` is the :class:`~repro.specs.EngineSpec`
#: carrying connection/decoding knobs.  The ``simulated`` engine is the
#: deterministic default; ``openai_http`` drives any OpenAI-compatible
#: chat-completions server (llama.cpp ``llama-server``, vLLM, Ollama).
ENGINES = Registry("engine", builtin_modules=("repro.engines",),
                   builtin_names=("simulated", "openai_http"))

#: fault hook name -> one-line description of what an injected fault
#: does there.  The chaos harness (:mod:`repro.serving.faults`) fires
#: deterministic faults only at registered hook points, so the set of
#: places a :class:`~repro.serving.faults.FaultPlan` can touch is
#: enumerable — third-party serving stages register theirs here.
FAULT_HOOKS = Registry("fault hook", builtin_modules=(
    "repro.serving.faults",),
    builtin_names=("process.execute", "batch.process", "gateway.group"))

#: carbon signal name -> factory ``f(budget_spec) -> signal`` where the
#: signal satisfies the :mod:`repro.power.signals` protocol
#: (``intensity(t_s) -> gCO₂/kWh``, a pure function of time).  Resolved
#: by :func:`repro.power.signals.build_signal` when a gateway is
#: configured with a :class:`~repro.specs.BudgetSpec`.
CARBON_SIGNALS = Registry("carbon signal", builtin_modules=(
    "repro.power.signals",),
    builtin_names=("static", "sinusoid", "trace"))


def register_scheme(name: str, factory: Callable | None = None, *,
                    replace: bool = False):
    """Register an agent-construction factory for a scheme name.

    The factory signature is ``factory(model, quant, context, **kwargs)``
    where ``context`` is a :class:`SchemeContext` carrying the suite, the
    shared embedder and lazily-built Search Levels.
    """
    return SCHEMES.register(name, factory, replace=replace)


def register_suite(name: str, builder: Callable | None = None, *,
                   replace: bool = False):
    """Register a suite builder ``f(n_queries=..., seed=...)`` by name."""
    return SUITES.register(name, builder, replace=replace)


def register_grid_backend(name: str, runner: Callable | None = None, *,
                          replace: bool = False):
    """Register a grid execution backend for ``run_grid``."""
    return GRID_BACKENDS.register(name, runner, replace=replace)


def register_serving_backend(name: str, factory: Callable | None = None, *,
                             replace: bool = False):
    """Register a serving execution-stage factory ``f(config)``."""
    return SERVING_BACKENDS.register(name, factory, replace=replace)


def register_trace_sink(name: str, factory: Callable | None = None, *,
                        replace: bool = False):
    """Register a trace-sink factory ``f(obs_spec) -> sink``.

    The factory receives the full :class:`~repro.specs.ObsSpec` (ring
    capacity, output path, ...) and returns an object with
    ``emit(span)``; a third-party exporter plugs in here and becomes
    addressable as ``ObsSpec(sink="<name>")``.
    """
    return TRACE_SINKS.register(name, factory, replace=replace)


def register_fault_hook(name: str, description: str | None = None, *,
                        replace: bool = False):
    """Register a chaos-injection hook point by name.

    ``description`` documents what a fired fault does at the hook; the
    fault injector only fires at registered hooks, so chaos suites can
    enumerate (and third-party stages extend) the injectable surface.
    """
    return FAULT_HOOKS.register(name, description, replace=replace)


def register_carbon_signal(name: str, factory: Callable | None = None, *,
                           replace: bool = False):
    """Register a carbon-signal factory ``f(budget_spec) -> signal``.

    The factory receives the full :class:`~repro.specs.BudgetSpec`
    (intensity level, curve shape, trace path, ...) and returns an
    object with ``intensity(t_s) -> float`` (gCO₂/kWh, a pure function
    of time); a third-party grid feed plugs in here and becomes
    addressable as ``BudgetSpec(signal="<name>")``.
    """
    return CARBON_SIGNALS.register(name, factory, replace=replace)


def register_engine(name: str, factory: Callable | None = None, *,
                    replace: bool = False):
    """Register an engine factory ``f(spec, model, quant) -> llm``.

    The factory receives the :class:`~repro.specs.EngineSpec` plus the
    repo-side model/quant names and returns an agent-facing LLM object
    exposing the ``SimulatedLLM`` surface (``model``, ``quant``,
    ``name``, ``recommend_tools``, ``execute_step``).  Engines are
    re-resolved by name on each side of the process-pool boundary, so
    factories must build from the picklable spec alone — never capture
    live sockets at registration time.
    """
    return ENGINES.register(name, factory, replace=replace)


def register_catalog(name: str, builder: Callable | None = None, *,
                     replace: bool = False):
    """Register a tool-catalog builder by name.

    The builder takes no arguments and returns the catalog's **full**
    variant; shrunken variants are derived on load.  Suites declare a
    catalog name instead of constructing tools inline, so replacing a
    registered catalog (``replace=True``) re-tools every suite and
    tenant *built after* the replacement; already-constructed suites
    and live serving tenants keep their catalog — hot-swap those with
    ``Gateway.update_catalog``.
    """
    return CATALOGS.register(name, builder, replace=replace)


# ----------------------------------------------------------------------
# scheme name resolution
# ----------------------------------------------------------------------
@dataclass
class SchemeContext:
    """What a scheme factory may draw on when building an agent.

    ``levels`` is computed on first access (and at most once), so
    schemes that never search — ``default``, ``toolllm`` — don't pay the
    offline Search-Level build.  A context created from a bare suite
    (no ``levels_fn``) builds its own Search Levels on demand, so every
    context can serve every scheme; callers that already hold an offline
    index (the :class:`~repro.evaluation.runner.ExperimentRunner`) pass
    ``levels_fn`` to share it.

    ``engine`` (an :class:`~repro.specs.EngineSpec`, or ``None`` for the
    default simulated engine) names the LLM backend; scheme factories
    construct their LLM through :meth:`build_llm` so every scheme honors
    the engine selection without knowing the engine table.
    """

    suite: Any
    embedder: Any = None
    levels_fn: Callable[[], Any] | None = field(default=None, repr=False)
    engine: Any = None
    _levels: Any = field(default=None, repr=False)

    def build_llm(self, model: str, quant: str):
        """Build the agent-facing LLM for this context's engine.

        ``engine=None`` short-circuits to the simulated engine without
        touching the registry — the default path stays exactly the
        pre-engine-boundary code path.
        """
        if self.engine is None:
            from repro.llm.engine import SimulatedLLM

            return SimulatedLLM.from_registry(model, quant)
        from repro.engines import build_engine_llm

        return build_engine_llm(self.engine, model, quant)

    @property
    def levels(self):
        if self._levels is None:
            if self.levels_fn is not None:
                self._levels = self.levels_fn()
            else:
                from repro.core.levels import SearchLevelBuilder

                builder = (SearchLevelBuilder(embedder=self.embedder)
                           if self.embedder is not None else SearchLevelBuilder())
                self._levels = builder.build(self.suite)
        return self._levels


_PARAMETERIZED = re.compile(r"^(?P<base>.+)-k(?P<k>\d+)$")


def resolve_scheme(name: str) -> tuple[Callable, dict]:
    """Resolve a scheme name to ``(factory, implied_kwargs)``.

    Exact registered names win; otherwise a ``<scheme>-k<N>`` suffix
    parameterizes a registered base scheme with ``k=N`` (the idiom
    behind ``lis-k3`` / ``lis-k5``).  Unknown names raise a
    :class:`ValueError` listing every registered scheme.
    """
    key = name.lower()
    if key in SCHEMES:
        return SCHEMES.get(key), {}
    match = _PARAMETERIZED.match(key)
    if match and match.group("base") in SCHEMES:
        return SCHEMES.get(match.group("base")), {"k": int(match.group("k"))}
    raise ValueError(
        f"unknown scheme {name!r}; registered schemes: "
        f"{', '.join(SCHEMES.names()) or '(none)'} "
        f"(a '-k<N>' suffix parameterizes any of them, e.g. 'lis-k5')")


def build_scheme(name: str, model: str, quant: str,
                 context: SchemeContext, **kwargs):
    """Construct the agent for ``name`` through the scheme registry.

    A parameter implied by the scheme name (``lis-k5`` → ``k=5``) and an
    explicit kwarg must agree — a silent override would let an
    ``AgentSpec(scheme="lis-k3", k=5)`` run with ``k=5`` while every
    report labels it ``lis-k3``.
    """
    factory, implied = resolve_scheme(name)
    for key, value in implied.items():
        if key in kwargs and kwargs[key] != value:
            raise ValueError(
                f"scheme {name!r} implies {key}={value} but {key}="
                f"{kwargs[key]} was passed explicitly; drop the name "
                f"suffix or the explicit parameter")
    return factory(model, quant, context, **{**implied, **kwargs})

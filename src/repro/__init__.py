"""Reproduction of *Less is More: Optimizing Function Calling for LLM
Execution on Edge Devices* (DATE 2025).

The package is organised as a stack of substrates (embedding, vector
search, clustering, tools, benchmark suites, a behavioural LLM simulator
and an edge-hardware model) with the paper's contribution — the
Less-is-More dynamic tool-selection pipeline — implemented in
:mod:`repro.core` on top of them.  The public surface is declarative:
typed specs (:mod:`repro.specs`), plugin registries
(:mod:`repro.registry`) and the :class:`~repro.session.Session` facade.

Quickstart::

    from repro import AgentSpec, open_session

    session = open_session("bfcl", n_queries=20)
    run = session.run(AgentSpec(scheme="lis-k3", model="llama3.1-8b",
                                quant="q4_K_M"))
    episode = run.episodes[0]
    print(episode.success, episode.selected_level)

Every name below is imported lazily, so ``import repro`` touches none of
the heavy submodules (numpy-backed kernels, the serving stack).
"""

#: exported name -> (module, attribute); resolved on first attribute access
_LAZY_EXPORTS = {
    # the declarative Session API
    "open_session": ("repro.session", "open_session"),
    "Session": ("repro.session", "Session"),
    "AgentSpec": ("repro.specs", "AgentSpec"),
    "BudgetSpec": ("repro.specs", "BudgetSpec"),
    "CatalogSpec": ("repro.specs", "CatalogSpec"),
    "EngineSpec": ("repro.specs", "EngineSpec"),
    "ExperimentSpec": ("repro.specs", "ExperimentSpec"),
    "GridSpec": ("repro.specs", "GridSpec"),
    "HttpSpec": ("repro.specs", "HttpSpec"),
    "ObsSpec": ("repro.specs", "ObsSpec"),
    "ServingSpec": ("repro.specs", "ServingSpec"),
    "SuiteSpec": ("repro.specs", "SuiteSpec"),
    "TenantSpec": ("repro.specs", "TenantSpec"),
    # the tool-catalog API
    "ToolCatalog": ("repro.tools.catalog", "ToolCatalog"),
    "ToolSpec": ("repro.tools.schema", "ToolSpec"),
    "ToolParameter": ("repro.tools.schema", "ToolParameter"),
    # plugin registries
    "register_scheme": ("repro.registry", "register_scheme"),
    "register_suite": ("repro.registry", "register_suite"),
    "register_grid_backend": ("repro.registry", "register_grid_backend"),
    "register_serving_backend": ("repro.registry", "register_serving_backend"),
    "register_catalog": ("repro.registry", "register_catalog"),
    "register_engine": ("repro.registry", "register_engine"),
    "register_carbon_signal": ("repro.registry", "register_carbon_signal"),
    # carbon/power-aware serving
    "BudgetController": ("repro.power", "BudgetController"),
    "BudgetPolicy": ("repro.power", "BudgetPolicy"),
    "EnergyMeter": ("repro.power", "EnergyMeter"),
    "load_intensity_trace": ("repro.power", "load_intensity_trace"),
    "build_engine_llm": ("repro.engines", "build_engine_llm"),
    # the HTTP front door
    "create_app": ("repro.serving.http", "create_app"),
    "serve_gateway": ("repro.serving.http", "serve_gateway"),
    # loaders
    "load_suite": ("repro.api", "load_suite"),
    "load_model": ("repro.api", "load_model"),
    "load_catalog": ("repro.tools.catalog", "load_catalog"),
    # deprecated builders (shims around the Session API)
    "build_agent": ("repro.api", "build_agent"),
    "build_gateway": ("repro.api", "build_gateway"),
    "build_less_is_more": ("repro.api", "build_less_is_more"),
    "__version__": ("repro.version", "__version__"),
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: subsequent access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))

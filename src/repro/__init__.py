"""Reproduction of *Less is More: Optimizing Function Calling for LLM
Execution on Edge Devices* (DATE 2025).

The package is organised as a stack of substrates (embedding, vector
search, clustering, tools, benchmark suites, a behavioural LLM simulator
and an edge-hardware model) with the paper's contribution — the
Less-is-More dynamic tool-selection pipeline — implemented in
:mod:`repro.core` on top of them.

Quickstart::

    from repro import build_less_is_more, load_suite

    suite = load_suite("bfcl")
    agent = build_less_is_more(model="llama3.1-8b", quant="q4_K_M",
                               suite=suite, k=3)
    episode = agent.run(suite.queries[0])
    print(episode.success, episode.selected_level)
"""

from repro.api import (
    build_agent,
    build_gateway,
    build_less_is_more,
    load_model,
    load_suite,
)
from repro.version import __version__

__all__ = [
    "__version__",
    "build_agent",
    "build_gateway",
    "build_less_is_more",
    "load_model",
    "load_suite",
]

"""The micro-batch scheduler: bounded queue, fairness, deadline flushing.

Requests enter per-tenant FIFO queues and leave in micro-batches cut by
whichever comes first — the batch filling up (``max_batch_size``) or the
oldest waiting request hitting its coalescing deadline (``max_wait_ms``).
Batches are assembled round-robin across tenants so one chatty tenant
cannot starve the others, and each batch is processed on a dedicated
worker thread so the event loop keeps admitting (and coalescing) traffic
while the previous batch executes.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.serving.config import ServingConfig
from repro.serving.telemetry import Telemetry


class QueueFullError(RuntimeError):
    """Admission control bounced the request: the queue is at capacity.

    Carries the queue state at rejection time so operators can see *who*
    is flooding: :attr:`depth` (total waiting), :attr:`capacity`, and
    :attr:`per_tenant` (tenant -> waiting count, busiest first).
    """

    def __init__(self, message: str, *, depth: int | None = None,
                 capacity: int | None = None,
                 per_tenant: dict[str, int] | None = None):
        super().__init__(message)
        self.depth = depth
        self.capacity = capacity
        self.per_tenant = dict(per_tenant or {})


class SchedulerStoppedError(RuntimeError):
    """The scheduler is not accepting submissions (stopped or never started)."""


@dataclass
class PendingRequest:
    """One queued request: opaque payload plus its completion future."""

    tenant: str
    payload: Any
    future: asyncio.Future = field(repr=False)
    enqueued_at: float = 0.0
    #: stamped at flush time so responses can report their batch context
    batch_size: int = 0
    dequeued_at: float = 0.0


class BatchScheduler:
    """Coalesces submissions into micro-batches for a processor callable.

    Parameters
    ----------
    process:
        ``process(batch: list[PendingRequest]) -> list[Any]`` — runs on
        the worker thread, must return one result per request in order.
        Exceptions fail every request in the batch.
    config:
        Batch/queue tunables (:class:`ServingConfig`).
    telemetry:
        Recorder for queue depth, batch sizes and rejections.
    faults:
        Optional :class:`~repro.serving.faults.FaultInjector`; when set,
        the ``batch.process`` hook fires on the worker thread before each
        batch runs (chaos testing only).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; injected faults and
        quarantine recoveries are recorded as events against each
        affected request's trace (requests carry their
        :class:`~repro.obs.trace.TraceContext` on the payload's
        ``trace`` attribute).
    """

    def __init__(
        self,
        process: Callable[[list[PendingRequest]], list[Any]],
        config: ServingConfig,
        telemetry: Telemetry | None = None,
        faults=None,
        tracer=None,
    ):
        self._process = process
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._faults = faults
        self._tracer = tracer
        self._queues: dict[str, deque[PendingRequest]] = {}
        self._rr_offset = 0
        self._total_pending = 0
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping = False
        self._aborting = False
        # one worker: episodes are GIL-bound pure Python, so extra threads
        # only add contention; the win comes from batching the kernels
        self._worker = _SingleWorker()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("scheduler already started")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stopping = False
        self._aborting = False
        self._task = self._loop.create_task(self._run(), name="batch-scheduler")

    async def stop(self, drain: bool = True) -> None:
        """Stop the loop; finish or fail what is still waiting.

        With ``drain=True`` (the default) queued requests are flushed in
        final batches before the loop exits.  With ``drain=False`` —
        emergency shutdown — every queued request fails fast with
        :class:`SchedulerStoppedError` instead of being processed.
        Either way no pending future is ever left hanging: anything
        still queued when the loop exits (including after a scheduler
        crash) is failed on the way out.
        """
        if self._task is None:
            return
        self._stopping = True
        self._aborting = not drain
        self._wake.set()
        try:
            await self._task
        finally:
            self._task = None
            self._fail_pending(SchedulerStoppedError(
                "scheduler stopped before this request was processed"))
            self._worker.shutdown()

    def _fail_pending(self, exc: BaseException) -> None:
        """Fail every still-queued request (no future may hang)."""
        for queue in self._queues.values():
            while queue:
                request = queue.popleft()
                self._total_pending -= 1
                if not request.future.done():
                    request.future.set_exception(exc)

    @property
    def pending(self) -> int:
        """Requests currently waiting (excludes the batch being processed)."""
        return self._total_pending

    @property
    def running(self) -> bool:
        """True while the scheduler accepts submissions (started, not
        stopping) — what the HTTP ``/healthz`` endpoint reports."""
        return self._task is not None and not self._stopping

    # ------------------------------------------------------------------
    # submission (event loop thread)
    # ------------------------------------------------------------------
    def submit(self, tenant: str, payload: Any) -> asyncio.Future:
        """Queue one request, returning the future its result lands on.

        Raises :class:`QueueFullError` when admission control rejects the
        request and :class:`SchedulerStoppedError` outside start/stop.
        """
        if self._task is None or self._stopping:
            raise SchedulerStoppedError("scheduler is not running")
        if self._total_pending >= self.config.queue_capacity:
            self.telemetry.record_rejection()
            occupancy = dict(sorted(
                ((name, len(queue)) for name, queue in self._queues.items()
                 if queue),
                key=lambda item: item[1], reverse=True))
            breakdown = ", ".join(f"{name}={count}"
                                  for name, count in occupancy.items())
            raise QueueFullError(
                f"queue at capacity ({self._total_pending}/"
                f"{self.config.queue_capacity} waiting; per tenant: "
                f"{breakdown or 'none'})",
                depth=self._total_pending,
                capacity=self.config.queue_capacity,
                per_tenant=occupancy)
        future = self._loop.create_future()
        request = PendingRequest(tenant=tenant, payload=payload, future=future,
                                 enqueued_at=self._loop.time())
        self._queues.setdefault(tenant, deque()).append(request)
        self._total_pending += 1
        self.telemetry.record_admission(self._total_pending)
        self._wake.set()
        return future

    # ------------------------------------------------------------------
    # scheduler loop
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            if self._aborting:
                return  # stop(drain=False): stop() fails what is queued
            if self._total_pending == 0:
                if self._stopping:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue

            # coalescing window: wait for more traffic until the oldest
            # request's deadline or a full batch, whichever is first
            deadline = self._oldest_enqueue() + self.config.max_wait_s
            while (self._total_pending < self.config.max_batch_size
                   and not self._stopping):
                remaining = deadline - self._loop.time()
                if remaining <= 0.0:
                    break
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
            if self._aborting:
                return

            batch = self._cut_batch()
            if not batch:
                continue
            self.telemetry.record_flush(len(batch))
            try:
                results = await self._loop.run_in_executor(
                    self._worker, self._process_batch, batch)
            except Exception as exc:  # noqa: BLE001 - quarantine, then fail
                await self._quarantine(batch, exc)
                continue
            self._deliver(batch, results)

    def _deliver(self, batch: list[PendingRequest], results: list[Any]) -> None:
        for request, result in zip(batch, results):
            if request.future.done():
                continue
            # processors may fail a subset of the batch by returning
            # an exception in that request's slot (see the gateway's
            # per-group containment)
            if isinstance(result, BaseException):
                request.future.set_exception(result)
            else:
                request.future.set_result(result)

    async def _quarantine(self, batch: list[PendingRequest],
                          exc: Exception) -> None:
        """Failure isolation: re-run a failed batch request-by-request.

        A processor exception for a multi-request batch says *something*
        in the batch is poisoned — not that every co-batched request is.
        Each request is re-processed alone (the kernels are
        batch-invariant, so a singleton run returns the same result the
        batch would have), and only the requests that still fail carry
        the exception; a single-request batch fails directly.
        """
        if len(batch) == 1:
            if not batch[0].future.done():
                batch[0].future.set_exception(exc)
            return
        self.telemetry.record_batch_quarantine(len(batch))
        if self._tracer is not None:
            for request in batch:
                self._tracer.event(
                    getattr(request.payload, "trace", None), "quarantine",
                    {"batch_size": len(batch),
                     "error": type(exc).__name__})
        for request in batch:
            if request.future.done():
                continue
            try:
                results = await self._loop.run_in_executor(
                    self._worker, self._process_batch, [request])
            except Exception as solo_exc:  # noqa: BLE001 - this one is poisoned
                if not request.future.done():
                    request.future.set_exception(solo_exc)
            else:
                self._deliver([request], results)

    def _process_batch(self, batch: list[PendingRequest]) -> list[Any]:
        if self._faults is not None:
            action = self._faults.decide("batch.process")
            if action is not None and action.kind == "slow":
                self.telemetry.record_fault("batch.process")
                if self._tracer is not None:
                    for request in batch:
                        self._tracer.event(
                            getattr(request.payload, "trace", None), "fault",
                            {"hook": "batch.process",
                             "sleep_ms": action.sleep_s * 1e3})
                time.sleep(action.sleep_s)
        results = self._process(batch)
        if len(results) != len(batch):
            raise RuntimeError(
                f"processor returned {len(results)} results for a batch of "
                f"{len(batch)}")
        return results

    def _oldest_enqueue(self) -> float:
        return min(queue[0].enqueued_at for queue in self._queues.values() if queue)

    def _cut_batch(self) -> list[PendingRequest]:
        """Drain up to ``max_batch_size`` requests, round-robin by tenant.

        The rotation offset advances every flush so whichever tenant went
        first last time goes later this time — cheap long-run fairness on
        top of the per-flush interleaving.
        """
        tenants = [name for name, queue in self._queues.items() if queue]
        if not tenants:
            return []
        self._rr_offset = (self._rr_offset + 1) % len(tenants)
        tenants = tenants[self._rr_offset:] + tenants[:self._rr_offset]
        batch: list[PendingRequest] = []
        now = self._loop.time()
        while len(batch) < self.config.max_batch_size:
            progressed = False
            for name in tenants:
                queue = self._queues[name]
                if not queue:
                    continue
                request = queue.popleft()
                self._total_pending -= 1
                progressed = True
                if request.future.done():
                    # abandoned while queued (end-to-end deadline expired
                    # and Gateway.submit cancelled the future): executing
                    # it would be pure waste — drop it here
                    continue
                request.dequeued_at = now
                batch.append(request)
                if len(batch) >= self.config.max_batch_size:
                    break
            if not progressed:
                break
        for request in batch:
            request.batch_size = len(batch)
        return batch


class _SingleWorker:
    """Minimal one-thread executor compatible with ``run_in_executor``.

    ``concurrent.futures.ThreadPoolExecutor`` would work too; this keeps
    the worker's lifecycle explicit (one named thread, deterministic
    shutdown) and avoids pool bookkeeping on the per-batch hot path.
    """

    def __init__(self):
        self._items: deque = deque()
        self._available = threading.Semaphore(0)
        self._thread: threading.Thread | None = None
        self._shutdown = False

    def submit(self, fn, *args):
        import concurrent.futures

        if self._thread is None:
            self._thread = threading.Thread(target=self._drain,
                                            name="serving-batch-worker",
                                            daemon=True)
            self._thread.start()
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._items.append((future, fn, args))
        self._available.release()
        return future

    def _drain(self):
        while True:
            self._available.acquire()
            if self._shutdown:
                return
            future, fn, args = self._items.popleft()
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - propagate via future
                future.set_exception(exc)

    def shutdown(self, join_timeout_s: float = 5.0):
        """Stop the worker thread; raise if it fails to join.

        A worker that outlives the join timeout is stuck inside a
        processor (wedged pool, deadlocked lock, runaway episode).
        Silently proceeding would leak the thread *and* hide the hang —
        instead the error carries the worker's current stack so the
        operator sees exactly where it is stuck.
        """
        self._shutdown = True
        self._available.release()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=join_timeout_s)
            if thread.is_alive():
                import sys
                import traceback

                frame = sys._current_frames().get(thread.ident)
                stack = ("".join(traceback.format_stack(frame))
                         if frame is not None else "<stack unavailable>")
                raise RuntimeError(
                    f"serving batch worker failed to join within "
                    f"{join_timeout_s:g}s; it is stuck at:\n{stack}")
            self._thread = None
        self._shutdown = False

"""The micro-batch scheduler: bounded queue, fairness, deadline flushing.

Requests enter per-tenant FIFO queues and leave in micro-batches cut by
whichever comes first — the batch filling up (``max_batch_size``) or the
oldest waiting request hitting its coalescing deadline (``max_wait_ms``).
Batches are assembled round-robin across tenants so one chatty tenant
cannot starve the others, and each batch is processed on a dedicated
worker thread so the event loop keeps admitting (and coalescing) traffic
while the previous batch executes.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.serving.config import ServingConfig
from repro.serving.telemetry import Telemetry


class QueueFullError(RuntimeError):
    """Admission control bounced the request: the queue is at capacity."""


class SchedulerStoppedError(RuntimeError):
    """The scheduler is not accepting submissions (stopped or never started)."""


@dataclass
class PendingRequest:
    """One queued request: opaque payload plus its completion future."""

    tenant: str
    payload: Any
    future: asyncio.Future = field(repr=False)
    enqueued_at: float = 0.0
    #: stamped at flush time so responses can report their batch context
    batch_size: int = 0
    dequeued_at: float = 0.0


class BatchScheduler:
    """Coalesces submissions into micro-batches for a processor callable.

    Parameters
    ----------
    process:
        ``process(batch: list[PendingRequest]) -> list[Any]`` — runs on
        the worker thread, must return one result per request in order.
        Exceptions fail every request in the batch.
    config:
        Batch/queue tunables (:class:`ServingConfig`).
    telemetry:
        Recorder for queue depth, batch sizes and rejections.
    """

    def __init__(
        self,
        process: Callable[[list[PendingRequest]], list[Any]],
        config: ServingConfig,
        telemetry: Telemetry | None = None,
    ):
        self._process = process
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._queues: dict[str, deque[PendingRequest]] = {}
        self._rr_offset = 0
        self._total_pending = 0
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping = False
        # one worker: episodes are GIL-bound pure Python, so extra threads
        # only add contention; the win comes from batching the kernels
        self._worker = _SingleWorker()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("scheduler already started")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stopping = False
        self._task = self._loop.create_task(self._run(), name="batch-scheduler")

    async def stop(self) -> None:
        """Drain the queue, finish in-flight batches, stop the loop."""
        if self._task is None:
            return
        self._stopping = True
        self._wake.set()
        await self._task
        self._task = None
        self._worker.shutdown()

    @property
    def pending(self) -> int:
        """Requests currently waiting (excludes the batch being processed)."""
        return self._total_pending

    # ------------------------------------------------------------------
    # submission (event loop thread)
    # ------------------------------------------------------------------
    def submit(self, tenant: str, payload: Any) -> asyncio.Future:
        """Queue one request, returning the future its result lands on.

        Raises :class:`QueueFullError` when admission control rejects the
        request and :class:`SchedulerStoppedError` outside start/stop.
        """
        if self._task is None or self._stopping:
            raise SchedulerStoppedError("scheduler is not running")
        if self._total_pending >= self.config.queue_capacity:
            self.telemetry.record_rejection()
            raise QueueFullError(
                f"queue at capacity ({self.config.queue_capacity} waiting)")
        future = self._loop.create_future()
        request = PendingRequest(tenant=tenant, payload=payload, future=future,
                                 enqueued_at=self._loop.time())
        self._queues.setdefault(tenant, deque()).append(request)
        self._total_pending += 1
        self.telemetry.record_admission(self._total_pending)
        self._wake.set()
        return future

    # ------------------------------------------------------------------
    # scheduler loop
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            if self._total_pending == 0:
                if self._stopping:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue

            # coalescing window: wait for more traffic until the oldest
            # request's deadline or a full batch, whichever is first
            deadline = self._oldest_enqueue() + self.config.max_wait_s
            while (self._total_pending < self.config.max_batch_size
                   and not self._stopping):
                remaining = deadline - self._loop.time()
                if remaining <= 0.0:
                    break
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    break

            batch = self._cut_batch()
            if not batch:
                continue
            self.telemetry.record_flush(len(batch))
            try:
                results = await self._loop.run_in_executor(
                    self._worker, self._process_batch, batch)
            except Exception as exc:  # noqa: BLE001 - fail the whole batch
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(exc)
                continue
            for request, result in zip(batch, results):
                if request.future.done():
                    continue
                # processors may fail a subset of the batch by returning
                # an exception in that request's slot (see the gateway's
                # per-group containment)
                if isinstance(result, BaseException):
                    request.future.set_exception(result)
                else:
                    request.future.set_result(result)

    def _process_batch(self, batch: list[PendingRequest]) -> list[Any]:
        results = self._process(batch)
        if len(results) != len(batch):
            raise RuntimeError(
                f"processor returned {len(results)} results for a batch of "
                f"{len(batch)}")
        return results

    def _oldest_enqueue(self) -> float:
        return min(queue[0].enqueued_at for queue in self._queues.values() if queue)

    def _cut_batch(self) -> list[PendingRequest]:
        """Drain up to ``max_batch_size`` requests, round-robin by tenant.

        The rotation offset advances every flush so whichever tenant went
        first last time goes later this time — cheap long-run fairness on
        top of the per-flush interleaving.
        """
        tenants = [name for name, queue in self._queues.items() if queue]
        if not tenants:
            return []
        self._rr_offset = (self._rr_offset + 1) % len(tenants)
        tenants = tenants[self._rr_offset:] + tenants[:self._rr_offset]
        batch: list[PendingRequest] = []
        now = self._loop.time()
        while len(batch) < self.config.max_batch_size:
            progressed = False
            for name in tenants:
                queue = self._queues[name]
                if not queue:
                    continue
                request = queue.popleft()
                request.dequeued_at = now
                batch.append(request)
                self._total_pending -= 1
                progressed = True
                if len(batch) >= self.config.max_batch_size:
                    break
            if not progressed:
                break
        for request in batch:
            request.batch_size = len(batch)
        return batch


class _SingleWorker:
    """Minimal one-thread executor compatible with ``run_in_executor``.

    ``concurrent.futures.ThreadPoolExecutor`` would work too; this keeps
    the worker's lifecycle explicit (one named thread, deterministic
    shutdown) and avoids pool bookkeeping on the per-batch hot path.
    """

    def __init__(self):
        self._items: deque = deque()
        self._available = threading.Semaphore(0)
        self._thread: threading.Thread | None = None
        self._shutdown = False

    def submit(self, fn, *args):
        import concurrent.futures

        if self._thread is None:
            self._thread = threading.Thread(target=self._drain,
                                            name="serving-batch-worker",
                                            daemon=True)
            self._thread.start()
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._items.append((future, fn, args))
        self._available.release()
        return future

    def _drain(self):
        while True:
            self._available.acquire()
            if self._shutdown:
                return
            future, fn, args = self._items.popleft()
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - propagate via future
                future.set_exception(exc)

    def shutdown(self):
        self._shutdown = True
        self._available.release()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._shutdown = False

"""Process-pool episode execution stage for the serving gateway.

Micro-batch *planning* (one batched ``encode`` plus one multi-query
search per Search Level) stays in the gateway's parent process, where the
shared :class:`~repro.embedding.cache.CachedEmbedder` lives; episode
*execution* is GIL-bound pure Python, so with
``ServingConfig(execution_backend="process")`` the post-planning step
loop of a flushed batch fans out across a pool of worker processes.

Workers are primed once, at gateway start, with a pickled snapshot of
every registered tenant's warmed :class:`ExperimentRunner` (suite, Search
Levels, embedder cache); per-``(tenant, scheme, model, quant)`` agents
are then built lazily inside each worker and reused across batches.
Because planning output (the :class:`~repro.core.agent_base.ToolPlan`)
crosses the process boundary with the query, and every episode draws
from named BLAKE2-derived RNG streams, a worker-executed episode is
bitwise identical to running :meth:`run_planned` in the parent — the
same contract the threaded execution path honors.

Two classes share the work.  :class:`ProcessEpisodeExecutor` owns one
pool generation: spawn, prime, deal slices, die.  The registered
``"process"`` backend is :class:`SupervisedEpisodeExecutor`, which wraps
a pool generation with the production survival loop: a dead worker
(``BrokenProcessPool``) or a wedged slice no longer takes the gateway
down — the failed slice is retried with bounded backoff, falls back to
inline execution on the batch worker (bitwise-identical results either
way), and a replacement pool is spawned and re-primed asynchronously
from the sessions' *current* runners, which also heals tenants demoted
to inline execution by a catalog hot-swap.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

from repro.core.episode import EpisodeResult
from repro.evaluation.runner import ExperimentRunner
from repro.obs.trace import worker_slice_span
from repro.registry import register_serving_backend
from repro.suites.base import Query


@register_serving_backend("process")
def _process_stage(config) -> "SupervisedEpisodeExecutor":
    """Serving-backend registry factory for the supervised process stage."""
    return SupervisedEpisodeExecutor(
        workers=config.execution_workers,
        init_timeout_s=config.worker_init_timeout_s,
        max_retries=config.execution_retries,
        retry_backoff_s=config.retry_backoff_ms / 1e3,
        slice_timeout_s=config.slice_timeout_s,
    )


class ProcessEpisodeExecutor:
    """Owns one worker-pool generation executing planned serving episodes.

    Parameters
    ----------
    workers:
        Worker-process count (defaults to the CPU count).  The pool is
        spawned eagerly in :meth:`start` — before the gateway begins
        admitting traffic — so no fork happens later while the event
        loop and batch-worker threads are running.
    init_timeout_s:
        Rendezvous budget for the worker-init barrier; when it expires
        the error reports how many workers actually reached the barrier.
    """

    def __init__(self, workers: int | None = None,
                 init_timeout_s: float = 60.0):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if init_timeout_s <= 0.0:
            raise ValueError(
                f"init_timeout_s must be > 0, got {init_timeout_s}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.init_timeout_s = init_timeout_s
        self._pool: ProcessPoolExecutor | None = None
        self._tenants: frozenset[str] = frozenset()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, runners: dict[str, ExperimentRunner]) -> None:
        """Spawn the pool, priming every worker with the tenant runners.

        ``runners`` maps tenant name -> warmed runner; the dict is
        pickled once per worker (shared objects — notably the embedder —
        stay shared on the receiving side because they ride in a single
        pickle).
        """
        if self._pool is not None:
            raise RuntimeError("executor already started")
        self._tenants = frozenset(runners)
        context = multiprocessing.get_context()
        # the barrier is a true rendezvous: every worker blocks at the
        # end of its initializer until all `workers` processes (plus
        # this parent) arrive, so start() cannot return while any
        # worker is still cold — a fast sibling draining ready-pings
        # cannot fake readiness
        barrier = context.Barrier(self.workers + 1)
        # counts workers that reached the barrier, for the error message
        arrivals = context.Value("i", 0)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(runners, barrier, arrivals, self.init_timeout_s))
        # each submit spawns one process while the pool is below
        # max_workers, and none can complete before the barrier trips,
        # so exactly `workers` processes come up now
        ready = [self._pool.submit(_worker_ready)
                 for _ in range(self.workers)]
        try:
            barrier.wait(timeout=self.init_timeout_s)
        except threading.BrokenBarrierError:
            with arrivals.get_lock():
                reached = arrivals.value
            self._pool.shutdown(wait=False)
            self._pool = None
            raise RuntimeError(
                f"only {reached} of {self.workers} serving workers reached "
                f"the init barrier within {self.init_timeout_s:g}s") from None
        for future in ready:
            future.result()

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None

    @property
    def running(self) -> bool:
        return self._pool is not None

    def worker_pids(self) -> list[int]:
        """PIDs of the live pool processes (chaos harness / diagnostics)."""
        if self._pool is None:
            return []
        return sorted(process.pid for process in self._pool._processes.values()
                      if process.is_alive())

    def kill_one_worker(self) -> int | None:
        """SIGKILL one pool worker (fault injection); returns its pid.

        The next slice dispatched to the broken pool raises
        :class:`BrokenProcessPool` — exactly the failure a real OOM kill
        or segfault produces — which the supervised wrapper recovers
        from.  No-op (returns ``None``) when the pool has no live worker.
        """
        pids = self.worker_pids()
        if not pids:
            return None
        os.kill(pids[0], signal.SIGKILL)
        return pids[0]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def covers(self, tenant: str) -> bool:
        """Whether ``tenant`` was in the snapshot the workers hold.

        Tenants registered after gateway start are unknown to the
        workers; the gateway executes their episodes inline instead.
        """
        return tenant in self._tenants

    def uncover(self, tenant: str) -> None:
        """Stop routing ``tenant`` to the pool.

        Called on catalog hot-swap: the workers' runner snapshot (and
        their lazily-built agents) predate the swap, so the gateway
        executes this tenant inline from now on.  Under the supervised
        stage the demotion is temporary — the next pool respawn re-primes
        from the sessions' current runners, which include the swapped
        tenant's post-swap state.
        """
        self._tenants = self._tenants - {tenant}

    def submit_slice(self, cell: tuple[str, str, str, str], items):
        """Submit one worker slice of (query, plan, trace) triples.

        Returns a future resolving to ``(episodes, spans)`` — the slice's
        results plus one pickled-back ``worker-slice`` span per traced
        episode (an empty list when no triple carries a trace context).
        """
        if self._pool is None:
            raise RuntimeError("executor is not running")
        return self._pool.submit(_execute_slice, cell, items)

    def execute(self, tenant: str, scheme: str, model: str, quant: str,
                queries: list[Query], plans: list,
                inline=None, traces=None) -> list[EpisodeResult]:
        """Run one planned group across the pool, preserving order.

        The group's episodes are dealt round-robin into one slice per
        worker so each task carries many (query, plan) pairs — per-task
        pickling overhead is paid per slice, not per episode.  ``inline``
        is accepted for signature parity with the supervised stage and
        ignored: this bare executor propagates worker failures.
        ``traces`` rides along per request but the bare executor has no
        tracer, so returned spans are dropped; use the supervised stage
        for traced serving.
        """
        cell = (tenant, scheme, model, quant)
        items = list(zip(queries, plans,
                         traces if traces is not None else [None] * len(queries)))
        n_slices = min(self.workers, len(items))
        if n_slices == 0:
            return []
        futures = [
            self.submit_slice(cell, items[start::n_slices])
            for start in range(n_slices)
        ]
        episodes: list[EpisodeResult | None] = [None] * len(items)
        for start, future in enumerate(futures):
            slice_episodes, _spans = future.result()
            episodes[start::n_slices] = slice_episodes
        return episodes


class SupervisedEpisodeExecutor:
    """Fault-tolerant wrapper around pool generations (the ``"process"``
    backend).

    Failure handling, in order:

    1. a slice whose future raises :class:`BrokenProcessPool` (worker
       SIGKILLed, OOMed, segfaulted) or exceeds ``slice_timeout_s`` marks
       the current pool generation dead and triggers **one** asynchronous
       respawn — a daemon thread spawns a fresh
       :class:`ProcessEpisodeExecutor` and primes it from
       ``runners_fn()``, i.e. the sessions' *current* runners, so
       tenants demoted to inline execution by a catalog hot-swap are
       covered again after the respawn;
    2. the failed slice is resubmitted up to ``max_retries`` times with
       bounded backoff (each attempt targets whatever pool generation is
       live by then);
    3. when retries run out — or no pool is up — the slice executes
       inline via the ``inline`` callable the gateway passes alongside
       the group.  Episodes are deterministic from plan + seeds, so the
       recovered results are bitwise identical to an undisturbed run.

    While a respawn is in flight :meth:`covers` returns ``False`` for
    every tenant, so the gateway routes whole groups inline instead of
    queueing against a dead pool.
    """

    def __init__(self, workers: int | None = None,
                 init_timeout_s: float = 60.0, max_retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 slice_timeout_s: float | None = 30.0):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0.0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}")
        self.workers = workers
        self.init_timeout_s = init_timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.slice_timeout_s = slice_timeout_s
        self.telemetry = None
        self.faults = None
        self.tracer = None
        self._runners_fn = None
        self._inner: ProcessEpisodeExecutor | None = None
        self._lock = threading.Lock()
        self._respawn_thread: threading.Thread | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, telemetry=None, faults=None, runners_fn=None,
             tracer=None) -> None:
        """Attach gateway collaborators (called before :meth:`start`)."""
        if telemetry is not None:
            self.telemetry = telemetry
        if faults is not None:
            self.faults = faults
        if runners_fn is not None:
            self._runners_fn = runners_fn
        if tracer is not None:
            self.tracer = tracer

    def _new_pool(self) -> ProcessEpisodeExecutor:
        return ProcessEpisodeExecutor(workers=self.workers,
                                      init_timeout_s=self.init_timeout_s)

    def start(self, runners: dict[str, ExperimentRunner]) -> None:
        if self._inner is not None:
            raise RuntimeError("executor already started")
        if self._runners_fn is None:
            # fall back to re-priming with the start-time snapshot
            self._runners_fn = lambda: runners
        pool = self._new_pool()
        pool.start(runners)
        self._inner = pool

    def shutdown(self) -> None:
        self._closed = True
        respawn = self._respawn_thread
        if respawn is not None and respawn.is_alive():
            respawn.join(timeout=self.init_timeout_s + 5.0)
        with self._lock:
            pool, self._inner = self._inner, None
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether a live pool generation is installed (False mid-respawn)."""
        return self._inner is not None

    def covers(self, tenant: str) -> bool:
        pool = self._inner
        return pool is not None and pool.covers(tenant)

    def uncover(self, tenant: str) -> None:
        pool = self._inner
        if pool is not None:
            pool.uncover(tenant)

    def worker_pids(self) -> list[int]:
        pool = self._inner
        return pool.worker_pids() if pool is not None else []

    def kill_one_worker(self) -> int | None:
        pool = self._inner
        return pool.kill_one_worker() if pool is not None else None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, tenant: str, scheme: str, model: str, quant: str,
                queries: list[Query], plans: list,
                inline=None, traces=None) -> list[EpisodeResult]:
        """Run one planned group, surviving worker death mid-flight.

        ``traces`` (one :class:`~repro.obs.trace.TraceContext` or
        ``None`` per request) crosses the pickle boundary with its
        (query, plan); traced episodes come back with a ``worker-slice``
        span built inside the worker — or an ``inline-slice`` span when
        the fallback ran them on this thread — emitted through the bound
        tracer.  Retries, injected crashes and fallbacks are recorded as
        events on the owning traces.
        """
        pool = self._inner
        if pool is None:
            raise RuntimeError("executor is not running")
        if self.faults is not None:
            action = self.faults.decide("process.execute")
            if action is not None and action.kind == "crash":
                if self.kill_one_worker() is not None:
                    if self.telemetry:
                        self.telemetry.record_fault("process.execute")
                    if self.tracer is not None and traces:
                        for ctx in traces:
                            self.tracer.event(ctx, "fault",
                                              {"hook": "process.execute"})
        cell = (tenant, scheme, model, quant)
        items = list(zip(queries, plans,
                         traces if traces is not None else [None] * len(queries)))
        n_slices = min(pool.workers, len(items))
        if n_slices == 0:
            return []
        slices = [items[start::n_slices] for start in range(n_slices)]
        try:
            futures = [pool.submit_slice(cell, chunk) for chunk in slices]
        except (BrokenProcessPool, RuntimeError):
            # the pool died between covers() and dispatch
            self._note_broken(pool)
            futures = [None] * len(slices)
        episodes: list[EpisodeResult | None] = [None] * len(items)
        for start, (future, chunk) in enumerate(zip(futures, slices)):
            results = None
            if future is not None:
                try:
                    results, spans = future.result(
                        timeout=self.slice_timeout_s)
                    self._emit_spans(spans)
                except (BrokenProcessPool, FutureTimeoutError):
                    self._note_broken(pool)
            if results is None:
                results = self._recover_slice(cell, chunk, inline)
            episodes[start::n_slices] = results
        return episodes

    def _emit_spans(self, spans) -> None:
        """Emit worker-built (pickled-back) spans through the tracer."""
        if self.tracer is not None:
            for span in spans:
                self.tracer.emit(span)

    def _recover_slice(self, cell, items, inline) -> list[EpisodeResult]:
        """Retry one failed slice with backoff, then fall back inline."""
        tenant = cell[0]
        tracer = self.tracer
        for attempt in range(1, self.max_retries + 1):
            time.sleep(self.retry_backoff_s * attempt)
            pool = self._inner
            if pool is None or not pool.covers(tenant):
                continue  # respawn still in flight
            if self.telemetry:
                self.telemetry.record_slice_retry()
            if tracer is not None:
                for _, _, ctx in items:
                    tracer.event(ctx, "retry", {"attempt": attempt})
            try:
                results, spans = pool.submit_slice(cell, items).result(
                    timeout=self.slice_timeout_s)
                self._emit_spans(spans)
                return results
            except (BrokenProcessPool, FutureTimeoutError, RuntimeError):
                self._note_broken(pool)
        if self.telemetry:
            self.telemetry.record_inline_fallback()
        if inline is None:
            raise BrokenProcessPool(
                f"worker pool died executing {cell!r} and no inline "
                f"fallback was provided")
        if tracer is not None:
            for _, _, ctx in items:
                tracer.event(ctx, "inline_fallback", {})
            # run per episode so each traced one gets its own timed
            # inline-slice span; episodes are deterministic per (query,
            # plan), so splitting the call changes nothing but timing
            episodes = []
            for query, plan, ctx in items:
                started = time.monotonic()
                episodes.extend(inline([query], [plan]))
                if ctx is not None:
                    tracer.emit(worker_slice_span(
                        ctx, query.qid, started, time.monotonic(),
                        inline=True))
            return episodes
        return inline([query for query, _, _ in items],
                      [plan for _, plan, _ in items])

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _note_broken(self, pool: ProcessEpisodeExecutor) -> None:
        """Retire a dead pool generation and kick off one async respawn."""
        with self._lock:
            if self._inner is not pool:
                return  # another slice already reported this generation
            self._inner = None
            if self.telemetry:
                self.telemetry.record_worker_restart()
            thread = threading.Thread(target=self._respawn, args=(pool,),
                                      name="serving-pool-respawn",
                                      daemon=True)
            self._respawn_thread = thread
        thread.start()

    def _respawn(self, dead: ProcessEpisodeExecutor) -> None:
        dead.shutdown(wait=False)
        if self._closed:
            return
        replacement = self._new_pool()
        try:
            # re-prime from the *current* runners: tenants hot-swapped
            # (and uncover()ed) since the last generation come back with
            # their post-swap state instead of staying inline forever
            replacement.start(dict(self._runners_fn()))
        except Exception:
            # spawn failed (resources, init barrier): stay inline — every
            # group still serves through the gateway's fallback path
            replacement.shutdown(wait=False)
            return
        with self._lock:
            if self._closed or self._inner is not None:
                replacement.shutdown(wait=False)
                return
            self._inner = replacement


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------
#: tenant -> runner snapshot, installed by the pool initializer
_RUNNERS: dict[str, ExperimentRunner] = {}
#: (tenant, scheme, model, quant) -> agent, built lazily per worker
_AGENTS: dict[tuple[str, str, str, str], object] = {}


def _init_worker(runners: dict[str, ExperimentRunner], barrier, arrivals,
                 timeout_s: float = 60.0) -> None:
    global _RUNNERS
    _RUNNERS = runners
    _AGENTS.clear()
    with arrivals.get_lock():
        arrivals.value += 1
    # rendezvous with the parent and every sibling (see start())
    barrier.wait(timeout=timeout_s)


def _worker_ready() -> int:
    """No-op barrier task used to force worker spawn at start time."""
    return os.getpid()


def _agent_for(cell: tuple[str, str, str, str]):
    agent = _AGENTS.get(cell)
    if agent is None:
        tenant, scheme, model, quant = cell
        agent = _RUNNERS[tenant].make_agent(scheme, model, quant)
        # match TenantSession serving agents: an unbounded per-call log
        # would grow for the worker's whole lifetime (and logging does
        # not affect episode results)
        agent.executor.log_calls = False
        _AGENTS[cell] = agent
    return agent


def _execute_slice(cell: tuple[str, str, str, str], items):
    """Execute one worker's slice of a planned group.

    ``items`` are (query, plan, trace-context-or-None) triples; returns
    ``(episodes, spans)`` where ``spans`` holds one timed
    ``worker-slice`` span per traced episode, built here — inside the
    worker, carrying this process's pid — and pickled back for the
    parent's tracer to emit.  Untraced slices pay nothing but the
    ``ctx is None`` check per episode.
    """
    agent = _agent_for(cell)
    episodes: list[EpisodeResult] = []
    spans = []
    for query, plan, ctx in items:
        if ctx is None:
            episodes.append(agent.run_planned(query, plan))
            continue
        started = time.monotonic()
        episodes.append(agent.run_planned(query, plan))
        spans.append(worker_slice_span(ctx, query.qid, started,
                                       time.monotonic()))
    return episodes, spans

"""Process-pool episode execution stage for the serving gateway.

Micro-batch *planning* (one batched ``encode`` plus one multi-query
search per Search Level) stays in the gateway's parent process, where the
shared :class:`~repro.embedding.cache.CachedEmbedder` lives; episode
*execution* is GIL-bound pure Python, so with
``ServingConfig(execution_backend="process")`` the post-planning step
loop of a flushed batch fans out across a pool of worker processes.

Workers are primed once, at gateway start, with a pickled snapshot of
every registered tenant's warmed :class:`ExperimentRunner` (suite, Search
Levels, embedder cache); per-``(tenant, scheme, model, quant)`` agents
are then built lazily inside each worker and reused across batches.
Because planning output (the :class:`~repro.core.agent_base.ToolPlan`)
crosses the process boundary with the query, and every episode draws
from named BLAKE2-derived RNG streams, a worker-executed episode is
bitwise identical to running :meth:`run_planned` in the parent — the
same contract the threaded execution path honors.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor

from repro.core.episode import EpisodeResult
from repro.evaluation.runner import ExperimentRunner
from repro.registry import register_serving_backend
from repro.suites.base import Query


@register_serving_backend("process")
def _process_stage(config) -> "ProcessEpisodeExecutor":
    """Serving-backend registry factory for the process pool stage."""
    return ProcessEpisodeExecutor(workers=config.execution_workers)


class ProcessEpisodeExecutor:
    """Owns the worker pool that executes planned serving episodes.

    Parameters
    ----------
    workers:
        Worker-process count (defaults to the CPU count).  The pool is
        spawned eagerly in :meth:`start` — before the gateway begins
        admitting traffic — so no fork happens later while the event
        loop and batch-worker threads are running.
    """

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self._pool: ProcessPoolExecutor | None = None
        self._tenants: frozenset[str] = frozenset()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, runners: dict[str, ExperimentRunner]) -> None:
        """Spawn the pool, priming every worker with the tenant runners.

        ``runners`` maps tenant name -> warmed runner; the dict is
        pickled once per worker (shared objects — notably the embedder —
        stay shared on the receiving side because they ride in a single
        pickle).
        """
        if self._pool is not None:
            raise RuntimeError("executor already started")
        self._tenants = frozenset(runners)
        # the barrier is a true rendezvous: every worker blocks at the
        # end of its initializer until all `workers` processes (plus
        # this parent) arrive, so start() cannot return while any
        # worker is still cold — a fast sibling draining ready-pings
        # cannot fake readiness
        barrier = multiprocessing.get_context().Barrier(self.workers + 1)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker, initargs=(runners, barrier))
        # each submit spawns one process while the pool is below
        # max_workers, and none can complete before the barrier trips,
        # so exactly `workers` processes come up now
        ready = [self._pool.submit(_worker_ready)
                 for _ in range(self.workers)]
        try:
            barrier.wait(timeout=60.0)
        except threading.BrokenBarrierError:
            self._pool.shutdown(wait=False)
            self._pool = None
            raise RuntimeError(
                f"{self.workers} serving workers failed to initialize "
                f"within 60s") from None
        for future in ready:
            future.result()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def covers(self, tenant: str) -> bool:
        """Whether ``tenant`` was in the snapshot the workers hold.

        Tenants registered after gateway start are unknown to the
        workers; the gateway executes their episodes inline instead.
        """
        return tenant in self._tenants

    def uncover(self, tenant: str) -> None:
        """Stop routing ``tenant`` to the pool.

        Called on catalog hot-swap: the workers' runner snapshot (and
        their lazily-built agents) predate the swap, so the gateway
        executes this tenant inline from now on.  Restarting the gateway
        re-primes the pool with the post-swap runner.
        """
        self._tenants = self._tenants - {tenant}

    def execute(self, tenant: str, scheme: str, model: str, quant: str,
                queries: list[Query], plans: list) -> list[EpisodeResult]:
        """Run one planned group across the pool, preserving order.

        The group's episodes are dealt round-robin into one slice per
        worker so each task carries many (query, plan) pairs — per-task
        pickling overhead is paid per slice, not per episode.
        """
        if self._pool is None:
            raise RuntimeError("executor is not running")
        pairs = list(zip(queries, plans))
        n_slices = min(self.workers, len(pairs))
        if n_slices == 0:
            return []
        cell = (tenant, scheme, model, quant)
        futures = [
            self._pool.submit(_execute_slice, cell, pairs[start::n_slices])
            for start in range(n_slices)
        ]
        episodes: list[EpisodeResult | None] = [None] * len(pairs)
        for start, future in enumerate(futures):
            for offset, episode in enumerate(future.result()):
                episodes[start + offset * n_slices] = episode
        return episodes


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------
#: tenant -> runner snapshot, installed by the pool initializer
_RUNNERS: dict[str, ExperimentRunner] = {}
#: (tenant, scheme, model, quant) -> agent, built lazily per worker
_AGENTS: dict[tuple[str, str, str, str], object] = {}


def _init_worker(runners: dict[str, ExperimentRunner], barrier) -> None:
    global _RUNNERS
    _RUNNERS = runners
    _AGENTS.clear()
    # rendezvous with the parent and every sibling (see start())
    barrier.wait(timeout=60.0)


def _worker_ready() -> int:
    """No-op barrier task used to force worker spawn at start time."""
    return os.getpid()


def _agent_for(cell: tuple[str, str, str, str]):
    agent = _AGENTS.get(cell)
    if agent is None:
        tenant, scheme, model, quant = cell
        agent = _RUNNERS[tenant].make_agent(scheme, model, quant)
        # match TenantSession serving agents: an unbounded per-call log
        # would grow for the worker's whole lifetime (and logging does
        # not affect episode results)
        agent.executor.log_calls = False
        _AGENTS[cell] = agent
    return agent


def _execute_slice(cell: tuple[str, str, str, str], pairs) -> list[EpisodeResult]:
    """Execute one worker's slice of a planned group."""
    agent = _agent_for(cell)
    return agent.run_planned_many([query for query, _ in pairs],
                                  [plan for _, plan in pairs])

"""Serving metrics: queue depth, batch sizes, latency percentiles.

All record methods are lock-protected — admissions happen on the event
loop thread while flushes and completions are recorded from the batch
worker — and :meth:`Telemetry.snapshot` returns a plain-dict view that
the bench harness writes into ``BENCH_perf.json``.
"""

from __future__ import annotations

import threading
import time
from collections import Counter


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Implemented locally (nearest-rank with interpolation, like
    ``numpy.percentile``'s default) so telemetry snapshots stay cheap and
    dependency-free; returns 0.0 for an empty sample.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


class _Ring:
    """Fixed-capacity sample buffer: overwrites oldest once full."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._samples: list[float] = []
        self._cursor = 0

    def push(self, value: float) -> None:
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.capacity

    def values(self) -> list[float]:
        return list(self._samples)


class Telemetry:
    """Thread-safe counters and samples for one gateway instance.

    Parameters
    ----------
    max_samples:
        Bound on the retained latency / queue-depth sample lists so a
        long-lived gateway cannot grow without limit; once full, new
        samples overwrite the oldest (each list is its own ring buffer).
        Counters and the batch-size histogram are exact regardless.

    Because the sample lists are rings, the latency/queue-depth
    percentiles in :meth:`snapshot` are **windowed** over the most
    recent ``max_samples`` observations — they are not lifetime
    statistics.  Counters, by contrast, are lifetime-exact; pair them
    with the snapshot's ``uptime_s`` (or deltas across ``snapshot_seq``)
    to derive rates.
    """

    def __init__(self, max_samples: int = 100_000):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self._started_at = time.monotonic()
        self._snapshot_seq = 0
        self._lock = threading.Lock()
        self._admitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._batch_sizes: Counter[int] = Counter()
        self._queue_depths = _Ring(max_samples)
        self._latencies_s = _Ring(max_samples)
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0
        self._catalog_swaps: Counter[str] = Counter()
        self._worker_restarts = 0
        self._slice_retries = 0
        self._inline_fallbacks = 0
        self._batch_quarantines = 0
        self._quarantined_requests = 0
        self._deadline_timeouts = 0
        self._shed_requests: Counter[str] = Counter()
        self._faults_injected: Counter[str] = Counter()
        self._degrade_transitions: Counter[str] = Counter()
        self._energy_j: dict[str, float] = {}
        self._carbon_g: dict[str, float] = {}
        self._budget_transitions: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_admission(self, queue_depth: int) -> None:
        """One request accepted into the queue (depth *after* enqueue)."""
        with self._lock:
            self._admitted += 1
            self._queue_depths.push(float(queue_depth))

    def record_rejection(self) -> None:
        """One request bounced by admission control."""
        with self._lock:
            self._rejected += 1

    def record_flush(self, batch_size: int) -> None:
        """One micro-batch cut and dispatched."""
        with self._lock:
            self._batch_sizes[int(batch_size)] += 1

    def record_plan_lookup(self, hit: bool) -> None:
        """One plan-cache probe (only recorded when the cache is enabled)."""
        with self._lock:
            if hit:
                self._plan_cache_hits += 1
            else:
                self._plan_cache_misses += 1

    def record_catalog_swap(self, tenant: str) -> None:
        """One tenant's tool catalog hot-swapped by ``Gateway.update_catalog``."""
        with self._lock:
            self._catalog_swaps[tenant] += 1

    def record_worker_restart(self) -> None:
        """One worker-pool crash detected; an async respawn was kicked off."""
        with self._lock:
            self._worker_restarts += 1

    def record_slice_retry(self) -> None:
        """One failed worker slice resubmitted to the (possibly new) pool."""
        with self._lock:
            self._slice_retries += 1

    def record_inline_fallback(self) -> None:
        """One failed worker slice executed inline after retries ran out."""
        with self._lock:
            self._inline_fallbacks += 1

    def record_batch_quarantine(self, batch_size: int) -> None:
        """One failed micro-batch of ``batch_size`` requests re-processed
        request-by-request (both the batch and its requests are counted)."""
        with self._lock:
            self._batch_quarantines += 1
            self._quarantined_requests += int(batch_size)

    def record_deadline_timeout(self) -> None:
        """One request abandoned because its end-to-end deadline expired."""
        with self._lock:
            self._deadline_timeouts += 1

    def record_shed_request(self, tenant: str) -> None:
        """One request rejected because its tenant is shed (degradation)."""
        with self._lock:
            self._shed_requests[tenant] += 1

    def record_fault(self, hook: str) -> None:
        """One injected fault fired at ``hook`` (chaos harness only)."""
        with self._lock:
            self._faults_injected[hook] += 1

    def record_degradation(self, tenant: str, rung: str, direction: str) -> None:
        """One degradation-ladder transition (``direction`` is down|up)."""
        with self._lock:
            self._degrade_transitions[f"{tenant}:{direction}:{rung}"] += 1

    def record_energy(self, tenant: str, energy_j: float,
                      carbon_g: float) -> None:
        """One request's attributed energy/carbon (see ``repro.power``)."""
        with self._lock:
            self._energy_j[tenant] = (
                self._energy_j.get(tenant, 0.0) + float(energy_j))
            self._carbon_g[tenant] = (
                self._carbon_g.get(tenant, 0.0) + float(carbon_g))

    def record_budget_transition(self, scope: str, target: str,
                                 direction: str) -> None:
        """One budget-controller action: a tenant's ladder move
        (``scope`` is the tenant, ``target`` the new rung) or a device
        power-mode move (``scope="device"``, ``target`` the new mode);
        ``direction`` is down|up."""
        with self._lock:
            self._budget_transitions[f"{scope}:{direction}:{target}"] += 1

    def record_completion(self, latency_s: float, ok: bool = True) -> None:
        """One request finished (``latency_s`` is submit-to-response)."""
        with self._lock:
            if ok:
                self._completed += 1
                self._latencies_s.push(float(latency_s))
            else:
                self._failed += 1

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Point-in-time metrics dict (JSON-serializable).

        Latency and queue-depth percentiles are **windowed** over the
        most recent ``max_samples`` observations (the sample rings), not
        the process lifetime; counters are lifetime-exact.  ``uptime_s``
        (monotonic seconds since construction) and ``snapshot_seq``
        (incremented per snapshot) let scrapers compute rates and detect
        restarts between scrapes.
        """
        with self._lock:
            self._snapshot_seq += 1
            snapshot_seq = self._snapshot_seq
            uptime_s = time.monotonic() - self._started_at
            latencies = self._latencies_s.values()
            depths = self._queue_depths.values()
            sizes = dict(sorted(self._batch_sizes.items()))
            admitted, rejected = self._admitted, self._rejected
            completed, failed = self._completed, self._failed
            plan_hits, plan_misses = self._plan_cache_hits, self._plan_cache_misses
            catalog_swaps = dict(self._catalog_swaps)
            worker_restarts = self._worker_restarts
            slice_retries = self._slice_retries
            inline_fallbacks = self._inline_fallbacks
            batch_quarantines = self._batch_quarantines
            quarantined_requests = self._quarantined_requests
            deadline_timeouts = self._deadline_timeouts
            shed_requests = dict(self._shed_requests)
            faults_injected = dict(self._faults_injected)
            degrade_transitions = dict(self._degrade_transitions)
            energy_j = dict(self._energy_j)
            carbon_g = dict(self._carbon_g)
            budget_transitions = dict(self._budget_transitions)
        n_batches = sum(sizes.values())
        plan_lookups = plan_hits + plan_misses
        n_batched = sum(size * count for size, count in sizes.items())
        return {
            "uptime_s": uptime_s,
            "snapshot_seq": snapshot_seq,
            "requests_admitted": admitted,
            "requests_rejected": rejected,
            "requests_completed": completed,
            "requests_failed": failed,
            "n_batches": n_batches,
            "mean_batch_size": (n_batched / n_batches) if n_batches else 0.0,
            "max_batch_size": max(sizes) if sizes else 0,
            "batch_size_histogram": {str(size): count for size, count in sizes.items()},
            "queue_depth_max": max(depths) if depths else 0.0,
            "queue_depth_mean": (sum(depths) / len(depths)) if depths else 0.0,
            "latency_p50_ms": percentile(latencies, 50.0) * 1e3,
            "latency_p95_ms": percentile(latencies, 95.0) * 1e3,
            "latency_p99_ms": percentile(latencies, 99.0) * 1e3,
            "latency_mean_ms": (sum(latencies) / len(latencies) * 1e3
                                if latencies else 0.0),
            "plan_cache_hits": plan_hits,
            "plan_cache_misses": plan_misses,
            "plan_cache_hit_rate": (plan_hits / plan_lookups
                                    if plan_lookups else 0.0),
            "catalog_swaps": sum(catalog_swaps.values()),
            "catalog_swaps_by_tenant": catalog_swaps,
            "worker_restarts": worker_restarts,
            "slice_retries": slice_retries,
            "inline_fallbacks": inline_fallbacks,
            "batch_quarantines": batch_quarantines,
            "quarantined_requests": quarantined_requests,
            "deadline_timeouts": deadline_timeouts,
            "shed_requests": sum(shed_requests.values()),
            "shed_requests_by_tenant": shed_requests,
            "faults_injected": sum(faults_injected.values()),
            "faults_injected_by_hook": faults_injected,
            "degrade_transitions": sum(degrade_transitions.values()),
            "degrade_transitions_detail": degrade_transitions,
            "energy_j": sum(energy_j.values()),
            "energy_j_by_tenant": energy_j,
            "carbon_g": sum(carbon_g.values()),
            "carbon_g_by_tenant": carbon_g,
            "budget_transitions": sum(budget_transitions.values()),
            "budget_transitions_detail": budget_transitions,
        }

"""Deterministic fault injection for the serving runtime.

Chaos testing the gateway only means something if a failing run can be
replayed: a :class:`FaultPlan` is a frozen, seeded description of *which*
faults fire *how often*, and a :class:`FaultInjector` built from it makes
bit-reproducible decisions by drawing from named BLAKE2-derived RNG
streams (:func:`repro.utils.rng.derive_rng`) — the same plan produces the
same decision sequence at every hook on every platform.

Faults fire at **registered hook points** (see
:data:`repro.registry.FAULT_HOOKS`); the built-in three cover the layers
a production gateway loses first:

``process.execute``
    before a planned group is dealt to the worker pool — a ``crash``
    decision SIGKILLs one pool worker, exercising the supervised
    retry/respawn path.
``batch.process``
    on the batch worker before the processor runs — a ``slow`` decision
    sleeps, exercising deadline enforcement and backpressure.
``gateway.group``
    inside per-group planning/execution — a ``raise`` decision throws
    :class:`InjectedFaultError`, exercising per-group failure isolation
    and batch quarantine.

Injectors are *opt-in*: a gateway built without a plan never consults
one, so the production hot path carries a single ``None`` check.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.registry import register_fault_hook
from repro.utils.rng import derive_rng

#: hook name -> what a fired fault does there (registered so third-party
#: stages can add their own hook points and chaos suites can enumerate)
register_fault_hook("process.execute",
                    "SIGKILL one pool worker before a group is dispatched")
register_fault_hook("batch.process",
                    "stall the batch worker before the processor runs")
register_fault_hook("gateway.group",
                    "raise InjectedFaultError inside one planned group")


class InjectedFaultError(RuntimeError):
    """The simulated failure thrown by a ``gateway.group`` fault."""


@dataclass(frozen=True)
class FaultAction:
    """One fired fault: what to do (``crash`` | ``slow`` | ``raise``)."""

    hook: str
    kind: str
    #: stall duration for ``slow`` actions (0 otherwise)
    sleep_s: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of a chaos scenario.

    Rates are per-invocation firing probabilities in ``[0, 1]`` for each
    built-in hook; ``seed`` namespaces every decision stream, so two
    plans differing only in seed inject at different (but individually
    reproducible) points.
    """

    seed: int = 0
    worker_crash_rate: float = 0.0
    slow_batch_rate: float = 0.0
    slow_batch_ms: float = 0.0
    exception_rate: float = 0.0

    def __post_init__(self):
        for name in ("worker_crash_rate", "slow_batch_rate", "exception_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"FaultPlan.{name} must be in [0, 1], got {rate}")
        if self.slow_batch_ms < 0.0:
            raise ValueError(
                f"FaultPlan.slow_batch_ms must be >= 0, got {self.slow_batch_ms}")

    @property
    def is_empty(self) -> bool:
        return (self.worker_crash_rate == 0.0 and self.slow_batch_rate == 0.0
                and self.exception_rate == 0.0)


class FaultInjector:
    """Draws deterministic fault decisions from a :class:`FaultPlan`.

    Each hook keeps its own invocation counter; decision ``n`` at hook
    ``h`` draws from the stream ``("faults", h, n)`` under the plan's
    seed, so the decision sequence per hook is a pure function of the
    plan — independent of wall-clock time, thread scheduling or what the
    other hooks saw.  The counter is lock-protected (hooks fire from the
    event loop, the batch worker and retry paths).
    """

    #: hook -> (rate field, action kind)
    _HOOK_RATES = {
        "process.execute": ("worker_crash_rate", "crash"),
        "batch.process": ("slow_batch_rate", "slow"),
        "gateway.group": ("exception_rate", "raise"),
    }

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def decide(self, hook: str) -> FaultAction | None:
        """The next deterministic decision at ``hook`` (None = no fault)."""
        try:
            rate_field, kind = self._HOOK_RATES[hook]
        except KeyError:
            raise ValueError(
                f"unknown fault hook {hook!r}; built-in hooks: "
                f"{', '.join(sorted(self._HOOK_RATES))}") from None
        rate = getattr(self.plan, rate_field)
        if rate <= 0.0:
            return None
        with self._lock:
            count = self._counts.get(hook, 0)
            self._counts[hook] = count + 1
        draw = float(derive_rng("faults", hook, count,
                                root_seed=self.plan.seed).random())
        if draw >= rate:
            return None
        sleep_s = self.plan.slow_batch_ms / 1e3 if kind == "slow" else 0.0
        return FaultAction(hook=hook, kind=kind, sleep_s=sleep_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.plan!r})"


def as_injector(faults) -> FaultInjector | None:
    """Normalize a plan/injector/None into an injector (or None).

    Empty plans normalize to ``None`` so the serving hot path skips the
    hook checks entirely when no fault can ever fire.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return None if faults.is_empty else FaultInjector(faults)
    if isinstance(faults, FaultInjector):
        return None if faults.plan.is_empty else faults
    raise TypeError(
        f"faults must be a FaultPlan or FaultInjector, got "
        f"{type(faults).__name__}")

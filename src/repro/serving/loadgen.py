"""Closed-loop load generator for the serving gateway.

``run_closed_loop`` drives a running gateway with ``concurrency``
clients, each submitting the next request from a shared workload as soon
as its previous one completes — the standard closed-loop model, whose
offered load adapts to service throughput.  The sync :func:`run_load`
wrapper owns the event loop and the gateway lifecycle, which is what the
bench harness and tests call.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.core.episode import EpisodeResult
from repro.serving.config import ServingConfig
from repro.serving.gateway import Gateway
from repro.serving.session import SessionManager
from repro.serving.telemetry import percentile
from repro.suites.base import BenchmarkSuite, Query


@dataclass(frozen=True)
class LoadSpec:
    """One request of the workload: tenant plus query."""

    tenant: str
    query: Query


@dataclass
class LoadReport:
    """Aggregate outcome of one closed-loop run."""

    n_requests: int
    concurrency: int
    wall_s: float
    latencies_s: list[float] = field(repr=False, default_factory=list)
    #: ``(tenant, qid, repeat) -> episode``, for equivalence checks
    #: against the offline runner.  ``repeat`` counts completions of the
    #: same (tenant, qid) pair, so a workload that cycles its query pool
    #: keeps *every* served episode — repeats never overwrite each other.
    episodes: dict[tuple[str, str, int], EpisodeResult] = field(
        repr=False, default_factory=dict)
    gateway_metrics: dict = field(default_factory=dict)
    #: per-tenant token accounting (:meth:`Gateway.costs` at run end)
    cost: dict = field(default_factory=dict)
    #: requests that failed (only populated under ``tolerate_errors``)
    n_errors: int = 0

    @property
    def throughput_rps(self) -> float:
        """**Offered** load per wall-second — counts every request, failed
        ones included.  Use :attr:`goodput_rps` for served capacity."""
        return self.n_requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        """Successfully served requests per wall-second.

        The honest capacity number for chaos runs: a run that failed 90%
        of its traffic reports ~10% of its offered :attr:`throughput_rps`
        here, not full throughput.
        """
        if self.wall_s <= 0:
            return 0.0
        return (self.n_requests - self.n_errors) / self.wall_s

    @property
    def success_rate(self) -> float:
        """Fraction of requests that produced an episode."""
        if self.n_requests == 0:
            return 0.0
        return (self.n_requests - self.n_errors) / self.n_requests

    @property
    def latency_p50_ms(self) -> float:
        return percentile(self.latencies_s, 50.0) * 1e3

    @property
    def latency_p95_ms(self) -> float:
        return percentile(self.latencies_s, 95.0) * 1e3

    @property
    def latency_p99_ms(self) -> float:
        return percentile(self.latencies_s, 99.0) * 1e3


async def run_closed_loop(gateway: Gateway, workload: list[LoadSpec],
                          concurrency: int,
                          tolerate_errors: bool = False) -> LoadReport:
    """Drive ``workload`` through a *running* gateway at ``concurrency``.

    With ``tolerate_errors`` a failed request (injected fault, deadline,
    shed tenant, ...) is counted in ``LoadReport.n_errors`` and the
    client moves on — the mode chaos runs use, where failures are the
    point and must not abort the surviving traffic.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    pending = iter(workload)
    latencies: list[float] = []
    episodes: dict[tuple[str, str, int], EpisodeResult] = {}
    repeats: dict[tuple[str, str], int] = {}
    errors = [0]

    async def client() -> None:
        for spec in pending:
            try:
                response = await gateway.submit(spec.tenant, spec.query)
            except Exception:
                if not tolerate_errors:
                    raise
                errors[0] += 1
                continue
            latencies.append(response.latency_s)
            # key by (tenant, qid, repeat): a cycled workload completes
            # the same query many times and every episode must be kept
            # (repeat counts completions, so under concurrency it orders
            # by completion — uniqueness is what equivalence needs)
            key = (spec.tenant, response.episode.qid)
            repeat = repeats.get(key, 0)
            repeats[key] = repeat + 1
            episodes[key + (repeat,)] = response.episode

    started = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(min(concurrency, len(workload)))))
    wall_s = time.perf_counter() - started
    return LoadReport(
        n_requests=len(workload),
        concurrency=concurrency,
        wall_s=wall_s,
        latencies_s=latencies,
        episodes=episodes,
        gateway_metrics=gateway.metrics(),
        cost=gateway.costs(),
        n_errors=errors[0],
    )


def make_workload(suites: dict[str, BenchmarkSuite], n_requests: int) -> list[LoadSpec]:
    """Interleave the tenants' eval queries into an ``n_requests`` stream."""
    if not suites:
        raise ValueError("at least one tenant suite is required")
    for tenant, suite in suites.items():
        if not suite.queries:
            raise ValueError(
                f"tenant {tenant!r} has an empty query list; every tenant "
                f"suite must contribute at least one query to the workload")
    streams = {tenant: suite.queries for tenant, suite in suites.items()}
    workload: list[LoadSpec] = []
    position = 0
    tenants = list(streams)
    while len(workload) < n_requests:
        tenant = tenants[position % len(tenants)]
        queries = streams[tenant]
        workload.append(LoadSpec(tenant, queries[(position // len(tenants)) % len(queries)]))
        position += 1
    return workload


def run_load(
    suites: dict[str, BenchmarkSuite],
    config: ServingConfig,
    n_requests: int,
    concurrency: int,
    embedder=None,
    faults=None,
    tolerate_errors: bool = False,
    tracer=None,
) -> LoadReport:
    """Boot a gateway over ``suites``, drive it closed-loop, shut it down.

    ``faults`` (a :class:`~repro.serving.faults.FaultPlan` or injector)
    arms the gateway's chaos hooks for the run; pair it with
    ``tolerate_errors`` so injected failures are counted, not raised.
    ``tracer`` overrides the tracer ``config.obs`` would build — pass a
    :class:`~repro.obs.trace.Tracer` over a
    :class:`~repro.obs.sinks.MemorySink` you keep a handle on to inspect
    the run's spans afterwards.
    """
    sessions = SessionManager(embedder=embedder)
    for tenant, suite in suites.items():
        sessions.register(tenant, suite)
    workload = make_workload(suites, n_requests)

    async def session() -> LoadReport:
        async with Gateway(sessions, config=config, faults=faults,
                           tracer=tracer) as gateway:
            return await run_closed_loop(gateway, workload, concurrency,
                                         tolerate_errors=tolerate_errors)

    return asyncio.run(session())

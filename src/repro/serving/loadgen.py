"""Closed-loop load generator for the serving gateway.

``run_closed_loop`` drives a running gateway with ``concurrency``
clients, each submitting the next request from a shared workload as soon
as its previous one completes — the standard closed-loop model, whose
offered load adapts to service throughput.  The sync :func:`run_load`
wrapper owns the event loop and the gateway lifecycle, which is what the
bench harness and tests call.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.core.episode import EpisodeResult
from repro.serving.config import ServingConfig
from repro.serving.gateway import Gateway
from repro.serving.session import SessionManager
from repro.serving.telemetry import percentile
from repro.suites.base import BenchmarkSuite, Query


@dataclass(frozen=True)
class LoadSpec:
    """One request of the workload: tenant plus query."""

    tenant: str
    query: Query


@dataclass
class LoadReport:
    """Aggregate outcome of one closed-loop run."""

    n_requests: int
    concurrency: int
    wall_s: float
    latencies_s: list[float] = field(repr=False, default_factory=list)
    #: qid -> episode, for equivalence checks against the offline runner
    episodes: dict[str, EpisodeResult] = field(repr=False, default_factory=dict)
    gateway_metrics: dict = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def latency_p50_ms(self) -> float:
        return percentile(self.latencies_s, 50.0) * 1e3

    @property
    def latency_p95_ms(self) -> float:
        return percentile(self.latencies_s, 95.0) * 1e3

    @property
    def latency_p99_ms(self) -> float:
        return percentile(self.latencies_s, 99.0) * 1e3


async def run_closed_loop(gateway: Gateway, workload: list[LoadSpec],
                          concurrency: int) -> LoadReport:
    """Drive ``workload`` through a *running* gateway at ``concurrency``."""
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    pending = iter(workload)
    latencies: list[float] = []
    episodes: dict[str, EpisodeResult] = {}

    async def client() -> None:
        for spec in pending:
            response = await gateway.submit(spec.tenant, spec.query)
            latencies.append(response.latency_s)
            episodes[response.episode.qid] = response.episode

    started = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(min(concurrency, len(workload)))))
    wall_s = time.perf_counter() - started
    return LoadReport(
        n_requests=len(workload),
        concurrency=concurrency,
        wall_s=wall_s,
        latencies_s=latencies,
        episodes=episodes,
        gateway_metrics=gateway.metrics(),
    )


def make_workload(suites: dict[str, BenchmarkSuite], n_requests: int) -> list[LoadSpec]:
    """Interleave the tenants' eval queries into an ``n_requests`` stream."""
    if not suites:
        raise ValueError("at least one tenant suite is required")
    streams = {tenant: suite.queries for tenant, suite in suites.items()}
    workload: list[LoadSpec] = []
    position = 0
    tenants = list(streams)
    while len(workload) < n_requests:
        tenant = tenants[position % len(tenants)]
        queries = streams[tenant]
        workload.append(LoadSpec(tenant, queries[(position // len(tenants)) % len(queries)]))
        position += 1
    return workload


def run_load(
    suites: dict[str, BenchmarkSuite],
    config: ServingConfig,
    n_requests: int,
    concurrency: int,
    embedder=None,
) -> LoadReport:
    """Boot a gateway over ``suites``, drive it closed-loop, shut it down."""
    sessions = SessionManager(embedder=embedder)
    for tenant, suite in suites.items():
        sessions.register(tenant, suite)
    workload = make_workload(suites, n_requests)

    async def session() -> LoadReport:
        async with Gateway(sessions, config=config) as gateway:
            return await run_closed_loop(gateway, workload, concurrency)

    return asyncio.run(session())

"""Multi-tenant session state: per-tenant tool catalogs and Search Levels.

Each tenant is one :class:`~repro.suites.base.BenchmarkSuite` — its own
tool registry, offline-built Search Levels and lazily-constructed agent
grid cells.  Tenants share a single lock-protected
:class:`~repro.embedding.cache.CachedEmbedder`, so the vector for a
given text is computed once across the whole gateway regardless of which
tenant first asked for it.
"""

from __future__ import annotations

import threading

from repro.embedding.cache import CachedEmbedder
from repro.evaluation.runner import ExperimentRunner
from repro.suites.base import BenchmarkSuite, Query


class UnknownTenantError(KeyError):
    """Raised when a request names a tenant that was never registered."""


class TenantSession:
    """One tenant's serving state: suite, Search Levels, agent cache.

    Agents are constructed lazily per ``(scheme, model, quant)`` cell via
    the tenant's :class:`ExperimentRunner` (so Search Levels are built
    once and shared, exactly like the offline evaluation path) and cached
    for reuse across requests.  Serving agents keep their executor's
    per-call log disabled: episodes from many users would otherwise
    accumulate in one unbounded list.

    The tool catalog is hot-swappable: :meth:`swap_catalog` re-tools the
    suite, re-indexes the Search Levels and drops the agent cache in one
    atomic reference swap, and :attr:`catalog_version` — returned
    together with the agent by :meth:`leased_agent` — keys the gateway's
    plan cache so a plan computed against one catalog can never be
    replayed against another.
    """

    def __init__(self, name: str, suite: BenchmarkSuite, embedder: CachedEmbedder,
                 engine=None):
        self.name = name
        self.suite = suite
        self.engine = engine
        self.runner = ExperimentRunner(suite, embedder=embedder, engine=engine)
        self._agents: dict[tuple[str, str, str], object] = {}
        self._lock = threading.Lock()
        self._index_queries(suite)

    def _index_queries(self, suite: BenchmarkSuite) -> None:
        """(Re)build the qid and exact-text lookup maps for ``suite``."""
        self._queries_by_qid = {query.qid: query for query in suite.queries}
        self._queries_by_text = {query.text: query for query in suite.queries}

    @property
    def catalog_version(self) -> str:
        """Content-hash version of the currently served tool catalog."""
        return self.suite.catalog.version

    def agent_for(self, scheme: str, model: str, quant: str):
        """Return (building if needed) the agent for one grid cell."""
        return self.leased_agent(scheme, model, quant)[0]

    def leased_agent(self, scheme: str, model: str,
                     quant: str) -> tuple[object, str]:
        """``(agent, catalog_version)`` under one lock acquisition.

        The pair is consistent by construction: a concurrent
        :meth:`swap_catalog` lands either entirely before (new agent +
        new version) or entirely after (old agent + old version), so the
        gateway never caches a plan under the wrong catalog version.
        """
        key = (scheme, model, quant)
        with self._lock:
            agent = self._agents.get(key)
            if agent is None:
                agent = self.runner.make_agent(scheme, model, quant)
                agent.executor.log_calls = False
                self._agents[key] = agent
            return agent, self.suite.catalog.version

    def swap_catalog(self, catalog, warm_cell: tuple[str, str, str] | None = None):
        """Atomically re-tool this tenant onto ``catalog``.

        The expensive work — re-validating gold calls against the new
        catalog, re-building the Search Levels over the new description
        corpus, warming the default agent cell — happens *before* the
        swap, on the caller's thread, against fresh objects; the running
        state is then replaced in one lock-protected reference swap, so
        concurrent :meth:`leased_agent` callers see either the complete
        old state or the complete new state, never a mix.

        Returns the new catalog version.  A catalog that dropped a tool
        the query pool still references fails validation here, leaving
        the tenant untouched.
        """
        new_suite = self.suite.with_catalog(catalog)  # validates gold calls
        new_runner = ExperimentRunner(new_suite, embedder=self.runner.embedder,
                                      engine=self.engine)
        _ = new_runner.levels  # re-index now, not on the first request
        new_runner.embedder.encode(new_suite.registry.descriptions())
        new_agents: dict[tuple[str, str, str], object] = {}
        if warm_cell is not None:
            agent = new_runner.make_agent(*warm_cell)
            agent.executor.log_calls = False
            new_agents[warm_cell] = agent
        with self._lock:
            self.suite = new_suite
            self.runner = new_runner
            self._agents = new_agents
            self._index_queries(new_suite)
        return new_suite.catalog.version

    def resolve_query(self, query: Query | str) -> Query:
        """Accept a :class:`Query` or a qid string from this tenant's suite."""
        if isinstance(query, Query):
            return query
        try:
            return self._queries_by_qid[query]
        except KeyError:
            raise KeyError(
                f"tenant {self.name!r} has no query with qid {query!r}") from None

    def resolve_text(self, text: str) -> Query:
        """Find the suite query whose text matches ``text`` exactly.

        Episodes are only defined for queries with gold calls, so the
        HTTP edge serves suite queries by qid *or* by their exact text —
        free-form text has no ground truth to score against.
        """
        try:
            return self._queries_by_text[text]
        except KeyError:
            raise KeyError(
                f"tenant {self.name!r} has no query with text {text!r}; "
                f"address suite queries by qid or their exact text") from None

    def warm(self, scheme: str, model: str, quant: str) -> None:
        """Build levels, the agent and the tool-corpus embeddings up front.

        Serving latency should not pay the one-time offline cost on the
        first request, so the gateway warms every registered tenant's
        default cell before accepting traffic.
        """
        agent = self.agent_for(scheme, model, quant)
        agent.embedder.encode(self.suite.registry.descriptions())


class SessionManager:
    """Registry of tenants sharing one embedder cache.

    Thread-safe: tenants may be registered while the gateway serves
    (e.g. onboarding a new tool catalog), and lookups happen from both
    the event loop and the batch worker.
    """

    def __init__(self, embedder: CachedEmbedder | None = None):
        self.embedder = embedder if embedder is not None else CachedEmbedder()
        self._tenants: dict[str, TenantSession] = {}
        self._lock = threading.Lock()

    def register(self, name: str, suite: BenchmarkSuite,
                 engine=None) -> TenantSession:
        """Add a tenant serving ``suite``; duplicate names are an error.

        ``engine`` (an :class:`~repro.specs.EngineSpec`, or ``None`` for
        the simulated default) selects the LLM backend for every agent
        this tenant builds — including after catalog hot-swaps.
        """
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} already registered")
            session = TenantSession(name, suite, self.embedder, engine=engine)
            self._tenants[name] = session
            return session

    def deregister(self, name: str) -> None:
        """Remove a tenant; unknown names raise :class:`UnknownTenantError`.

        In-flight requests that already resolved their session finish
        normally; later submissions fail with the unknown-tenant error.
        """
        with self._lock:
            if name not in self._tenants:
                raise UnknownTenantError(
                    f"unknown tenant {name!r}; registered: {sorted(self._tenants)}")
            del self._tenants[name]

    def get(self, name: str) -> TenantSession:
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise UnknownTenantError(
                    f"unknown tenant {name!r}; registered: {sorted(self._tenants)}"
                ) from None

    @property
    def tenant_names(self) -> list[str]:
        with self._lock:
            return list(self._tenants)

    def warm_all(self, scheme: str, model: str, quant: str) -> None:
        """Warm every registered tenant's default grid cell."""
        for name in self.tenant_names:
            self.get(name).warm(scheme, model, quant)

    def runners(self) -> dict[str, "ExperimentRunner"]:
        """Snapshot of each tenant's *current* runner, for pool priming.

        Taken at pool start and again at every supervised respawn — so a
        pool rebuilt after a worker crash is primed with post-hot-swap
        runners, healing tenants that had been demoted to inline
        execution by :meth:`~repro.serving.gateway.Gateway.update_catalog`.
        """
        return {name: self.get(name).runner for name in self.tenant_names}

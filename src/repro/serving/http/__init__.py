"""The gateway's HTTP front door: plain-ASGI app, clients, server.

See :mod:`repro.serving.http.app` for the endpoint and error-mapping
tables.  Typical wiring::

    from repro import ServingSpec, TenantSpec, open_session
    from repro.serving.http import create_app, ASGITestClient

    gateway = open_session(suite="edgehome").serve(ServingSpec(...))
    app = create_app(gateway)
    async with app:                       # starts/stops the gateway
        client = ASGITestClient(app)
        response = await client.post("/v1/call", json_body={...})
"""

from repro.serving.http.app import (
    ERROR_STATUS,
    GatewayHTTPApp,
    create_app,
    map_error,
)
from repro.serving.http.client import (
    ASGITestClient,
    HTTPConnection,
    Response,
    lifespan_shutdown,
    lifespan_startup,
)
from repro.serving.http.server import AsgiServer, run_uvicorn, serve_gateway
from repro.serving.http.wire import BadRequestError

__all__ = [
    "ASGITestClient",
    "AsgiServer",
    "BadRequestError",
    "ERROR_STATUS",
    "GatewayHTTPApp",
    "HTTPConnection",
    "Response",
    "create_app",
    "lifespan_shutdown",
    "lifespan_startup",
    "map_error",
    "run_uvicorn",
    "serve_gateway",
]

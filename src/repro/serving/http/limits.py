"""Edge admission control: per-tenant token buckets for the HTTP door.

The gateway already has *queue* admission control (``QueueFullError`` →
429 once a batch queue fills); the limiter here is the cheaper edge
layer in front of it — drop a flooding tenant's requests before they
cost a queue slot or a batch seat.  Buckets are classic token buckets:
``rps`` tokens refill per second up to ``burst`` capacity, one token
per request, and a drained bucket reports how long until the next token
so the 429 can carry an honest ``Retry-After``.
"""

from __future__ import annotations

import math
import threading
import time


class RateLimiter:
    """Per-key token buckets with a shared rate/burst policy.

    ``clock`` is injectable (monotonic seconds) so tests refill buckets
    without sleeping.  Thread-safe: the HTTP edge may check limits from
    multiple event-loop callbacks or server threads.
    """

    def __init__(self, rps: float, burst: int | None = None, *,
                 clock=time.monotonic):
        if rps <= 0.0:
            raise ValueError(f"rps must be > 0, got {rps}")
        #: default burst: one second of refill, at least one token
        self.rps = float(rps)
        self.burst = int(burst) if burst is not None else max(1, math.ceil(rps))
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self._clock = clock
        self._buckets: dict[str, tuple[float, float]] = {}  # key -> (tokens, t)
        self._lock = threading.Lock()

    def try_acquire(self, key: str) -> float:
        """Take one token for ``key``; returns seconds to wait (0.0 = admitted).

        A positive return means the bucket is drained: the caller should
        reject the request and surface the value as ``Retry-After``.
        """
        now = self._clock()
        with self._lock:
            tokens, last = self._buckets.get(key, (float(self.burst), now))
            tokens = min(float(self.burst), tokens + (now - last) * self.rps)
            if tokens >= 1.0:
                self._buckets[key] = (tokens - 1.0, now)
                return 0.0
            self._buckets[key] = (tokens, now)
            return (1.0 - tokens) / self.rps

"""A tiny method+path router for the plain-ASGI app.

Routes are registered as ``(method, pattern)`` pairs where a pattern
segment of the form ``{name}`` captures that path segment into the
handler's ``params`` dict.  Matching is exact-segment, no regexes:
the API surface is small enough that anything fancier would be
machinery for its own sake.
"""

from __future__ import annotations


class Route:
    __slots__ = ("method", "segments", "handler")

    def __init__(self, method: str, pattern: str, handler) -> None:
        self.method = method.upper()
        self.segments = tuple(pattern.strip("/").split("/")) if pattern.strip("/") else ()
        self.handler = handler

    def match(self, segments: tuple[str, ...]) -> dict[str, str] | None:
        if len(segments) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for expected, actual in zip(self.segments, segments):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params


class Router:
    """Match (method, path) to a handler; distinguish 404 from 405."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, method: str, pattern: str, handler) -> None:
        self._routes.append(Route(method, pattern, handler))

    def resolve(self, method: str, path: str):
        """Return ``(handler, params, allowed)``.

        ``handler`` is None when nothing matched; ``allowed`` carries the
        methods valid for this path so the caller can pick 404 vs 405.
        """
        segments = tuple(path.strip("/").split("/")) if path.strip("/") else ()
        allowed: list[str] = []
        for route in self._routes:
            params = route.match(segments)
            if params is None:
                continue
            if route.method == method.upper():
                return route.handler, params, allowed
            allowed.append(route.method)
        return None, {}, sorted(set(allowed))

"""ASGI wire helpers: request body handling and JSON/text responses.

The HTTP front door deliberately speaks raw ASGI — an
``app(scope, receive, send)`` callable with no FastAPI/starlette
dependency — so tier-1 stays offline-installable.  This module is the
whole "framework": read a request body, decode JSON with actionable
errors, and send JSON / plain-text responses with correct headers.
"""

from __future__ import annotations

import json


class BadRequestError(ValueError):
    """Client-side validation failure; mapped to HTTP 400.

    Raised for malformed JSON bodies, missing/unknown fields and
    type errors — anything the client can fix by correcting the request.
    """


async def read_body(receive) -> bytes:
    """Drain the ASGI receive channel into one bytes body."""
    chunks: list[bytes] = []
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            break
        chunks.append(message.get("body", b""))
        if not message.get("more_body", False):
            break
    return b"".join(chunks)


def parse_json(body: bytes) -> dict:
    """Decode a JSON object body; empty bodies decode to ``{}``."""
    if not body:
        return {}
    try:
        decoded = json.loads(body)
    except json.JSONDecodeError as exc:
        raise BadRequestError(f"request body is not valid JSON: {exc}") from None
    if not isinstance(decoded, dict):
        raise BadRequestError(
            f"request body must be a JSON object, got {type(decoded).__name__}")
    return decoded


def require_field(payload: dict, name: str, kind: type = str):
    """Fetch a required, typed field from a decoded JSON body."""
    if name not in payload:
        raise BadRequestError(f"missing required field {name!r}")
    value = payload[name]
    if not isinstance(value, kind):
        raise BadRequestError(
            f"field {name!r} must be a {kind.__name__}, "
            f"got {type(value).__name__}")
    return value


def check_fields(payload: dict, allowed: tuple[str, ...]) -> None:
    """Reject unknown body fields loudly (typos fail, not silently drop)."""
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise BadRequestError(
            f"unknown field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(allowed)}")


def _encode_headers(headers: dict[str, str] | None,
                    content_type: str, body: bytes) -> list[tuple[bytes, bytes]]:
    wire = [(b"content-type", content_type.encode("latin-1")),
            (b"content-length", str(len(body)).encode("latin-1"))]
    for key, value in (headers or {}).items():
        wire.append((key.lower().encode("latin-1"), value.encode("latin-1")))
    return wire


async def send_response(send, status: int, body: bytes, content_type: str,
                        headers: dict[str, str] | None = None) -> None:
    """Emit one complete ASGI response."""
    await send({
        "type": "http.response.start",
        "status": status,
        "headers": _encode_headers(headers, content_type, body),
    })
    await send({"type": "http.response.body", "body": body})


async def send_json(send, status: int, payload: dict,
                    headers: dict[str, str] | None = None) -> None:
    body = (json.dumps(payload) + "\n").encode("utf-8")
    await send_response(send, status, body, "application/json",
                        headers=headers)


async def send_text(send, status: int, text: str,
                    content_type: str = "text/plain; charset=utf-8",
                    headers: dict[str, str] | None = None) -> None:
    await send_response(send, status, text.encode("utf-8"), content_type,
                        headers=headers)

"""Socket hosting for the ASGI app.

:class:`AsgiServer` is a small asyncio HTTP/1.1 server — request line +
headers + Content-Length bodies, keep-alive connections — just enough
wire protocol to put :class:`~.app.GatewayHTTPApp` on a real port
without requiring uvicorn.  When uvicorn *is* installed,
:func:`run_uvicorn` mounts the same app unchanged (it is plain ASGI);
``repro serve --uvicorn`` selects it.

The server intentionally does not implement chunked transfer, TLS or
HTTP/2: the front door is a reproduction-scale serving edge, and every
byte of protocol here is a byte tier-1 has to keep working offline.
"""

from __future__ import annotations

import asyncio
from http.client import responses as _REASONS

from repro.serving.http.app import create_app
from repro.specs import HttpSpec

#: bound on request head (request line + headers) and body sizes
MAX_HEAD_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024


class _BadRequest(Exception):
    """Malformed wire data; the connection gets a 400 and is closed."""


class AsgiServer:
    """Serve one ASGI app over real sockets with asyncio streams.

    Usage::

        server = AsgiServer(app, http=HttpSpec(port=0))
        await server.start()          # server.port is the bound port
        ...
        await server.stop()

    Lifespan is *not* driven here — callers own the app/gateway
    lifecycle (``async with app:``), so a server restart never double
    starts the gateway.
    """

    def __init__(self, app, http: HttpSpec | None = None):
        self.app = app
        self.http = http if http is not None else HttpSpec(port=0)
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.http.host,
            port=self.http.port, backlog=self.http.backlog)

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the OS's pick)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.http.host}:{self.port}"

    async def __aenter__(self) -> "AsgiServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client closed between requests
                except asyncio.LimitOverrunError:
                    raise _BadRequest("request head too large") from None
                if len(head) > MAX_HEAD_BYTES:
                    raise _BadRequest("request head too large")
                method, path, headers = _parse_head(head)
                body = b""
                length = int(headers.get("content-length", "0") or "0")
                if length > MAX_BODY_BYTES:
                    raise _BadRequest(f"request body too large ({length}B)")
                if length:
                    body = await reader.readexactly(length)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._dispatch(method, path, headers, body, writer,
                                     keep_alive)
                if not keep_alive:
                    return
        except asyncio.CancelledError:
            return  # server torn down mid-read; nothing to answer
        except _BadRequest as exc:
            _write_response(writer, 400, [],
                            f'{{"error": {{"type": "BadRequest", '
                            f'"message": "{exc}", "status": 400}}}}\n'
                            .encode("utf-8"), keep_alive=False)
            try:
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            writer.close()

    async def _dispatch(self, method: str, path: str, headers: dict,
                        body: bytes, writer: asyncio.StreamWriter,
                        keep_alive: bool) -> None:
        messages = [{"type": "http.request", "body": body,
                     "more_body": False}]

        async def receive():
            if messages:
                return messages.pop(0)
            return {"type": "http.disconnect"}

        state = {"status": 500, "headers": [], "chunks": []}

        async def send(message):
            if message["type"] == "http.response.start":
                state["status"] = message["status"]
                state["headers"] = list(message.get("headers", []))
            elif message["type"] == "http.response.body":
                state["chunks"].append(message.get("body", b""))

        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method,
            "path": path,
            "raw_path": path.encode("latin-1"),
            "query_string": b"",
            "headers": [(key.encode("latin-1"), value.encode("latin-1"))
                        for key, value in headers.items()],
            "server": (self.http.host, self.port),
        }
        try:
            await self.app(scope, receive, send)
            payload = b"".join(state["chunks"])
            _write_response(writer, state["status"], state["headers"],
                            payload, keep_alive=keep_alive)
        except Exception:  # noqa: BLE001 - app crashed below its own net
            _write_response(writer, 500, [],
                            b'{"error": {"type": "InternalServerError", '
                            b'"status": 500}}\n', keep_alive=False)
        await writer.drain()


def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise _BadRequest("malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise _BadRequest(f"unsupported protocol {version!r}")
    path = target.split("?", 1)[0]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise _BadRequest(f"malformed header line {line!r}")
        key, value = line.split(":", 1)
        headers[key.strip().lower()] = value.strip()
    return method.upper(), path, headers


def _write_response(writer: asyncio.StreamWriter, status: int,
                    headers: list[tuple[bytes, bytes]], body: bytes,
                    keep_alive: bool) -> None:
    reason = _REASONS.get(status, "Unknown")
    parts = [f"HTTP/1.1 {status} {reason}\r\n".encode("latin-1")]
    seen = set()
    for key, value in headers:
        seen.add(key.lower())
        parts.append(key + b": " + value + b"\r\n")
    if b"content-length" not in seen:
        parts.append(f"content-length: {len(body)}\r\n".encode("latin-1"))
    parts.append(b"connection: keep-alive\r\n" if keep_alive
                 else b"connection: close\r\n")
    parts.append(b"\r\n")
    parts.append(body)
    writer.write(b"".join(parts))


async def serve_gateway(gateway, http: HttpSpec | None = None,
                        ready=None, shutdown=None) -> None:
    """Boot ``gateway`` behind an :class:`AsgiServer` and serve until
    ``shutdown`` (an :class:`asyncio.Event`) is set — forever without one.

    ``ready`` (optional callable) receives the server once it is bound —
    how callers learn an ephemeral port.  The gateway starts through the
    app's idempotent startup, so a pre-started gateway works too.
    """
    http = http if http is not None else gateway.config.http
    app = create_app(gateway, http=http)
    async with app:
        async with AsgiServer(app, http=http) as server:
            if ready is not None:
                ready(server)
            if shutdown is None:
                shutdown = asyncio.Event()  # effectively serve forever
            await shutdown.wait()


def run_uvicorn(app, http: HttpSpec) -> None:
    """Serve through uvicorn when it is installed (optional extra).

    uvicorn drives the app's lifespan protocol itself, so the gateway
    starts and stops with the server process.
    """
    try:
        import uvicorn
    except ImportError:
        raise RuntimeError(
            "uvicorn is not installed; run without --uvicorn to use the "
            "builtin asyncio server") from None
    uvicorn.run(app, host=http.host, port=http.port,
                backlog=http.backlog, log_level="info")

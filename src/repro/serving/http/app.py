"""The HTTP front door: a plain-ASGI application over one Gateway.

``create_app(gateway)`` returns an ``app(scope, receive, send)``
callable — no FastAPI, no starlette — wiring the gateway's whole
operator surface to HTTP:

====== ============================== =======================================
Method Path                           What it does
====== ============================== =======================================
POST   ``/v1/call``                   Serve one request (qid or exact text)
GET    ``/v1/tenants``                List registered tenants
GET    ``/v1/tenants/{name}``         One tenant's serving summary
PUT    ``/v1/tenants/{name}``         Register a tenant / hot-swap catalog
DELETE ``/v1/tenants/{name}``         Deregister a tenant
GET    ``/v1/tenants/{name}/status``  Degradation rung + cost snapshot
GET    ``/healthz``                   Gateway + worker-pool liveness
GET    ``/metrics``                   Prometheus text exposition
====== ============================== =======================================

Serving exceptions map to status codes **once**, in :data:`ERROR_STATUS`
— the same table the tests exercise row by row — and every response that
went through :meth:`Gateway.submit` carries the request's deterministic
trace id in an ``X-Trace-Id`` header (success and failure alike).
"""

from __future__ import annotations

import math

from repro.serving.batcher import QueueFullError, SchedulerStoppedError
from repro.serving.gateway import DeadlineExceededError, Gateway, TenantShedError
from repro.serving.http.limits import RateLimiter
from repro.serving.http.router import Router
from repro.serving.http.wire import (
    BadRequestError,
    check_fields,
    parse_json,
    read_body,
    require_field,
    send_json,
    send_text,
)
from repro.serving.session import UnknownTenantError
from repro.specs import CatalogSpec, SuiteSpec

#: The error-mapping table: first matching row wins, so subclasses
#: (``BadRequestError`` < ``ValueError``, ``UnknownTenantError`` <
#: ``KeyError``) must precede their bases.  Anything unmatched is a 500.
ERROR_STATUS: tuple[tuple[type[BaseException], int], ...] = (
    (QueueFullError, 429),
    (DeadlineExceededError, 504),
    (TenantShedError, 503),
    (SchedulerStoppedError, 503),
    (UnknownTenantError, 404),
    (KeyError, 404),          # unknown qid / query text
    (BadRequestError, 400),
    (ValueError, 400),        # spec/config validation
)

#: Prometheus text exposition content type (no OpenMetrics negotiation)
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_CALL_FIELDS = ("tenant", "qid", "query", "scheme", "model", "quant",
                "timeout_ms")
_TENANT_PUT_FIELDS = ("suite", "catalog", "n_queries", "seed")


def error_payload(exc: BaseException, status: int) -> dict:
    """The JSON body for one mapped error."""
    payload = {"error": {
        "type": type(exc).__name__,
        "message": str(exc),
        "status": status,
    }}
    if isinstance(exc, QueueFullError):
        # operators triaging a 429 need to see *who* is flooding
        payload["error"]["depth"] = exc.depth
        payload["error"]["capacity"] = exc.capacity
        payload["error"]["per_tenant"] = exc.per_tenant
    return payload


def map_error(exc: BaseException) -> tuple[int, dict]:
    """Resolve one exception through :data:`ERROR_STATUS`."""
    for exc_type, status in ERROR_STATUS:
        if isinstance(exc, exc_type):
            return status, error_payload(exc, status)
    return 500, error_payload(exc, 500)


class GatewayHTTPApp:
    """The ASGI callable; holds the gateway and the route table.

    Usable three ways: mounted in any ASGI server (``lifespan`` events
    start/stop the gateway), driven directly by the in-process test
    client (``async with app: ...``), or served over real sockets by
    :func:`repro.serving.http.serve_gateway`.

    ``http`` (an :class:`~repro.specs.HttpSpec`, default the gateway
    config's) carries the edge-hardening knobs: with ``api_key`` set,
    every route except ``/healthz`` demands ``Authorization: Bearer
    <key>`` (401 otherwise); with ``rate_limit_rps`` set, ``POST
    /v1/call`` runs each tenant through a token bucket and answers 429
    with a ``Retry-After`` header once drained.  Both are off by
    default — the edge stays a transparent wire.
    """

    def __init__(self, gateway: Gateway, http=None):
        self.gateway = gateway
        if http is None:
            http = getattr(gateway.config, "http", None)
        self.http = http
        self.api_key = getattr(http, "api_key", None)
        rps = getattr(http, "rate_limit_rps", None)
        self.rate_limiter = (
            RateLimiter(rps, getattr(http, "rate_limit_burst", None))
            if rps is not None else None)
        self.router = Router()
        self.router.add("POST", "/v1/call", self._call)
        self.router.add("GET", "/v1/tenants", self._list_tenants)
        self.router.add("GET", "/v1/tenants/{name}", self._get_tenant)
        self.router.add("PUT", "/v1/tenants/{name}", self._put_tenant)
        self.router.add("DELETE", "/v1/tenants/{name}", self._delete_tenant)
        self.router.add("GET", "/v1/tenants/{name}/status", self._tenant_status)
        self.router.add("GET", "/healthz", self._healthz)
        self.router.add("GET", "/metrics", self._metrics)

    # ------------------------------------------------------------------
    # ASGI entry
    # ------------------------------------------------------------------
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(
                f"unsupported ASGI scope type {scope['type']!r}")
        # liveness probes must never need credentials (or a kubelet-style
        # monitor with no secret would restart a healthy server)
        if self.api_key is not None and scope["path"] != "/healthz":
            if self._bearer_token(scope) != self.api_key:
                await send_json(send, 401, {"error": {
                    "type": "Unauthorized",
                    "message": "missing or invalid API key; send "
                               "'Authorization: Bearer <key>'",
                    "status": 401}},
                    headers={"www-authenticate": "Bearer"})
                return
        handler, params, allowed = self.router.resolve(
            scope["method"], scope["path"])
        if handler is None:
            if allowed:
                await send_json(send, 405, {"error": {
                    "type": "MethodNotAllowed",
                    "message": f"{scope['method']} not allowed for "
                               f"{scope['path']}",
                    "status": 405}},
                    headers={"allow": ", ".join(allowed)})
            else:
                await send_json(send, 404, {"error": {
                    "type": "NotFound",
                    "message": f"no route for {scope['path']}",
                    "status": 404}})
            return
        try:
            await handler(receive, send, params)
        except Exception as exc:  # noqa: BLE001 - mapped, never a socket drop
            status, payload = map_error(exc)
            headers = {}
            trace_id = getattr(exc, "trace_id", "")
            if trace_id:
                headers["x-trace-id"] = trace_id
            await send_json(send, status, payload, headers=headers)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def startup(self) -> None:
        """Start the gateway unless something already did (idempotent, so
        a pre-started gateway can be wrapped and served as-is)."""
        if not self.gateway.scheduler.running:
            await self.gateway.start()

    async def shutdown(self) -> None:
        await self.gateway.stop()

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                try:
                    await self.startup()
                except Exception as exc:  # noqa: BLE001 - report, don't hang
                    await send({"type": "lifespan.startup.failed",
                                "message": str(exc)})
                    return
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await self.shutdown()
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def __aenter__(self) -> "GatewayHTTPApp":
        await self.startup()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    @staticmethod
    def _bearer_token(scope) -> str | None:
        """The ``Authorization: Bearer`` credential in ``scope``, if any."""
        for name, value in scope.get("headers", ()):
            if name.lower() == b"authorization":
                text = value.decode("latin-1")
                if text.lower().startswith("bearer "):
                    return text[7:].strip()
                return None
        return None

    async def _call(self, receive, send, params) -> None:
        payload = parse_json(await read_body(receive))
        check_fields(payload, _CALL_FIELDS)
        tenant = require_field(payload, "tenant")
        if self.rate_limiter is not None:
            wait_s = self.rate_limiter.try_acquire(tenant)
            if wait_s > 0.0:
                await send_json(send, 429, {"error": {
                    "type": "RateLimited",
                    "message": f"tenant {tenant!r} exceeded "
                               f"{self.http.rate_limit_rps:g} requests/s",
                    "status": 429,
                    "retry_after_s": wait_s}},
                    headers={"retry-after": str(max(1, math.ceil(wait_s)))})
                return
        qid = payload.get("qid")
        text = payload.get("query")
        if (qid is None) == (text is None):
            raise BadRequestError(
                "provide exactly one of 'qid' or 'query' (exact suite "
                "query text)")
        overrides = {}
        for name in ("scheme", "model", "quant"):
            value = payload.get(name)
            if value is not None and not isinstance(value, str):
                raise BadRequestError(
                    f"field {name!r} must be a str, "
                    f"got {type(value).__name__}")
            overrides[name] = value
        timeout_ms = payload.get("timeout_ms")
        if timeout_ms is not None and not isinstance(
                timeout_ms, (int, float)):
            raise BadRequestError(
                f"field 'timeout_ms' must be a number, "
                f"got {type(timeout_ms).__name__}")
        if qid is not None:
            if not isinstance(qid, str):
                raise BadRequestError(
                    f"field 'qid' must be a str, got {type(qid).__name__}")
            query = qid
        else:
            if not isinstance(text, str):
                raise BadRequestError(
                    f"field 'query' must be a str, got {type(text).__name__}")
            query = self.gateway.sessions.get(tenant).resolve_text(text)
        response = await self.gateway.submit(
            tenant, query, timeout_ms=timeout_ms, **overrides)
        await send_json(send, 200, {
            "tenant": response.tenant,
            "trace_id": response.trace_id,
            "batch_size": response.batch_size,
            "queued_s": response.queued_s,
            "latency_s": response.latency_s,
            "episode": response.episode.to_dict(),
        }, headers={"x-trace-id": response.trace_id})

    def _tenant_summary(self, session) -> dict:
        catalog = session.suite.catalog
        return {
            "name": session.name,
            "suite": session.suite.name,
            "catalog": catalog.name,
            "catalog_variant": catalog.variant,
            "catalog_version": session.catalog_version,
            "n_tools": len(catalog),
            "n_queries": len(session.suite.queries),
        }

    async def _list_tenants(self, receive, send, params) -> None:
        sessions = self.gateway.sessions
        tenants = [self._tenant_summary(sessions.get(name))
                   for name in sorted(sessions.tenant_names)]
        await send_json(send, 200, {"tenants": tenants})

    async def _get_tenant(self, receive, send, params) -> None:
        session = self.gateway.sessions.get(params["name"])
        await send_json(send, 200, self._tenant_summary(session))

    async def _put_tenant(self, receive, send, params) -> None:
        name = params["name"]
        payload = parse_json(await read_body(receive))
        check_fields(payload, _TENANT_PUT_FIELDS)
        catalog = payload.get("catalog")
        if catalog is not None and not isinstance(catalog, (str, dict)):
            raise BadRequestError(
                "field 'catalog' must be a catalog name or a CatalogSpec "
                f"object, got {type(catalog).__name__}")
        if name in self.gateway.sessions.tenant_names:
            # existing tenant: the only mutation is a catalog hot-swap
            if "suite" in payload:
                raise BadRequestError(
                    f"tenant {name!r} already registered; its suite cannot "
                    f"be changed in place (DELETE then re-PUT)")
            if catalog is None:
                raise BadRequestError(
                    f"tenant {name!r} already registered; PUT with a "
                    f"'catalog' field to hot-swap its tool catalog")
            spec = (CatalogSpec(catalog) if isinstance(catalog, str)
                    else CatalogSpec.from_dict(catalog))
            version = self.gateway.update_catalog(name, spec)
            await send_json(send, 200, {
                "name": name, "swapped": True, "catalog_version": version})
            return
        suite_name = require_field(payload, "suite")
        suite_spec = SuiteSpec(
            suite_name,
            n_queries=payload.get("n_queries"),
            seed=payload.get("seed"),
            catalog=catalog)
        try:
            suite = suite_spec.load()
        except KeyError as exc:
            # an unknown suite/catalog name is the client's mistake, not
            # a missing resource on an existing route
            raise BadRequestError(str(exc)) from None
        session = self.gateway.sessions.register(name, suite)
        config = self.gateway.config
        session.warm(config.default_scheme, config.default_model,
                     config.default_quant)
        await send_json(send, 201, self._tenant_summary(session))

    async def _delete_tenant(self, receive, send, params) -> None:
        name = params["name"]
        self.gateway.sessions.deregister(name)
        await send_json(send, 200, {"name": name, "deleted": True})

    async def _tenant_status(self, receive, send, params) -> None:
        name = params["name"]
        session = self.gateway.sessions.get(name)
        costs = self.gateway.costs()
        await send_json(send, 200, {
            "name": name,
            "catalog_version": session.catalog_version,
            "rung": self.gateway.rung(name),
            "rung_source": self.gateway.rung_source(name),
            "power_mode": self.gateway.power_mode(),
            "shed": self.gateway.is_shed(name),
            "scheme_override": self.gateway.scheme_override(name),
            "cost": costs.get("by_tenant", {}).get(name, {}),
            "budget": self.gateway.budget_status(name),
        })

    async def _healthz(self, receive, send, params) -> None:
        health = self.gateway.health()
        ok = health["scheduler_running"] and health.get("workers_running",
                                                        True)
        health["status"] = "ok" if ok else "unavailable"
        await send_json(send, 200 if ok else 503, health)

    async def _metrics(self, receive, send, params) -> None:
        await send_text(send, 200, self.gateway.metrics_text(),
                        content_type=METRICS_CONTENT_TYPE)


def create_app(gateway: Gateway, http=None) -> GatewayHTTPApp:
    """Build the ASGI app over ``gateway`` (the factory servers mount).

    ``http`` (an :class:`~repro.specs.HttpSpec`) supplies the edge
    hardening knobs — API-key auth and per-tenant rate limiting;
    ``None`` falls back to the spec stored on the gateway config, and a
    config without one leaves both off.
    """
    return GatewayHTTPApp(gateway, http=http)

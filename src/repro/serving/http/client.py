"""Clients for the HTTP front door.

:class:`ASGITestClient` drives the app coroutine **directly** — no
sockets, no server — which is what the tier-1 integration tests use:
requests run on the same event loop as the gateway, so tests stay fast
and deterministic.  :class:`HTTPConnection` is a minimal blocking
HTTP/1.1 client over a real socket (stdlib ``http.client``), used by the
bench harness and the smoke script against :class:`~.server.AsgiServer`
without adding an httpx/aiohttp dependency.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from dataclasses import dataclass, field


@dataclass
class Response:
    """One HTTP exchange's outcome, shared by both clients."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self) -> dict:
        return json.loads(self.body)

    @property
    def trace_id(self) -> str:
        return self.headers.get("x-trace-id", "")


class ASGITestClient:
    """Call an ASGI app in-process: one coroutine per request.

    Concurrency comes for free — ``asyncio.gather`` over several
    :meth:`request` calls interleaves them on the loop exactly like
    concurrent sockets would, which is how the 429 (queue full) row of
    the error table is exercised without a real server.
    """

    def __init__(self, app):
        self.app = app

    async def request(self, method: str, path: str,
                      json_body: dict | None = None,
                      body: bytes | None = None,
                      headers: dict[str, str] | None = None) -> Response:
        if json_body is not None:
            body = json.dumps(json_body).encode("utf-8")
        messages = [{"type": "http.request", "body": body or b"",
                     "more_body": False}]

        async def receive():
            if messages:
                return messages.pop(0)
            return {"type": "http.disconnect"}

        sent: list[dict] = []

        async def send(message):
            sent.append(message)

        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": path.encode("latin-1"),
            "query_string": b"",
            "headers": [(key.lower().encode("latin-1"),
                         value.encode("latin-1"))
                        for key, value in (headers or {}).items()],
            "client": ("testclient", 0),
            "server": ("testserver", 80),
        }
        await self.app(scope, receive, send)
        if not sent or sent[0]["type"] != "http.response.start":
            raise RuntimeError(
                f"app sent no response start (messages: "
                f"{[m['type'] for m in sent]})")
        start = sent[0]
        response_body = b"".join(
            message.get("body", b"") for message in sent[1:]
            if message["type"] == "http.response.body")
        return Response(
            status=start["status"],
            headers={key.decode("latin-1"): value.decode("latin-1")
                     for key, value in start.get("headers", [])},
            body=response_body,
        )

    async def get(self, path: str,
                  headers: dict[str, str] | None = None) -> Response:
        return await self.request("GET", path, headers=headers)

    async def post(self, path: str, json_body: dict | None = None,
                   body: bytes | None = None,
                   headers: dict[str, str] | None = None) -> Response:
        return await self.request("POST", path, json_body=json_body,
                                  body=body, headers=headers)

    async def put(self, path: str, json_body: dict | None = None,
                  headers: dict[str, str] | None = None) -> Response:
        return await self.request("PUT", path, json_body=json_body,
                                  headers=headers)

    async def delete(self, path: str,
                     headers: dict[str, str] | None = None) -> Response:
        return await self.request("DELETE", path, headers=headers)


@dataclass
class LifespanHandle:
    """A started lifespan protocol run, for :func:`lifespan_shutdown`."""

    task: asyncio.Task
    to_app: asyncio.Queue
    from_app: asyncio.Queue


async def lifespan_startup(app) -> LifespanHandle:
    """Run the app's lifespan protocol through startup.

    The sockets server uses the app's async-context form instead; this
    exists so tests can cover the lifespan path an external ASGI server
    (uvicorn) would drive.
    """
    to_app: asyncio.Queue = asyncio.Queue()
    from_app: asyncio.Queue = asyncio.Queue()
    scope = {"type": "lifespan", "asgi": {"version": "3.0"}}
    task = asyncio.get_running_loop().create_task(
        app(scope, to_app.get, from_app.put))
    await to_app.put({"type": "lifespan.startup"})
    message = await from_app.get()
    if message["type"] != "lifespan.startup.complete":
        task.cancel()
        raise RuntimeError(f"startup failed: {message}")
    return LifespanHandle(task, to_app, from_app)


async def lifespan_shutdown(handle: LifespanHandle) -> None:
    await handle.to_app.put({"type": "lifespan.shutdown"})
    message = await handle.from_app.get()
    if message["type"] != "lifespan.shutdown.complete":
        raise RuntimeError(f"shutdown failed: {message}")
    await handle.task


class HTTPConnection:
    """Blocking HTTP/1.1 client over one keep-alive socket.

    Thin wrapper over stdlib ``http.client`` shaped like the test
    client, so the bench harness and smoke script read the same either
    way.  One instance per thread — ``http.client`` connections are not
    thread-safe.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        self._conn = http.client.HTTPConnection(host, port,
                                                timeout=timeout_s)

    def request(self, method: str, path: str,
                json_body: dict | None = None,
                headers: dict[str, str] | None = None) -> Response:
        body = None
        wire_headers = dict(headers or {})
        if json_body is not None:
            body = json.dumps(json_body).encode("utf-8")
            wire_headers["Content-Type"] = "application/json"
        self._conn.request(method.upper(), path, body=body,
                           headers=wire_headers)
        raw = self._conn.getresponse()
        return Response(
            status=raw.status,
            headers={key.lower(): value for key, value in raw.getheaders()},
            body=raw.read(),
        )

    def get(self, path: str,
            headers: dict[str, str] | None = None) -> Response:
        return self.request("GET", path, headers=headers)

    def post(self, path: str, json_body: dict | None = None,
             headers: dict[str, str] | None = None) -> Response:
        return self.request("POST", path, json_body=json_body,
                            headers=headers)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HTTPConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Closed-loop degradation: trade answer richness for survival under load.

CarbonCall-style admission control (arXiv 2504.20348) as a feedback
controller: watch queue depth and tail latency through the gateway's
:class:`~repro.serving.telemetry.Telemetry`, and when pressure stays
high, step every tenant down a ladder of progressively cheaper serving
configurations —

``full`` → ``compressed`` catalog → ``minimal`` catalog → reduced-``k``
scheme → ``shed``

— then climb back up one rung at a time once pressure clears.  The
catalog rungs reuse :meth:`~repro.serving.gateway.Gateway.update_catalog`
(hot-swap, plan-cache invalidation and warm-before-swap included); the
reduced-``k`` rung reroutes default traffic through a cheaper scheme
cell; the last rung sheds the tenant at admission.  Every transition is
counted in telemetry (``degrade_transitions``).

Two controllers can drive the same ladder: this module's queue-pressure
:class:`DegradationController` and the carbon/power
:class:`~repro.power.budget.BudgetController`.  They compose through a
shared :class:`LadderArbiter` owned by the gateway: each controller
records its *desired* rung per tenant under a source name
(``"pressure"`` / ``"budget"``) and the arbiter applies the deepest
request.  Side effects and telemetry transitions fire only when the
effective rung actually moves, so two controllers that disagree hold
the ladder steady instead of fighting over it.

The controller is deliberately synchronous at its core —
:meth:`DegradationController.tick` takes pressure readings as plain
numbers — so tests drive the ladder deterministically without any clock
or traffic; :meth:`DegradationController.run` is the thin async loop the
gateway starts when constructed with a :class:`DegradationPolicy`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

#: the ladder, cheapest-last; per-tenant ladders may skip the catalog
#: rungs when the tenant's catalog is not the ``full`` variant (variants
#: derive from full descriptions only)
RUNGS = ("full", "compressed", "minimal", "reduced-k", "shed")


@dataclass(frozen=True)
class DegradationPolicy:
    """Thresholds and knobs of the degradation feedback loop.

    Parameters
    ----------
    queue_high:
        Queue depth at or above which one :meth:`tick` steps every
        tenant down a rung.
    queue_low:
        Queue depth at or below which a tick counts toward recovery;
        between ``queue_low`` and ``queue_high`` the ladder holds and
        the recovery streak resets (hysteresis).
    p95_high_ms:
        Optional latency trigger: when set, a p95 at or above it is
        treated as high pressure even if the queue is short, and
        recovery additionally requires p95 below it.
    recovery_ticks:
        Consecutive clear ticks required before stepping tenants back
        up one rung.
    reduced_k_scheme:
        Scheme override installed at the ``reduced-k`` rung (any
        registered scheme; parameterized ``lis-k<N>`` names work).
    interval_ms:
        Poll period of the async :meth:`DegradationController.run` loop.
    """

    queue_high: int = 16
    queue_low: int = 2
    p95_high_ms: float | None = None
    recovery_ticks: int = 3
    reduced_k_scheme: str = "lis-k1"
    interval_ms: float = 100.0

    def __post_init__(self):
        if self.queue_high < 1:
            raise ValueError(f"queue_high must be >= 1, got {self.queue_high}")
        if not 0 <= self.queue_low < self.queue_high:
            raise ValueError(
                f"queue_low must be in [0, queue_high), got {self.queue_low}")
        if self.p95_high_ms is not None and self.p95_high_ms <= 0.0:
            raise ValueError(
                f"p95_high_ms must be > 0 (or None), got {self.p95_high_ms}")
        if self.recovery_ticks < 1:
            raise ValueError(
                f"recovery_ticks must be >= 1, got {self.recovery_ticks}")
        if self.interval_ms <= 0.0:
            raise ValueError(
                f"interval_ms must be > 0, got {self.interval_ms}")

    @property
    def interval_s(self) -> float:
        return self.interval_ms / 1e3


class LadderArbiter:
    """Arbitrates rung requests from several controllers onto one gateway.

    Each controller steps its own *desired* ladder index per tenant under
    a stable source name; the arbiter applies ``max`` over sources as the
    tenant's effective rung, walking one rung at a time so cumulative
    rung side effects (catalog swaps, scheme overrides, shedding) stay
    exactly the single-step sequence a lone controller would produce.
    Telemetry records one ``degrade_transitions`` entry per effective
    rung moved — a controller whose desire is already dominated by
    another source moves nothing and records nothing.
    """

    def __init__(self, gateway, reduced_k_scheme: str = "lis-k1"):
        self.gateway = gateway
        self.reduced_k_scheme = reduced_k_scheme
        self._desired: dict[str, dict[str, int]] = {}  # source -> tenant -> idx
        self._applied: dict[str, int] = {}             # tenant -> effective idx
        self._ladders: dict[str, tuple[str, ...]] = {}
        self._base_catalogs: dict[str, object] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def ladder(self, tenant: str) -> tuple[str, ...]:
        """The tenant's ladder, built lazily from its catalog variant."""
        ladder = self._ladders.get(tenant)
        if ladder is None:
            catalog = self.gateway.sessions.get(tenant).suite.catalog
            if getattr(catalog, "variant", None) == "full":
                self._base_catalogs[tenant] = catalog
                ladder = RUNGS
            else:
                # variants derive from full descriptions only; skip the
                # catalog rungs for a tenant already serving a variant
                ladder = (RUNGS[0], "reduced-k", "shed")
            self._ladders[tenant] = ladder
        return ladder

    def rung(self, tenant: str) -> str:
        """The tenant's effective rung name (``"full"`` when undegraded)."""
        ladder = self._ladders.get(tenant)
        if ladder is None:
            return RUNGS[0]
        return ladder[self._applied.get(tenant, 0)]

    def desired_index(self, source: str, tenant: str) -> int:
        """``source``'s current desired ladder index for ``tenant``."""
        return self._desired.get(source, {}).get(tenant, 0)

    def rung_source(self, tenant: str) -> str:
        """Which source(s) pin the tenant at its effective rung.

        ``"none"`` at the top rung; otherwise the source name
        (``"pressure"``, ``"budget"``), or ``"pressure+budget"`` when
        both desire exactly the effective rung.
        """
        applied = self._applied.get(tenant, 0)
        if applied == 0:
            return "none"
        winners = sorted(source for source, desired in self._desired.items()
                         if desired.get(tenant, 0) == applied)
        return "+".join(winners) if winners else "none"

    # ------------------------------------------------------------------
    # rung transitions
    # ------------------------------------------------------------------
    def step(self, source: str, tenant: str, direction: int) -> str | None:
        """Move ``source``'s desired rung one step; apply the effective rung.

        Returns the source's new desired rung name, or ``None`` when the
        desire was already clamped at the ladder edge (no change).
        """
        ladder = self.ladder(tenant)
        desires = self._desired.setdefault(source, {})
        old = desires.get(tenant, 0)
        new = min(max(old + direction, 0), len(ladder) - 1)
        if new == old:
            return None
        desires[tenant] = new
        self._apply(tenant)
        return ladder[new]

    def release(self, source: str, tenant: str) -> None:
        """Drop ``source``'s desire back to the top rung."""
        desires = self._desired.get(source)
        if desires and desires.get(tenant, 0):
            desires[tenant] = 0
            self._apply(tenant)

    def _apply(self, tenant: str) -> None:
        ladder = self.ladder(tenant)
        target = max((desires.get(tenant, 0)
                      for desires in self._desired.values()), default=0)
        target = min(target, len(ladder) - 1)
        old = self._applied.get(tenant, 0)
        tracer = getattr(self.gateway, "tracer", None)
        while old != target:
            new = old + (1 if target > old else -1)
            self._enter(tenant, ladder, old, new)
            self._applied[tenant] = new
            direction_name = "down" if new > old else "up"
            self.gateway.telemetry.record_degradation(
                tenant, ladder[new], direction_name)
            if tracer is not None:
                # control-plane transition: not owned by any one request,
                # so it lands as a standalone marker span
                tracer.marker("degrade", {"tenant": tenant,
                                          "rung": ladder[new],
                                          "from_rung": ladder[old],
                                          "direction": direction_name})
            old = new

    def _enter(self, tenant: str, ladder: tuple[str, ...],
               old: int, new: int) -> None:
        """Apply the side effects of moving ``tenant`` from rung to rung."""
        gateway = self.gateway
        if ladder[old] == "shed":
            gateway.unshed_tenant(tenant)
        if ladder[old] == "reduced-k" and ladder[new] != "shed":
            gateway.clear_scheme_override(tenant)
        rung = ladder[new]
        if rung == "shed":
            gateway.shed_tenant(tenant)
        elif rung == "reduced-k":
            gateway.set_scheme_override(tenant, self.reduced_k_scheme)
        elif rung in ("compressed", "minimal"):
            if ladder[old] != "reduced-k":
                # coming up from reduced-k the catalog is already at
                # this variant; skip the redundant (re-indexing) swap
                base = self._base_catalogs[tenant]
                gateway.update_catalog(tenant, base.at(rung))
        elif rung == RUNGS[0] and "compressed" in ladder:
            gateway.update_catalog(tenant, self._base_catalogs[tenant])


class DegradationController:
    """Steps tenants down/up the degradation ladder as pressure moves.

    One controller per gateway.  All rung mutations go through the
    gateway's shared :class:`LadderArbiter` (source ``"pressure"``),
    which in turn uses only the gateway's public degradation controls
    (``update_catalog``, ``set_scheme_override``, ``shed_tenant`` and
    their inverses), so an operator can read the same state the
    controller writes.
    """

    SOURCE = "pressure"

    def __init__(self, gateway, policy: DegradationPolicy):
        self.gateway = gateway
        self.policy = policy
        self.arbiter: LadderArbiter = gateway.ladder
        self.arbiter.reduced_k_scheme = policy.reduced_k_scheme
        self._clear_streak = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def rung(self, tenant: str) -> str:
        """The tenant's current rung name (``"full"`` when undegraded)."""
        return self.arbiter.rung(tenant)

    def status(self) -> dict[str, str]:
        """``{tenant: rung}`` for every registered tenant."""
        return {tenant: self.rung(tenant)
                for tenant in self.gateway.sessions.tenant_names}

    # ------------------------------------------------------------------
    # the feedback loop
    # ------------------------------------------------------------------
    def tick(self, depth: int | None = None,
             p95_ms: float | None = None) -> None:
        """One control step; pass readings explicitly to drive it in tests.

        ``depth`` defaults to the scheduler's live queue depth and
        ``p95_ms`` to the telemetry snapshot's ``latency_p95_ms`` (only
        measured when the policy sets ``p95_high_ms``).
        """
        policy = self.policy
        if depth is None:
            depth = self.gateway.scheduler.pending
        if p95_ms is None and policy.p95_high_ms is not None:
            p95_ms = self.gateway.telemetry.snapshot()["latency_p95_ms"]
        latency_high = (policy.p95_high_ms is not None
                        and (p95_ms or 0.0) >= policy.p95_high_ms)
        if depth >= policy.queue_high or latency_high:
            self._clear_streak = 0
            for tenant in self.gateway.sessions.tenant_names:
                self.arbiter.step(self.SOURCE, tenant, +1)
        elif depth <= policy.queue_low and not latency_high:
            self._clear_streak += 1
            if self._clear_streak >= policy.recovery_ticks:
                self._clear_streak = 0
                for tenant in self.gateway.sessions.tenant_names:
                    self.arbiter.step(self.SOURCE, tenant, -1)
        else:
            # in-between zone: hold the ladder, restart the recovery
            # streak so a brief dip cannot mask sustained pressure
            self._clear_streak = 0

    async def run(self) -> None:
        """Poll-and-tick loop; cancelled by ``Gateway.stop``.

        Ticks run on a worker thread (catalog-variant swaps re-index the
        Search Levels, which must not stall the event loop's admissions).
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.policy.interval_s)
            await loop.run_in_executor(None, self.tick)

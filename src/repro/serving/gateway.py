"""The serving front door: request intake, batching, episode execution.

``Gateway.submit`` is the whole client API: it resolves the tenant,
applies admission control, queues the request on the micro-batch
scheduler and awaits the episode result.  Batches are planned through
the agents' vectorized :meth:`plan_batch` (one ``encode`` and one
multi-query search per index for the whole batch) and then executed
per-episode with :meth:`run_planned` — so a served episode is bitwise
identical to running the same query through the sequential
:class:`~repro.evaluation.runner.ExperimentRunner` path.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.episode import EpisodeResult
from repro.obs.cost import CostLedger, CostRecord, plan_tool_tokens
from repro.obs.trace import TraceContext, build_tracer, request_trace_id
from repro.power import EnergyMeter, build_signal
from repro.registry import SERVING_BACKENDS
from repro.serving.batcher import BatchScheduler, PendingRequest
from repro.serving.config import ServingConfig
from repro.serving.faults import InjectedFaultError, as_injector
from repro.serving.session import SessionManager
from repro.serving.telemetry import Telemetry
from repro.suites.base import Query


class DeadlineExceededError(TimeoutError):
    """The request's end-to-end deadline (``timeout_ms``) expired.

    Raised by :meth:`Gateway.submit`; the abandoned request is dropped
    from the queue before the next batch is cut (already-executing work
    finishes but its result is discarded), so a stalled executor can
    never hang a client future forever.
    """


class TenantShedError(RuntimeError):
    """The tenant is shed by the degradation controller; retry later.

    The final rung of the CarbonCall degradation ladder: under sustained
    overload a tenant's requests are rejected at admission (cheapest
    possible failure) until pressure clears and the controller steps the
    tenant back up.
    """


def _stamp_trace(exc: BaseException, trace_id: str) -> None:
    """Attach the request's trace id to an outgoing exception (best
    effort — exceptions with ``__slots__`` simply go unstamped)."""
    try:
        exc.trace_id = trace_id
    except AttributeError:
        pass


@dataclass(frozen=True)
class WorkItem:
    """Scheduler payload: the resolved query and its agent cell.

    ``trace`` carries the request's :class:`TraceContext` (parented to
    the root ``request`` span) across the scheduler's thread boundary;
    ``None`` for unsampled requests and untraced gateways.
    """

    query: Query
    scheme: str
    model: str
    quant: str
    trace: TraceContext | None = None


class _PlanCache:
    """Bounded LRU of ``(tenant, catalog version, query, cell) -> ToolPlan``.

    Plans are deterministic per query — the recommender, the embedder
    and the batch-invariant retrieval kernels all draw from named
    streams — so replaying a memoized plan yields an episode bitwise
    identical to re-planning (asserted in
    ``tests/test_serving_plan_cache.py``).  The query *text* rides in
    the key alongside the qid so a tenant re-registered with different
    content cannot alias a stale plan, and the tenant's **catalog
    version** rides in it so :meth:`Gateway.update_catalog` implicitly
    invalidates every plan computed against the previous catalog — a
    stale plan can never be served across a hot-swap
    (``tests/test_serving_catalog_swap.py``).

    Lock-protected: lookups run on the batch worker while ``clear`` may
    be called from anywhere.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def key(tenant: str, query: Query, scheme: str, model: str, quant: str,
            catalog_version: str = "") -> tuple:
        return (tenant, catalog_version, query.qid, query.text,
                scheme, model, quant)

    def get(self, key: tuple):
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
            return plan

    def put(self, key: tuple, plan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


@dataclass
class ServingResponse:
    """What a client gets back for one request."""

    tenant: str
    episode: EpisodeResult
    #: size of the micro-batch this request rode in
    batch_size: int
    #: seconds spent waiting in the queue before the batch was cut
    queued_s: float
    #: total client-observed seconds, stamped by :meth:`Gateway.submit`
    latency_s: float = 0.0
    #: deterministic request id (:func:`repro.obs.trace.request_trace_id`),
    #: assigned whether or not tracing is enabled
    trace_id: str = ""


class Gateway:
    """Async front door serving function-calling requests at scale.

    Usage::

        sessions = SessionManager()
        sessions.register("home", load_suite("edgehome"))
        async with Gateway(sessions) as gateway:
            response = await gateway.submit("home", query)

    The gateway owns a :class:`BatchScheduler` (bounded queue, per-tenant
    round-robin fairness, deadline-based flushing) and a
    :class:`Telemetry` recorder exposed through :meth:`metrics`.
    """

    def __init__(
        self,
        sessions: SessionManager,
        config: ServingConfig | None = None,
        telemetry: Telemetry | None = None,
        faults=None,
        degradation=None,
        tracer=None,
        budget=None,
    ):
        self.sessions = sessions
        self.config = config if config is not None else ServingConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._faults = as_injector(faults)
        # an explicit tracer (tests, embedding hosts) wins over the
        # config's ObsSpec; both absent means tracing is off entirely
        self.tracer = tracer if tracer is not None else build_tracer(
            self.config.obs)
        self.costs_ledger = CostLedger()
        self.scheduler = BatchScheduler(self._process_batch, self.config,
                                        telemetry=self.telemetry,
                                        faults=self._faults,
                                        tracer=self.tracer)
        self._process_stage = None
        self._plan_cache = (_PlanCache(self.config.plan_cache_size)
                            if self.config.plan_cache_size > 0 else None)
        # degradation state, written by the DegradationController (or an
        # operator) and read by submit(); plain attribute swaps are
        # atomic under the GIL and submit() runs on the event loop only
        self._shed_tenants: frozenset[str] = frozenset()
        self._scheme_overrides: dict[str, str] = {}
        # per-(tenant, qid) repeat counter backing the deterministic
        # trace ids; no lock — submit() runs on the event loop only
        self._request_repeats: dict[tuple[str, str], int] = {}
        self._degradation_policy = degradation
        self.degradation = None  # controller, built in start() when enabled
        self._degradation_task: asyncio.Task | None = None
        # the shared rung arbiter both controllers write through; built
        # lazily so gateways that never degrade pay nothing
        self._ladder = None
        # carbon/power accounting: the meter is always on (attribution
        # is cheap and read-only); the BudgetController only runs when a
        # BudgetSpec is configured
        self._budget_spec = budget if budget is not None else (
            self.config.budget)
        self.power_meter = EnergyMeter(
            signal=build_signal(self._budget_spec),
            window_requests=(self._budget_spec.window_requests
                             if self._budget_spec is not None else 32))
        self.budget = None  # controller, built in start() when enabled
        self._budget_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Warm every tenant's default agent cell and begin accepting."""
        self.sessions.warm_all(self.config.default_scheme,
                               self.config.default_model,
                               self.config.default_quant)
        stage_factory = SERVING_BACKENDS.get(self.config.execution_backend)
        self._process_stage = stage_factory(self.config)
        if self._process_stage is not None:
            if hasattr(self._process_stage, "bind"):
                # the supervised stage records restarts/retries in the
                # gateway's telemetry, consults the fault injector, and
                # re-primes respawned pools from the *current* runners
                self._process_stage.bind(telemetry=self.telemetry,
                                         faults=self._faults,
                                         runners_fn=self.sessions.runners,
                                         tracer=self.tracer)
            # prime the worker pool with each tenant's warmed runner
            # (suite + Search Levels + embedder snapshot) *before* the
            # scheduler starts, so all process spawning happens while
            # only this coroutine is active
            self._process_stage.start(self.sessions.runners())
        await self.scheduler.start()
        if self._degradation_policy is not None:
            from repro.serving.degrade import DegradationController

            self.degradation = DegradationController(
                self, self._degradation_policy)
            self._degradation_task = asyncio.get_running_loop().create_task(
                self.degradation.run(), name="degradation-controller")
        if self._budget_spec is not None:
            from repro.power import BudgetController

            self.budget = BudgetController(
                self, self._budget_spec.to_policy(), meter=self.power_meter)
            self._budget_task = asyncio.get_running_loop().create_task(
                self.budget.run(), name="budget-controller")

    async def stop(self) -> None:
        if self._budget_task is not None:
            self._budget_task.cancel()
            try:
                await self._budget_task
            except asyncio.CancelledError:
                pass
            self._budget_task = None
        if self._degradation_task is not None:
            self._degradation_task.cancel()
            try:
                await self._degradation_task
            except asyncio.CancelledError:
                pass
            self._degradation_task = None
        await self.scheduler.stop()
        if self._process_stage is not None:
            self._process_stage.shutdown()
            self._process_stage = None

    async def __aenter__(self) -> "Gateway":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    async def submit(
        self,
        tenant: str,
        query: Query | str,
        scheme: str | None = None,
        model: str | None = None,
        quant: str | None = None,
        timeout_ms: float | None = None,
    ) -> ServingResponse:
        """Serve one function-calling request end to end.

        ``query`` may be a :class:`Query` or a qid string resolved
        against the tenant's suite.  ``timeout_ms`` overrides the
        config's end-to-end deadline for this request.  Raises
        :class:`~repro.serving.session.UnknownTenantError` for unknown
        tenants, :class:`~repro.serving.batcher.QueueFullError` when
        admission control rejects the request, :class:`TenantShedError`
        while the degradation controller sheds the tenant, and
        :class:`DeadlineExceededError` when the deadline expires before
        a result lands.
        """
        if tenant in self._shed_tenants:
            self.telemetry.record_shed_request(tenant)
            raise TenantShedError(
                f"tenant {tenant!r} is shed under overload; retry later")
        session = self.sessions.get(tenant)
        resolved = session.resolve_query(query)
        # every request gets a deterministic trace id — a pure function
        # of (tenant, qid, repeat) — whether or not tracing is enabled;
        # responses carry it and the HTTP edge surfaces it as X-Trace-Id
        repeat_key = (tenant, resolved.qid)
        repeat = self._request_repeats.get(repeat_key, 0)
        self._request_repeats[repeat_key] = repeat + 1
        trace_id = request_trace_id(tenant, resolved.qid, repeat)
        # the root "request" span: admission to reply.  Downstream spans
        # (queue/plan/execute, worker slices) parent to it through the
        # WorkItem's TraceContext; per-sampling ctx may be None, making
        # every downstream tracing touch a single is-None branch.
        ctx = root_span = None
        if self.tracer is not None:
            ctx = self.tracer.sampled(trace_id)
            if ctx is not None:
                root_span = self.tracer.start_span(ctx, "request", attributes={
                    "tenant": tenant, "qid": resolved.qid})
                root_span.add_event("admit",
                                    {"queue_depth": self.scheduler.pending})
                ctx = ctx.child(root_span.span_id)
        item = WorkItem(
            query=resolved,
            # a degraded tenant's default traffic runs the reduced-k
            # scheme; explicit per-request schemes are honored as-is
            scheme=scheme or self._scheme_overrides.get(tenant)
            or self.config.default_scheme,
            model=model or self.config.default_model,
            quant=quant or self.config.default_quant,
            trace=ctx,
        )
        timeout_s = (timeout_ms / 1e3 if timeout_ms is not None
                     else self.config.timeout_s)
        started = time.perf_counter()
        try:
            future = self.scheduler.submit(tenant, item)
        except Exception as exc:  # admission rejected (queue full, stopped)
            _stamp_trace(exc, trace_id)
            if root_span is not None:
                root_span.attributes["error"] = type(exc).__name__
                self.tracer.end_span(root_span, status="error")
            raise
        try:
            if timeout_s is not None:
                response: ServingResponse = await asyncio.wait_for(
                    future, timeout=timeout_s)
            else:
                response = await future
        except asyncio.TimeoutError:
            # wait_for cancelled the future; if the request is still
            # queued the scheduler drops it at the next batch cut
            self.telemetry.record_deadline_timeout()
            self.telemetry.record_completion(0.0, ok=False)
            if root_span is not None:
                self.tracer.end_span(root_span, status="deadline_exceeded")
            error = DeadlineExceededError(
                f"request for tenant {tenant!r} missed its "
                f"{timeout_s * 1e3:g}ms deadline")
            _stamp_trace(error, trace_id)
            raise error from None
        except Exception as exc:
            self.telemetry.record_completion(0.0, ok=False)
            _stamp_trace(exc, trace_id)
            if root_span is not None:
                root_span.attributes["error"] = type(exc).__name__
                self.tracer.end_span(root_span, status="error")
            raise
        response.trace_id = trace_id
        response.latency_s = time.perf_counter() - started
        self.telemetry.record_completion(response.latency_s, ok=True)
        if root_span is not None:
            root_span.add_event("reply", {
                "batch_size": response.batch_size,
                "latency_ms": response.latency_s * 1e3})
            self.tracer.end_span(root_span)
        return response

    def metrics(self) -> dict:
        """Current telemetry snapshot (queue, batches, latency percentiles)."""
        return self.telemetry.snapshot()

    def health(self) -> dict:
        """Liveness summary for the HTTP ``/healthz`` endpoint.

        ``scheduler_running`` covers the event-loop side; with the
        process execution backend, ``workers_running``/``worker_pids``
        cover the pool (a supervised stage mid-respawn reports
        ``workers_running=False`` without failing the whole check —
        episodes fall back inline meanwhile).
        """
        health = {
            "scheduler_running": self.scheduler.running,
            "pending": self.scheduler.pending,
            "tenants": sorted(self.sessions.tenant_names),
            "execution_backend": self.config.execution_backend,
        }
        stage = self._process_stage
        if stage is not None:
            health["workers_running"] = bool(getattr(stage, "running", True))
            worker_pids = getattr(stage, "worker_pids", None)
            if worker_pids is not None:
                health["worker_pids"] = list(worker_pids())
        return health

    @property
    def ladder(self):
        """The shared rung arbiter the degradation controllers write through."""
        if self._ladder is None:
            from repro.serving.degrade import LadderArbiter

            self._ladder = LadderArbiter(self)
        return self._ladder

    def rung(self, tenant: str) -> str:
        """The tenant's effective degradation rung (``"full"`` at rest)."""
        ladder = self._ladder
        if ladder is None:
            from repro.serving.degrade import RUNGS

            return RUNGS[0]
        return ladder.rung(tenant)

    def rung_source(self, tenant: str) -> str:
        """Which controller pins the tenant's rung (``"pressure"``,
        ``"budget"``, both, or ``"none"`` at the top rung)."""
        return "none" if self._ladder is None else (
            self._ladder.rung_source(tenant))

    def power_mode(self) -> str:
        """The nvpmodel mode the accounting layer costs new work under."""
        return self.power_meter.power_mode

    def budget_status(self, tenant: str) -> dict:
        """The tenant's rolling energy/carbon window plus any budgets."""
        stats = self.power_meter.window_stats(tenant)
        status = {
            "window_requests": stats.requests,
            "window_energy_j": stats.energy_j,
            "window_carbon_g": stats.carbon_g,
            "mean_energy_j": stats.mean_energy_j,
            "mean_carbon_g": stats.mean_carbon_g,
        }
        if self._budget_spec is not None:
            status["energy_budget_j"] = self._budget_spec.energy_budget_j
            status["carbon_budget_g"] = self._budget_spec.carbon_budget_g
        return status

    def is_shed(self, tenant: str) -> bool:
        """Whether :meth:`submit` currently rejects this tenant."""
        return tenant in self._shed_tenants

    def scheme_override(self, tenant: str) -> str | None:
        """The scheme the tenant's default traffic is degraded to, if any."""
        return self._scheme_overrides.get(tenant)

    def metrics_text(self) -> str:
        """Telemetry + cost ledger in Prometheus text exposition format.

        The future ASGI ``/metrics`` endpoint is
        ``PlainTextResponse(gateway.metrics_text())`` — rendering runs
        off the telemetry *snapshot*, so a scrape never holds the
        recording locks for longer than one dict copy.
        """
        from repro.obs.prometheus import render_prometheus

        return render_prometheus(self.telemetry.snapshot(),
                                 cost=self.costs_ledger.snapshot())

    def costs(self) -> dict:
        """Per-tenant token-cost snapshot (see :class:`CostLedger`)."""
        return self.costs_ledger.snapshot()

    def update_catalog(self, tenant: str, catalog) -> str:
        """Hot-swap one tenant's tool catalog; returns the new version.

        ``catalog`` may be a ready
        :class:`~repro.tools.catalog.ToolCatalog`, a registered catalog
        name (resolved through :data:`repro.registry.CATALOGS`), or a
        :class:`~repro.specs.CatalogSpec` (name + variant + subset).

        The tenant's Search Levels are re-indexed and its default agent
        cell warmed against the new catalog *before* the atomic swap, so
        in-flight flushes finish on the complete old state and the next
        flush plans on the complete new one.  Because the plan-cache key
        carries the catalog version, plans cached under the previous
        catalog are unreachable from the moment the swap lands — no
        explicit cache flush, no stale replies.  A catalog missing a
        tool the tenant's queries still reference fails validation and
        leaves the tenant serving the old catalog.

        With the ``"process"`` execution backend, worker processes hold
        the old runner snapshot; the swapped tenant falls back to inline
        execution (same results, bitwise) until the gateway restarts.
        """
        from repro.tools.catalog import ToolCatalog, load_catalog

        if isinstance(catalog, str):
            catalog = load_catalog(catalog)
        elif hasattr(catalog, "load") and not isinstance(catalog, ToolCatalog):
            catalog = catalog.load()  # CatalogSpec (or anything spec-shaped)
        session = self.sessions.get(tenant)
        warm_cell = (self.config.default_scheme, self.config.default_model,
                     self.config.default_quant)
        version = session.swap_catalog(catalog, warm_cell=warm_cell)
        if self._process_stage is not None:
            # workers were primed with the pre-swap runner snapshot;
            # route this tenant's episodes inline from now on
            self._process_stage.uncover(tenant)
        self.telemetry.record_catalog_swap(tenant)
        return version

    # ------------------------------------------------------------------
    # degradation controls (driven by the DegradationController, but
    # equally usable by an operator for manual load management)
    # ------------------------------------------------------------------
    def shed_tenant(self, tenant: str) -> None:
        """Reject this tenant's submissions with :class:`TenantShedError`."""
        self._shed_tenants = self._shed_tenants | {tenant}

    def unshed_tenant(self, tenant: str) -> None:
        """Resume accepting this tenant's submissions."""
        self._shed_tenants = self._shed_tenants - {tenant}

    def set_scheme_override(self, tenant: str, scheme: str) -> None:
        """Route the tenant's default traffic to ``scheme`` (e.g. a
        reduced-``k`` cell); requests naming an explicit scheme are
        unaffected."""
        self._scheme_overrides[tenant] = scheme

    def clear_scheme_override(self, tenant: str) -> None:
        self._scheme_overrides.pop(tenant, None)

    # ------------------------------------------------------------------
    # batch execution (worker thread)
    # ------------------------------------------------------------------
    def _process_batch(
        self, batch: list[PendingRequest],
    ) -> list[ServingResponse | Exception]:
        """Plan the whole micro-batch vectorized, then run each episode.

        Requests are grouped by ``(tenant, scheme, model, quant)``; each
        group's planning stage becomes one ``plan_batch`` call against
        that tenant's agent, coalescing every request's embedding and
        Level-1/Level-2 retrieval into single kernel invocations.  The
        planned episodes then execute either inline on this batch-worker
        thread (the default) or across the process pool when the config
        selects the ``"process"`` execution backend — tenants registered
        after the pool was primed fall back to inline execution.

        Failures are contained per group: an invalid model name (or any
        agent error) fails only the requests sharing that grid cell —
        their slots carry the exception back to the scheduler — while the
        rest of the micro-batch is served normally.
        """
        groups: dict[tuple[str, str, str, str], list[int]] = {}
        for position, request in enumerate(batch):
            item: WorkItem = request.payload
            key = (request.tenant, item.scheme, item.model, item.quant)
            groups.setdefault(key, []).append(position)

        responses: list[ServingResponse | Exception | None] = [None] * len(batch)
        tracer = self.tracer
        for (tenant, scheme, model, quant), positions in groups.items():
            group_traces = [batch[position].payload.trace
                            for position in positions]
            traced = ([trace for trace in group_traces if trace is not None]
                      if tracer is not None else [])
            try:
                if self._faults is not None:
                    action = self._faults.decide("gateway.group")
                    if action is not None:
                        self.telemetry.record_fault("gateway.group")
                        for trace in traced:
                            tracer.event(trace, "fault",
                                         {"hook": "gateway.group"})
                        raise InjectedFaultError(
                            f"injected executor fault for group "
                            f"({tenant}, {scheme}, {model}, {quant})")
                # agent and catalog version are leased together so a
                # concurrent hot-swap cannot pair an old agent's plans
                # with the new catalog's cache key (or vice versa)
                session = self.sessions.get(tenant)
                agent, catalog_version = session.leased_agent(
                    scheme, model, quant)
                queries = [batch[position].payload.query for position in positions]
                if traced:
                    # synthesize queue spans from the scheduler's own
                    # enqueue/dequeue stamps (same monotonic clock)
                    for position, trace in zip(positions, group_traces):
                        if trace is None:
                            continue
                        request = batch[position]
                        queue_span = tracer.start_span(
                            trace, "queue", start_s=request.enqueued_at,
                            attributes={"batch_size": request.batch_size})
                        tracer.end_span(queue_span,
                                        end_s=request.dequeued_at)
                plan_start = time.monotonic()
                plans, plan_hits = self._plan_group(
                    agent, tenant, scheme, model, quant, queries,
                    catalog_version)
                if traced:
                    plan_end = time.monotonic()
                    # the group plans in one vectorized pass; each traced
                    # request gets its share of the pass as a span
                    for trace, hit in zip(group_traces, plan_hits):
                        if trace is None:
                            continue
                        plan_span = tracer.start_span(
                            trace, "plan", start_s=plan_start,
                            attributes={"group_size": len(positions),
                                        "cache_hit": hit})
                        tracer.end_span(plan_span, end_s=plan_end)
                stage = self._process_stage
                use_worker = stage is not None and stage.covers(tenant)
                execute_spans = [None] * len(positions)
                if traced:
                    backend = "worker" if use_worker else "inline"
                    execute_traces: list[TraceContext | None] = []
                    for index, trace in enumerate(group_traces):
                        if trace is None:
                            execute_traces.append(None)
                            continue
                        span = tracer.start_span(
                            trace, "execute", attributes={"backend": backend})
                        execute_spans[index] = span
                        execute_traces.append(trace.child(span.span_id))
                try:
                    if use_worker:
                        if traced:
                            episodes = stage.execute(
                                tenant, scheme, model, quant, queries, plans,
                                inline=agent.run_planned_many,
                                traces=execute_traces)
                        else:
                            episodes = stage.execute(
                                tenant, scheme, model, quant, queries, plans,
                                inline=agent.run_planned_many)
                    else:
                        episodes = agent.run_planned_many(queries, plans)
                except Exception:
                    for span in execute_spans:
                        if span is not None:
                            tracer.end_span(span, status="error")
                    raise
                for span in execute_spans:
                    if span is not None:
                        tracer.end_span(span)
                variant = getattr(session.suite.catalog, "variant", "full")
                for plan, position, episode in zip(plans, positions, episodes):
                    request = batch[position]
                    self.costs_ledger.record(CostRecord(
                        tenant=tenant,
                        variant=variant,
                        tool_prompt_tokens=plan_tool_tokens(plan),
                        prompt_tokens=getattr(episode, "prompt_tokens", 0),
                        completion_tokens=getattr(
                            episode, "completion_tokens", 0),
                        llm_calls=getattr(episode, "n_llm_calls", 0),
                        catalog_version=catalog_version,
                    ))
                    # carbon/power accounting: re-cost the episode's
                    # token counts under the active power mode (never
                    # touches the live agents — episode bits are final)
                    energy = self.power_meter.record(
                        tenant, episode, model=model, quant=quant,
                        context_window=getattr(plan, "context_window", None))
                    self.telemetry.record_energy(
                        tenant, energy.energy_j, energy.carbon_g)
                    responses[position] = ServingResponse(
                        tenant=tenant,
                        episode=episode,
                        batch_size=request.batch_size,
                        queued_s=max(0.0,
                                     request.dequeued_at - request.enqueued_at),
                    )
            except Exception as exc:  # noqa: BLE001 - contained per group
                for position in positions:
                    if responses[position] is None:
                        responses[position] = exc
        return responses

    def _plan_group(self, agent, tenant: str, scheme: str, model: str,
                    quant: str, queries: list[Query],
                    catalog_version: str = "") -> tuple[list, list[bool]]:
        """Plan one (tenant, cell) group, serving repeats from the cache.

        Returns ``(plans, cache_hits)`` — one plan and one hit flag per
        query (all flags ``False`` with the cache disabled), so plan
        spans can attribute cache hits per request.

        With ``plan_cache_size=0`` this is exactly ``agent.plan_batch``.
        Otherwise cached queries skip planning and only the misses ride
        the vectorized ``plan_batch`` pass — the kernels are
        batch-invariant, so planning a sub-batch produces the same plans
        the full batch would have.  ``catalog_version`` namespaces the
        cache keys per hot-swap generation.
        """
        cache = self._plan_cache
        if cache is None:
            return agent.plan_batch(queries), [False] * len(queries)
        keys = [cache.key(tenant, query, scheme, model, quant, catalog_version)
                for query in queries]
        plans: list = [cache.get(key) for key in keys]
        hits = [plan is not None for plan in plans]
        for hit in hits:
            self.telemetry.record_plan_lookup(hit=hit)
        misses = [index for index, plan in enumerate(plans) if plan is None]
        if misses:
            fresh = agent.plan_batch([queries[index] for index in misses])
            for index, plan in zip(misses, fresh):
                plans[index] = plan
                cache.put(keys[index], plan)
        return plans, hits

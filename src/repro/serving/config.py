"""Configuration for the serving gateway."""

from __future__ import annotations

from dataclasses import dataclass

from repro.registry import SERVING_BACKENDS, register_serving_backend
from repro.specs import BudgetSpec, HttpSpec, ObsSpec


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of the gateway's admission control and micro-batcher.

    Parameters
    ----------
    max_batch_size:
        Flush a micro-batch as soon as this many requests are waiting.
        The planning stage of the whole batch runs through one vectorized
        ``encode``/``search_arrays`` pass, so larger batches amortize
        more kernel overhead at the cost of head-of-line latency.
    max_wait_ms:
        Deadline-based flush: a request never waits longer than this for
        co-batchable traffic before its (possibly smaller) batch is cut.
    queue_capacity:
        Admission control — total requests allowed to wait across all
        tenants.  Submissions beyond it fail fast with
        :class:`~repro.serving.batcher.QueueFullError` instead of growing
        an unbounded backlog.
    default_scheme / default_model / default_quant:
        Agent grid cell used for requests that do not specify one.  Also
        the cell :meth:`~repro.serving.gateway.Gateway.update_catalog`
        warms against a hot-swapped tool catalog before the atomic swap,
        so default-cell traffic never pays the re-index on-path.
    execution_backend:
        Where the post-planning episode loop of a flushed batch runs.
        Resolved through the serving-backend registry
        (:data:`repro.registry.SERVING_BACKENDS`): ``"thread"`` (default)
        keeps it on the gateway's batch worker; ``"process"`` fans it out
        across a pool of worker processes
        (:class:`~repro.serving.process.ProcessEpisodeExecutor`) —
        planning stays batched in the parent either way, and served
        results are bitwise identical across backends.
    execution_workers:
        Process count for the ``"process"`` backend (default: one per
        CPU).  Ignored by the thread backend.
    timeout_ms:
        End-to-end deadline per request, enforced by
        :meth:`~repro.serving.gateway.Gateway.submit` from admission
        through execution: a request that has not completed within this
        budget fails with
        :class:`~repro.serving.gateway.DeadlineExceededError` and — if
        it is still queued — is dropped before the next batch is cut, so
        no client future can hang forever behind a stalled worker.
        ``None`` (the default) disables the deadline.
    worker_init_timeout_s:
        How long :meth:`~repro.serving.process.ProcessEpisodeExecutor.start`
        waits for every worker process to reach the init barrier before
        declaring the pool dead (the error reports how many workers made
        it).  Also bounds each respawn attempt after a worker crash.
    execution_retries:
        How many times the supervised process stage resubmits a failed
        worker slice (bounded backoff between attempts) before running
        it inline on the batch worker.  Results are bitwise identical
        either way — episodes are deterministic from plan + seeds — so
        this trades only latency against pool pressure.
    retry_backoff_ms:
        Base backoff between slice retries; attempt ``n`` waits
        ``n * retry_backoff_ms``.
    slice_timeout_s:
        Upper bound on one worker slice; a slice that exceeds it is
        treated like a worker crash (retried, then run inline) so a
        wedged worker cannot strand its micro-batch.  ``None`` disables
        the bound.
    plan_cache_size:
        When > 0, memoize up to this many ``(tenant, query, scheme,
        model, quant) -> plan`` results in an LRU cache, so a repeated
        identical request skips the recommender + retrieval stage
        entirely.  Plans are deterministic per query, so cached replies
        are bitwise identical to freshly planned ones.  0 (the default)
        disables memoization; hit/miss counts surface in
        :meth:`~repro.serving.telemetry.Telemetry.snapshot`.
    obs:
        Observability configuration (:class:`~repro.specs.ObsSpec`):
        which trace sink to build, the sampling rate and the slow-span
        threshold.  ``None`` (the default) disables tracing entirely —
        the serving hot path then carries a single ``is None`` check.
        Tracing never changes served results; spans only observe.
    http:
        Bind address for the HTTP front door
        (:class:`~repro.specs.HttpSpec`: host, port, listen backlog),
        used by ``repro serve`` and
        :func:`repro.serving.http.serve_gateway`.  ``None`` (the
        default) means the gateway is in-process only — the ASGI app
        itself works regardless (tests call it directly).
    budget:
        Carbon/power budget (:class:`~repro.specs.BudgetSpec`): when
        set, the gateway runs a
        :class:`~repro.power.budget.BudgetController` that steps
        tenants down the degradation ladder on a rolling joule/gCO₂
        budget and the simulated board down nvpmodel power modes while
        grid carbon intensity is high.  ``None`` (the default) disables
        budget control; per-request energy/carbon attribution through
        the :class:`~repro.power.meter.EnergyMeter` is always on.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    queue_capacity: int = 256
    default_scheme: str = "lis-k3"
    default_model: str = "hermes2-pro-8b"
    default_quant: str = "q4_K_M"
    execution_backend: str = "thread"
    execution_workers: int | None = None
    plan_cache_size: int = 0
    timeout_ms: float | None = None
    worker_init_timeout_s: float = 60.0
    execution_retries: int = 2
    retry_backoff_ms: float = 50.0
    slice_timeout_s: float | None = 30.0
    obs: ObsSpec | None = None
    http: HttpSpec | None = None
    budget: BudgetSpec | None = None

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0.0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.execution_backend not in SERVING_BACKENDS:
            raise ValueError(
                f"unknown execution_backend {self.execution_backend!r}; "
                f"registered serving execution backends: "
                f"{', '.join(SERVING_BACKENDS.names())}")
        if self.execution_workers is not None and self.execution_workers < 1:
            raise ValueError(
                f"execution_workers must be >= 1, got {self.execution_workers}")
        if self.plan_cache_size < 0:
            raise ValueError(
                f"plan_cache_size must be >= 0, got {self.plan_cache_size}")
        if self.timeout_ms is not None and self.timeout_ms <= 0.0:
            raise ValueError(
                f"timeout_ms must be > 0 (or None), got {self.timeout_ms}")
        if self.worker_init_timeout_s <= 0.0:
            raise ValueError(
                f"worker_init_timeout_s must be > 0, "
                f"got {self.worker_init_timeout_s}")
        if self.execution_retries < 0:
            raise ValueError(
                f"execution_retries must be >= 0, got {self.execution_retries}")
        if self.retry_backoff_ms < 0.0:
            raise ValueError(
                f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms}")
        if self.slice_timeout_s is not None and self.slice_timeout_s <= 0.0:
            raise ValueError(
                f"slice_timeout_s must be > 0 (or None), "
                f"got {self.slice_timeout_s}")
        if isinstance(self.obs, dict):
            object.__setattr__(self, "obs", ObsSpec.from_dict(self.obs))
        if self.obs is not None and not isinstance(self.obs, ObsSpec):
            raise ValueError(
                f"obs must be an ObsSpec (or None), "
                f"got {type(self.obs).__name__}")
        if isinstance(self.http, dict):
            object.__setattr__(self, "http", HttpSpec.from_dict(self.http))
        if self.http is not None and not isinstance(self.http, HttpSpec):
            raise ValueError(
                f"http must be an HttpSpec (or None), "
                f"got {type(self.http).__name__}")
        if isinstance(self.budget, dict):
            object.__setattr__(self, "budget",
                               BudgetSpec.from_dict(self.budget))
        if self.budget is not None and not isinstance(self.budget, BudgetSpec):
            raise ValueError(
                f"budget must be a BudgetSpec (or None), "
                f"got {type(self.budget).__name__}")

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1e3

    @property
    def timeout_s(self) -> float | None:
        return self.timeout_ms / 1e3 if self.timeout_ms is not None else None


@register_serving_backend("thread")
def _thread_stage(config: ServingConfig) -> None:
    """Inline execution on the gateway's batch worker (no stage object)."""
    return None

"""Async micro-batching gateway serving function-calling requests at scale.

The serving layer turns the repo's batched kernels (vectorized
``encode``, multi-query ``search_arrays``) into cross-request
throughput: an asyncio :class:`Gateway` accepts requests from many
tenants, a :class:`BatchScheduler` coalesces concurrently-waiting
requests into micro-batches (flushed on max-batch-size or deadline), the
whole batch is planned through one vectorized pass per tenant, and each
episode then runs through the unchanged agent machinery.  Because every
kernel involved is batch-invariant, a served episode is identical to the
same query run sequentially through the
:class:`~repro.evaluation.runner.ExperimentRunner`.

Quickstart::

    from repro.serving import Gateway, ServingConfig, SessionManager
    from repro.suites import load_suite

    sessions = SessionManager()
    sessions.register("home", load_suite("edgehome"))
    async with Gateway(sessions, ServingConfig(max_batch_size=32)) as gw:
        response = await gw.submit("home", "edgehome-q001")
        print(response.episode.success, response.batch_size)
"""

from repro.serving.batcher import (
    BatchScheduler,
    PendingRequest,
    QueueFullError,
    SchedulerStoppedError,
)
from repro.power import BudgetController, BudgetPolicy, EnergyMeter
from repro.serving.config import ServingConfig
from repro.serving.degrade import (
    DegradationController,
    DegradationPolicy,
    LadderArbiter,
)
from repro.serving.faults import (
    FaultInjector,
    FaultPlan,
    InjectedFaultError,
)
from repro.serving.gateway import (
    DeadlineExceededError,
    Gateway,
    ServingResponse,
    TenantShedError,
    WorkItem,
)
from repro.serving.loadgen import (
    LoadReport,
    LoadSpec,
    make_workload,
    run_closed_loop,
    run_load,
)
from repro.serving.http import (
    ASGITestClient,
    AsgiServer,
    GatewayHTTPApp,
    HTTPConnection,
    create_app,
    serve_gateway,
)
from repro.serving.process import (
    ProcessEpisodeExecutor,
    SupervisedEpisodeExecutor,
)
from repro.serving.session import SessionManager, TenantSession, UnknownTenantError
from repro.serving.telemetry import Telemetry, percentile

__all__ = [
    "ASGITestClient",
    "AsgiServer",
    "BatchScheduler",
    "BudgetController",
    "BudgetPolicy",
    "DeadlineExceededError",
    "DegradationController",
    "DegradationPolicy",
    "EnergyMeter",
    "FaultInjector",
    "FaultPlan",
    "Gateway",
    "LadderArbiter",
    "GatewayHTTPApp",
    "HTTPConnection",
    "InjectedFaultError",
    "LoadReport",
    "LoadSpec",
    "PendingRequest",
    "ProcessEpisodeExecutor",
    "QueueFullError",
    "SchedulerStoppedError",
    "ServingConfig",
    "ServingResponse",
    "SessionManager",
    "SupervisedEpisodeExecutor",
    "Telemetry",
    "TenantShedError",
    "TenantSession",
    "UnknownTenantError",
    "WorkItem",
    "create_app",
    "make_workload",
    "percentile",
    "run_closed_loop",
    "run_load",
    "serve_gateway",
]

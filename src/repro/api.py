"""Top-level convenience constructors (legacy surface).

``load_suite`` and ``load_model`` remain first-class helpers; the
``build_*`` constructors predate the declarative Session API and are
kept as thin shims — each emits a :class:`DeprecationWarning` and
delegates to the exact machinery :func:`repro.open_session` uses, so
old-API and new-API paths produce bitwise-identical episodes (asserted
in ``tests/test_session_equivalence.py``).

Migration::

    # old                                   # new
    build_agent(s, m, q, suite)             open_session(suite=suite).build_agent(AgentSpec(s, m, q))
    build_less_is_more(m, q, suite, k=3)    open_session(suite=suite).build_agent(AgentSpec("lis", m, q, k=3))
    build_gateway({"t": suite}, config)     open_session(ServingSpec(tenants=...)).serve()

All imports are local so that ``import repro`` stays cheap.
"""

from __future__ import annotations

import warnings


def load_suite(name: str, n_queries: int | None = None, seed: int | None = None):
    """Load a benchmark suite by registered name (e.g. ``"bfcl"``).

    ``n_queries`` defaults to the paper's mini-batch size of 230.
    """
    from repro.suites import load_suite as _load

    return _load(name, n_queries=n_queries, seed=seed)


def load_model(model: str, quant: str = "q4_K_M"):
    """Instantiate a simulated edge LLM (e.g. ``"llama3.1-8b"``)."""
    from repro.llm import SimulatedLLM

    return SimulatedLLM.from_registry(model, quant)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.{old} is deprecated; use {new} instead "
        f"(see the README 'Public API' migration table)",
        DeprecationWarning, stacklevel=3)


def build_less_is_more(model: str, quant: str, suite, k: int = 3, **kwargs):
    """Deprecated: build a Less-is-More agent for ``suite``.

    Use ``open_session(suite=suite).build_agent(AgentSpec("lis", model,
    quant, k=k))``.
    """
    _deprecated("build_less_is_more",
                'open_session(...).build_agent(AgentSpec("lis", ...))')
    from repro.session import open_session
    from repro.specs import AgentSpec

    session = open_session(suite=suite)
    return session.build_agent(
        AgentSpec(scheme="lis", model=model, quant=quant, k=k), **kwargs)


def build_agent(scheme: str, model: str, quant: str, suite, **kwargs):
    """Deprecated: build any registered scheme's agent.

    Use ``open_session(suite=suite).build_agent(AgentSpec(scheme, model,
    quant))``.
    """
    _deprecated("build_agent", "open_session(...).build_agent(AgentSpec(...))")
    from repro.session import open_session
    from repro.specs import AgentSpec

    session = open_session(suite=suite)
    return session.build_agent(
        AgentSpec(scheme=scheme, model=model, quant=quant), **kwargs)


def build_gateway(suites: dict, config=None):
    """Deprecated: wire a serving gateway over ``{tenant_name: suite}``.

    Use ``open_session(ServingSpec(tenants=(...,))).serve()`` — or keep
    the suites as objects and register them on a
    :class:`~repro.serving.session.SessionManager` directly.
    """
    _deprecated("build_gateway", "open_session(ServingSpec(...)).serve()")
    from repro.serving.gateway import Gateway
    from repro.serving.session import SessionManager

    sessions = SessionManager()
    for tenant, suite in suites.items():
        sessions.register(tenant, suite)
    return Gateway(sessions, config=config)

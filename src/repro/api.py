"""Top-level convenience constructors.

These helpers wire the full stack (suite → embedder → search levels →
simulated LLM → hardware model → agent) with the defaults used in the
paper's evaluation, so examples and quick experiments stay one-liners.
All imports are local so that ``import repro`` stays cheap.
"""

from __future__ import annotations


def load_suite(name: str, n_queries: int | None = None, seed: int | None = None):
    """Load a benchmark suite by name (``"bfcl"`` or ``"geoengine"``).

    ``n_queries`` defaults to the paper's mini-batch size of 230.
    """
    from repro.suites import load_suite as _load

    return _load(name, n_queries=n_queries, seed=seed)


def load_model(model: str, quant: str = "q4_K_M"):
    """Instantiate a simulated edge LLM (e.g. ``"llama3.1-8b"``)."""
    from repro.llm import SimulatedLLM

    return SimulatedLLM.from_registry(model, quant)


def build_less_is_more(model: str, quant: str, suite, k: int = 3, **kwargs):
    """Build a ready-to-run Less-is-More agent for ``suite``."""
    from repro.core import LessIsMoreAgent

    return LessIsMoreAgent.build(model=model, quant=quant, suite=suite, k=k, **kwargs)


def build_agent(scheme: str, model: str, quant: str, suite, **kwargs):
    """Build any evaluated agent: ``"default"``, ``"gorilla"``, ``"lis"``
    or ``"toolllm"``.
    """
    from repro.baselines import build_baseline
    from repro.core import LessIsMoreAgent

    if scheme == "lis":
        return LessIsMoreAgent.build(model=model, quant=quant, suite=suite, **kwargs)
    return build_baseline(scheme, model=model, quant=quant, suite=suite, **kwargs)


def build_gateway(suites: dict, config=None):
    """Wire a serving gateway over ``{tenant_name: suite}`` catalogs.

    Returns an unstarted :class:`~repro.serving.Gateway`; drive it with
    ``async with build_gateway({"home": suite}) as gw: await gw.submit(...)``.
    """
    from repro.serving import Gateway, SessionManager

    sessions = SessionManager()
    for tenant, suite in suites.items():
        sessions.register(tenant, suite)
    return Gateway(sessions, config=config)

"""Seeded random-number streams.

Every stochastic component of the simulator (LLM sampling noise, hardware
jitter, benchmark generation) draws from a :class:`numpy.random.Generator`
derived from a *named stream*.  Streams with the same name and root seed
produce identical sequences on every platform, which keeps tests and
benchmark tables bit-reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.utils.hashing import stable_hash64

#: Root seed used by the whole reproduction unless explicitly overridden.
DEFAULT_ROOT_SEED = 20250423


def derive_rng(*stream: str | int | float, root_seed: int = DEFAULT_ROOT_SEED) -> np.random.Generator:
    """Return a generator for the stream identified by ``stream`` parts.

    The same ``(root_seed, *stream)`` tuple always yields an identical
    generator state.  Different streams are statistically independent
    (seeded from disjoint BLAKE2 digests).
    """
    seed = stable_hash64(root_seed, *stream)
    return np.random.default_rng(seed)


class RngFactory:
    """Factory bound to a root seed, handing out named sub-streams.

    Example::

        rngs = RngFactory(root_seed=7)
        a = rngs.stream("llm", "llama3.1-8b", "query-12")
        b = rngs.stream("llm", "llama3.1-8b", "query-12")
        # a and b generate the same sequence
    """

    def __init__(self, root_seed: int = DEFAULT_ROOT_SEED):
        self.root_seed = int(root_seed)

    def stream(self, *parts: str | int | float) -> np.random.Generator:
        """Return the generator for a named sub-stream."""
        return derive_rng(*parts, root_seed=self.root_seed)

    def spawn(self, *parts: str | int | float) -> "RngFactory":
        """Return a child factory whose streams are namespaced by ``parts``."""
        return RngFactory(stable_hash64(self.root_seed, "spawn", *parts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(root_seed={self.root_seed})"

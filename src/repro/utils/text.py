"""Small text-manipulation helpers used across the package."""

from __future__ import annotations

import re

_WHITESPACE_RE = re.compile(r"\s+")


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip the ends."""
    return _WHITESPACE_RE.sub(" ", text).strip()


def truncate_words(text: str, max_words: int) -> str:
    """Return at most ``max_words`` whitespace-separated words of ``text``."""
    if max_words <= 0:
        return ""
    words = text.split()
    if len(words) <= max_words:
        return text.strip()
    return " ".join(words[:max_words])


def sentence_case(text: str) -> str:
    """Capitalise the first character, leaving the rest untouched."""
    stripped = text.strip()
    if not stripped:
        return stripped
    return stripped[0].upper() + stripped[1:]


def snake_to_words(name: str) -> str:
    """Turn ``snake_case_name`` into ``snake case name``."""
    return name.replace("_", " ").strip()


def words_to_snake(text: str) -> str:
    """Turn free text into a ``snake_case`` identifier."""
    cleaned = re.sub(r"[^a-zA-Z0-9]+", "_", text.strip().lower())
    return cleaned.strip("_")

"""Stable, process-independent hashing.

Python's built-in :func:`hash` is salted per process (``PYTHONHASHSEED``),
so every piece of the simulator that needs reproducible pseudo-randomness
derives its seeds from BLAKE2 digests instead.  The helpers here are the
single source of truth for that derivation.
"""

from __future__ import annotations

import hashlib


def stable_hash_bytes(*parts: str | bytes | int | float) -> bytes:
    """Return a 16-byte BLAKE2 digest of the given parts.

    Parts are length-delimited before hashing so that ``("ab", "c")`` and
    ``("a", "bc")`` produce different digests.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        if isinstance(part, bytes):
            raw = part
        elif isinstance(part, str):
            raw = part.encode("utf-8")
        elif isinstance(part, bool):
            raw = b"\x01" if part else b"\x00"
        elif isinstance(part, int):
            raw = part.to_bytes(16, "little", signed=True)
        elif isinstance(part, float):
            raw = repr(part).encode("utf-8")
        else:
            raise TypeError(f"unhashable part type: {type(part).__name__}")
        hasher.update(len(raw).to_bytes(4, "little"))
        hasher.update(raw)
    return hasher.digest()


def stable_hash64(*parts: str | bytes | int | float) -> int:
    """Return a stable unsigned 64-bit hash of the given parts."""
    return int.from_bytes(stable_hash_bytes(*parts)[:8], "little")

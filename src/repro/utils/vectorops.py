"""Shared dense-vector helpers: zero-safe norms, row normalization, blending.

Several layers (the sentence embedder, the retrieval pipeline, clustering
distances, vector-index metrics) need the same "L2-normalize but leave
all-zero rows untouched" guard.  Keeping one implementation here makes the
semantics identical everywhere: a zero row has no direction, so it stays a
zero row instead of becoming NaN.
"""

from __future__ import annotations

import numpy as np


def safe_norms(matrix: np.ndarray, axis: int = 1, keepdims: bool = True) -> np.ndarray:
    """Row (or column) L2 norms with zeros replaced by 1.0.

    Dividing by the result never produces NaN/inf: all-zero rows keep a
    nominal norm of 1.0 and therefore stay all-zero after division.
    """
    norms = np.linalg.norm(matrix, axis=axis, keepdims=keepdims)
    norms[norms == 0.0] = 1.0
    return norms


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` with unit-norm rows (zero rows preserved as zero)."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    return matrix / safe_norms(matrix)


def blend_and_normalize(vectors: np.ndarray, context: np.ndarray,
                        weight: float = 0.75,
                        rowwise_context: bool = False) -> np.ndarray:
    """Convex blend of each row with a context vector, re-normalized.

    This is the paper Section III-B step where recommended tool
    descriptions are embedded "alongside the corresponding user task": the
    description keeps ``weight`` of the mass so it still dominates the
    match, while the task context disambiguates multi-tool workflows.

    With ``rowwise_context`` the context is an ``(n, dim)`` matrix giving
    each row its own context vector — used by the batched planner to
    blend many requests' description rows (each against its own query) in
    one pass.  All operations are row-wise, so the result is bitwise
    equal to per-request calls with the shared-vector form.
    """
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"weight must be in [0, 1], got {weight}")
    vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
    context = np.asarray(context, dtype=float)
    if not rowwise_context:
        context = context[None, :]
    elif context.shape != vectors.shape:
        raise ValueError(
            f"rowwise context shape {context.shape} must match vectors "
            f"shape {vectors.shape}")
    blended = weight * vectors + (1.0 - weight) * context
    return normalize_rows(blended)

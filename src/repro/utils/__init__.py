"""Shared low-level helpers: stable hashing, seeded RNG streams, text, vectors."""

from repro.utils.hashing import stable_hash64, stable_hash_bytes
from repro.utils.rng import RngFactory, derive_rng
from repro.utils.text import (
    normalize_whitespace,
    sentence_case,
    truncate_words,
)
from repro.utils.vectorops import blend_and_normalize, normalize_rows, safe_norms

__all__ = [
    "RngFactory",
    "blend_and_normalize",
    "derive_rng",
    "normalize_rows",
    "normalize_whitespace",
    "safe_norms",
    "sentence_case",
    "stable_hash64",
    "stable_hash_bytes",
    "truncate_words",
]

"""Shared low-level helpers: stable hashing, seeded RNG streams, text."""

from repro.utils.hashing import stable_hash64, stable_hash_bytes
from repro.utils.rng import RngFactory, derive_rng
from repro.utils.text import (
    normalize_whitespace,
    sentence_case,
    truncate_words,
)

__all__ = [
    "RngFactory",
    "derive_rng",
    "normalize_whitespace",
    "sentence_case",
    "stable_hash64",
    "stable_hash_bytes",
    "truncate_words",
]

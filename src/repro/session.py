"""The ``Session`` facade: one entrypoint for run / grid / serve.

A session binds a validated :class:`~repro.specs.ExperimentSpec` to the
shared runtime state every execution path needs — one
:class:`~repro.embedding.cache.CachedEmbedder` and one lazily-built set
of Search Levels per suite — and exposes the three ways of driving the
stack:

* :meth:`Session.run` — one (scheme, model, quant) evaluation batch;
* :meth:`Session.run_grid` — a scheme x model x quant sweep on a
  worker pool;
* :meth:`Session.serve` — the async multi-tenant micro-batching
  gateway.

Quickstart::

    from repro import AgentSpec, open_session

    session = open_session("bfcl", n_queries=20)
    run = session.run(AgentSpec(scheme="lis-k3", model="llama3.1-8b"))
    print(run.summary)

Heavy submodules (evaluation, serving) are imported inside methods so
``from repro import open_session`` stays cheap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.specs import (
    AgentSpec,
    ExperimentSpec,
    GridSpec,
    ServingSpec,
    SuiteSpec,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.runner import EvaluationRun, ExperimentRunner
    from repro.serving.gateway import Gateway
    from repro.suites.base import BenchmarkSuite


class Session:
    """Shared-state facade over one experiment spec.

    The session owns the embedder cache and the per-suite
    :class:`~repro.evaluation.runner.ExperimentRunner` (and through it
    the offline Search Levels), so every agent built here — across
    ``run``, ``run_grid`` and repeated calls — reuses the same warmed
    state, exactly like the paper's one-time offline step.

    Construct via :func:`open_session` rather than directly.
    """

    def __init__(self, spec: ExperimentSpec, *, embedder=None,
                 suite: "BenchmarkSuite | None" = None):
        if not isinstance(spec, ExperimentSpec):
            raise TypeError(
                f"Session expects an ExperimentSpec, got {type(spec).__name__}; "
                f"use repro.open_session(...) to build one from a suite name "
                f"or sub-spec")
        self.spec = spec
        self._embedder = embedder
        self._suite = suite
        self._runner: "ExperimentRunner | None" = None

    # ------------------------------------------------------------------
    # shared state
    # ------------------------------------------------------------------
    @property
    def embedder(self):
        """The session-wide embedding cache (created on first use)."""
        if self._embedder is None:
            from repro.embedding.cache import shared_embedder

            self._embedder = shared_embedder()
        return self._embedder

    @property
    def suite(self) -> "BenchmarkSuite":
        """The session's benchmark suite (loaded on first use)."""
        if self._suite is None:
            if self.spec.suite is None:
                raise ValueError(
                    "this session has no suite: open it with a suite name / "
                    "SuiteSpec, or use .serve() with tenant specs")
            self._suite = self.spec.suite.load()
        return self._suite

    @property
    def runner(self) -> "ExperimentRunner":
        """The shared :class:`ExperimentRunner` over :attr:`suite`."""
        if self._runner is None:
            from repro.evaluation.runner import ExperimentRunner

            self._runner = ExperimentRunner(self.suite, embedder=self.embedder)
        return self._runner

    @property
    def levels(self):
        """The suite's offline-built Search Levels (built on first use)."""
        return self.runner.levels

    @property
    def catalog(self):
        """The session suite's :class:`~repro.tools.catalog.ToolCatalog`."""
        return self.suite.catalog

    # ------------------------------------------------------------------
    # agents
    # ------------------------------------------------------------------
    def _agent_spec(self, agent: "AgentSpec | str | None") -> AgentSpec:
        if agent is None:
            if self.spec.agent is None:
                raise ValueError(
                    "no AgentSpec: pass one to this call or put one in the "
                    "session's ExperimentSpec")
            return self.spec.agent
        if isinstance(agent, str):
            base = self.spec.agent if self.spec.agent is not None else AgentSpec()
            return base.replace(scheme=agent)
        return agent

    def build_agent(self, agent: "AgentSpec | str | None" = None, **kwargs):
        """Construct the agent for a spec (or scheme-name shorthand).

        ``kwargs`` are forwarded to the scheme factory on top of the
        spec's own knobs — the escape hatch for scheme parameters that
        have no spec field (e.g. ``skill_multiplier``).
        """
        spec = self._agent_spec(agent)
        if spec.engine is not None:
            kwargs.setdefault("engine", spec.engine)
        return self.runner.make_agent(spec.scheme, spec.model, spec.quant,
                                      **{**spec.agent_kwargs(), **kwargs})

    # ------------------------------------------------------------------
    # the three entrypoints
    # ------------------------------------------------------------------
    def run(self, agent: "AgentSpec | str | None" = None, *,
            n_queries: int | None = None, **kwargs) -> "EvaluationRun":
        """Run one evaluation batch for one agent grid cell."""
        spec = self._agent_spec(agent)
        if spec.engine is not None:
            kwargs.setdefault("engine", spec.engine)
        return self.runner.run(spec.scheme, spec.model, spec.quant,
                               n_queries=n_queries,
                               **{**spec.agent_kwargs(), **kwargs})

    def run_grid(self, grid: "GridSpec | None" = None) -> dict:
        """Run a scheme x model x quant grid on a worker pool.

        Returns ``{(scheme, model, quant): EvaluationRun}`` exactly like
        :meth:`ExperimentRunner.run_grid`.
        """
        if grid is None:
            grid = self.spec.grid
        if grid is None:
            raise ValueError(
                "no GridSpec: pass one to run_grid or put one in the "
                "session's ExperimentSpec")
        return self.runner.run_grid(
            list(grid.schemes), list(grid.models), list(grid.quants),
            n_queries=grid.n_queries, max_workers=grid.workers,
            backend=grid.backend)

    def serve(self, serving: "ServingSpec | None" = None) -> "Gateway":
        """Wire the serving gateway this spec describes (unstarted).

        Tenants come from the serving spec; when it names none and the
        session has a suite, that suite is served as a single tenant
        under its own name.  Drive the result with ``async with``::

            async with session.serve() as gateway:
                response = await gateway.submit(tenant, query)
        """
        from repro.serving.gateway import Gateway
        from repro.serving.session import SessionManager

        if serving is None:
            serving = self.spec.serving
        if serving is None:
            serving = ServingSpec()
        sessions = SessionManager(embedder=self.embedder)
        if serving.tenants:
            for tenant in serving.tenants:
                # the tenant's CatalogSpec override (variant / subset /
                # replacement pool) is applied declaratively at load time;
                # a tenant-level engine wins over the serving default
                engine = (tenant.engine if tenant.engine is not None
                          else serving.default_engine)
                sessions.register(tenant.name, tenant.effective_suite().load(),
                                  engine=engine)
        else:
            sessions.register(self.suite.name, self.suite,
                              engine=serving.default_engine)
        return Gateway(sessions, config=serving.to_config())


def open_session(spec: Any = None, *, suite: Any = None,
                 n_queries: int | None = None, seed: int | None = None,
                 embedder=None) -> Session:
    """Open a :class:`Session` — the single entrypoint to the stack.

    ``spec`` may be:

    * an :class:`~repro.specs.ExperimentSpec` (used as-is);
    * a :class:`~repro.specs.SuiteSpec` or a suite name string —
      ``open_session("bfcl", n_queries=20)``;
    * a :class:`~repro.specs.ServingSpec` — a serving-only session;
    * a dict, decoded via :meth:`ExperimentSpec.from_dict`;
    * ``None`` with ``suite=`` a ready-built
      :class:`~repro.suites.base.BenchmarkSuite` instance (the
      bring-your-own-tools path — no registry entry needed).

    ``embedder`` overrides the shared process-wide embedding cache
    (useful for isolation in benchmarks and tests).
    """
    suite_obj = None
    if spec is None and suite is not None and not isinstance(suite, (str, SuiteSpec)):
        # a constructed BenchmarkSuite rides alongside a placeholder spec
        suite_obj = suite
        spec = ExperimentSpec(suite=SuiteSpec(name=getattr(suite, "name", "custom")))
    elif spec is None and suite is not None:
        spec = suite
    if isinstance(spec, str):
        spec = SuiteSpec(name=spec, n_queries=n_queries, seed=seed)
    elif n_queries is not None or seed is not None:
        # anything other than a bare suite name already pins (or cannot
        # express) these; dropping them silently would hand back a
        # session over a very different query pool
        raise ValueError(
            "n_queries/seed only apply when opening a session from a suite "
            "name; set them on the SuiteSpec instead")
    if isinstance(spec, SuiteSpec):
        spec = ExperimentSpec(suite=spec)
    elif isinstance(spec, ServingSpec):
        spec = ExperimentSpec(serving=spec)
    elif isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)
    if spec is None:
        raise ValueError(
            "open_session needs an ExperimentSpec, a SuiteSpec/suite name, a "
            "ServingSpec, or suite=<BenchmarkSuite>")
    return Session(spec, embedder=embedder, suite=suite_obj)


__all__ = ["Session", "open_session"]

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        evaluate one (scheme, model, quant) batch on a suite
``grid``       sweep a scheme x model x quant grid on a worker pool
``compare``    default vs Gorilla vs LiS side-by-side with error bars
``levels``     inspect the offline Search Levels built for a suite
``catalog``    list / show / diff registered tool catalogs and variants
``profile``    cost one hypothetical function-calling turn on the Orin
``metrics``    serve a short load, print Prometheus text exposition
``chaos``      serve a workload under seeded fault injection
``carbon``     compare uncontrolled vs carbon/power-budgeted serving
``serve``      boot the HTTP front door over registered tenant suites

Every evaluation command builds a typed spec (:mod:`repro.specs`) and
drives it through one :func:`repro.open_session` session, so the CLI,
the examples and the bench scripts all exercise the same entrypoint.
Suite and scheme names resolve through the plugin registries — a
third-party suite registered via :func:`repro.registry.register_suite`
is immediately addressable as ``--suite <name>``.

Examples::

    python -m repro run --suite bfcl --scheme lis-k3 --model llama3.1-8b
    python -m repro run --suite browser --engine-url http://127.0.0.1:8080/v1
    python -m repro grid --suite bfcl --schemes default,lis-k3 \
        --quants q4_K_M,q8_0 --backend process --workers 4
    python -m repro compare --suite geoengine --model hermes2-pro-8b -n 60
    python -m repro levels --suite geoengine
    python -m repro catalog list
    python -m repro catalog show edgehome --variant compressed
    python -m repro catalog diff edgehome edgehome --against-variant minimal
    python -m repro profile --tools 46 --window 16384 --quant q4_K_M
    python -m repro metrics --suite edgehome --requests 16
    python -m repro chaos --process --trace-out /tmp/chaos_trace.jsonl
    python -m repro carbon --suite edgehome --requests 48
    python -m repro serve --tenants edgehome,bfcl --port 8080 \
        --carbon-budget 180
"""

from __future__ import annotations

import argparse

from repro.registry import GRID_BACKENDS, SUITES
from repro.session import open_session
from repro.specs import AgentSpec, EngineSpec, ExperimentSpec, GridSpec, SuiteSpec


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--suite", default="bfcl", choices=SUITES.names())
    parser.add_argument("--model", default="llama3.1-8b")
    parser.add_argument("--quant", default="q4_K_M")
    parser.add_argument("-n", "--queries", type=int, default=60,
                        help="queries per batch (paper: 230)")


def _session(args: argparse.Namespace, agent: AgentSpec | None = None,
             grid: GridSpec | None = None):
    return open_session(ExperimentSpec(
        suite=SuiteSpec(name=args.suite, n_queries=args.queries),
        agent=agent, grid=grid,
    ))


def _engine_spec(args: argparse.Namespace) -> EngineSpec | None:
    """Build the run's :class:`EngineSpec` from ``--engine``/``--engine-url``.

    ``--engine-url`` alone implies ``openai_http``; ``--engine`` alone
    names any registered engine; neither keeps the simulated default
    (engine=None — the zero-overhead direct path).
    """
    if args.engine is None and args.engine_url is None:
        return None
    name = args.engine or "openai_http"
    return EngineSpec(name=name, base_url=args.engine_url)


def cmd_run(args: argparse.Namespace) -> int:
    from repro.evaluation.reporting import render_metric_table
    from repro.evaluation.stats import success_rate_ci

    session = _session(args, agent=AgentSpec(
        scheme=args.scheme, model=args.model, quant=args.quant,
        engine=_engine_spec(args)))
    run = session.run()
    label = f"{args.scheme} {args.model}-{args.quant}"
    print(render_metric_table({label: run.summary},
                              title=f"{args.suite} | {args.queries} queries"))
    ci = success_rate_ci(run.episodes)
    print(f"success 95% CI: [{ci.low:.1%}, {ci.high:.1%}]")
    return 0


def cmd_grid(args: argparse.Namespace) -> int:
    import time

    from repro.evaluation.reporting import render_metric_table

    grid = GridSpec(
        schemes=args.schemes,
        models=args.models or args.model,
        quants=args.quants or args.quant,
        backend=args.backend,
        workers=args.workers,
    )
    session = _session(args, grid=grid)
    start = time.perf_counter()
    results = session.run_grid()
    wall_s = time.perf_counter() - start
    print(render_metric_table(
        {f"{scheme} {model}-{quant}": run.summary
         for (scheme, model, quant), run in results.items()},
        title=(f"{args.suite} | {len(results)} cells | {args.queries} queries | "
               f"{grid.backend} backend")))
    print(f"{len(results)} cells in {wall_s:.2f}s "
          f"({grid.backend}, workers={grid.workers or 'auto'})")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.evaluation.metrics import normalize
    from repro.evaluation.reporting import render_metric_table

    session = _session(args)
    schemes = ["default", "gorilla", "lis-k3", "lis-k5"]
    runs = {scheme: session.run(AgentSpec(
                scheme=scheme, model=args.model, quant=args.quant))
            for scheme in schemes}
    print(render_metric_table(
        {scheme: run.summary for scheme, run in runs.items()},
        title=f"{args.suite} | {args.model}-{args.quant} | {args.queries} queries"))
    base = runs["default"].summary
    for scheme in schemes[1:]:
        norm = normalize(runs[scheme].summary, base)
        print(f"  {scheme:<8} vs default: time x{norm.normalized_time:.2f}, "
              f"power x{norm.normalized_power:.2f}")
    return 0


def cmd_levels(args: argparse.Namespace) -> int:
    session = _session(args)
    suite, levels = session.suite, session.levels
    print(f"{suite.name}: {suite.n_tools} tools -> Level 1 index "
          f"({len(levels.tool_index)} vectors), Level 2 "
          f"({levels.n_clusters} clusters)")
    for cluster in levels.clusters:
        print(f"  cluster {cluster.cluster_id} "
              f"({cluster.n_samples} samples): {', '.join(cluster.tools)}")
    return 0


def _catalog_tokens(catalog) -> int:
    from repro.llm.tokens import tool_prompt_tokens

    return sum(tool_prompt_tokens(tool) for tool in catalog)


def cmd_catalog_list(args: argparse.Namespace) -> int:
    from repro.registry import CATALOGS
    from repro.tools.catalog import load_catalog

    header = (f"{'catalog':<12} {'tools':>5} {'categories':>10} "
              f"{'full':>7} {'comp.':>7} {'min.':>7}  version")
    print(header)
    print("-" * len(header))
    for name in CATALOGS.names():
        catalog = load_catalog(name)
        tokens = {variant: _catalog_tokens(catalog.at(variant))
                  for variant in ("full", "compressed", "minimal")}
        print(f"{name:<12} {len(catalog):>5} {len(catalog.categories):>10} "
              f"{tokens['full']:>7} {tokens['compressed']:>7} "
              f"{tokens['minimal']:>7}  {catalog.version[:12]}")
    print("\n(token columns: total tool_prompt_tokens per description variant)")
    return 0


def cmd_catalog_show(args: argparse.Namespace) -> int:
    from repro.llm.tokens import tool_prompt_tokens
    from repro.tools.catalog import load_catalog

    catalog = load_catalog(args.name, variant=args.variant)
    print(f"catalog {catalog.name!r} | variant {catalog.variant} | "
          f"{len(catalog)} tools | {_catalog_tokens(catalog)} prompt tokens | "
          f"version {catalog.version[:12]}")
    for category in catalog.categories:
        print(f"\n[{category}]")
        for tool in catalog.by_category(category):
            print(f"  {tool.name:<28} {tool_prompt_tokens(tool):>4} tok  "
                  f"{tool.description}")
    return 0


def cmd_catalog_diff(args: argparse.Namespace) -> int:
    from repro.tools.catalog import load_catalog

    old = load_catalog(args.old, variant=args.variant)
    new = load_catalog(args.new, variant=args.against_variant or args.variant)
    diff = old.diff(new)
    old_tokens, new_tokens = _catalog_tokens(old), _catalog_tokens(new)
    print(f"{old.name}@{old.variant} ({old.version[:12]}) -> "
          f"{new.name}@{new.variant} ({new.version[:12]}): {diff.summary()}")
    delta = (f" ({(new_tokens - old_tokens) / old_tokens:+.1%})"
             if old_tokens else "")
    print(f"prompt tokens: {old_tokens} -> {new_tokens}{delta}")
    for name in diff.changed:
        before, after = old.get(name), new.get(name)
        if before.description != after.description:
            print(f"  ~ {name}:")
            print(f"      - {before.description}")
            print(f"      + {after.description}")
        else:
            print(f"  ~ {name}: parameters/metadata changed")
    return 0 if diff.is_empty and old_tokens == new_tokens else 1


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.hardware import InferenceRequest, simulate_inference
    from repro.hardware.power_modes import orin_in_mode
    from repro.llm import get_quant_spec
    from repro.llm.tokens import AGENT_SYSTEM_TOKENS

    spec = get_quant_spec(args.quant)
    device = orin_in_mode(args.power_mode)
    prompt = AGENT_SYSTEM_TOKENS + args.tools * 150 + 40
    trace = simulate_inference(InferenceRequest(
        params_b=args.params_b, bits_per_weight=spec.bits_per_weight,
        prompt_tokens=min(prompt, args.window - 1024),
        generated_tokens=args.output_tokens, context_window=args.window,
        jitter_stream="cli-profile",
    ), device=device)
    print(f"{args.tools} tools | {args.window} window | {args.quant} | "
          f"{args.power_mode}")
    print(f"  prefill {trace.prefill_s:.1f}s + decode {trace.decode_s:.1f}s "
          f"= {trace.total_s:.1f}s at {trace.avg_power_w:.1f}W "
          f"({trace.energy_j:.0f} J, {trace.peak_memory_gb:.1f} GB)")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Serve a short load and print the Prometheus text exposition.

    What a scrape of the future ``/metrics`` endpoint would return:
    ``Gateway.metrics_text()`` — telemetry snapshot plus the per-tenant
    cost ledger — after ``--requests`` closed-loop requests.
    """
    from repro.obs.prometheus import render_prometheus
    from repro.serving import ServingConfig, run_load
    from repro.specs import ObsSpec
    from repro.suites import load_suite

    config = ServingConfig(
        max_batch_size=args.batch_size, max_wait_ms=2.0,
        obs=ObsSpec(sink="memory", sample_rate=args.sample_rate))
    report = run_load({args.suite: load_suite(args.suite)}, config,
                      n_requests=args.requests, concurrency=args.concurrency)
    print(render_prometheus(report.gateway_metrics, cost=report.cost),
          end="")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Replayable chaos run: serve a workload while injecting faults."""
    from repro.obs.sinks import read_jsonl_spans
    from repro.serving import FaultPlan, ServingConfig, run_load
    from repro.specs import ObsSpec
    from repro.suites import load_suite

    config = ServingConfig(
        max_batch_size=args.batch_size,
        max_wait_ms=2.0,
        execution_backend="process" if args.process else "thread",
        execution_workers=args.workers,
        timeout_ms=args.timeout_ms,
        retry_backoff_ms=20.0,
        obs=(ObsSpec(sink="jsonl", sink_path=args.trace_out)
             if args.trace_out else None),
    )
    plan = FaultPlan(seed=args.seed,
                     worker_crash_rate=args.crash_rate if args.process else 0.0,
                     slow_batch_rate=args.slow_rate, slow_batch_ms=250.0,
                     exception_rate=args.exception_rate)
    report = run_load({args.suite: load_suite(args.suite)}, config,
                      n_requests=args.requests, concurrency=args.concurrency,
                      faults=plan, tolerate_errors=True)
    metrics = report.gateway_metrics
    print(f"chaos seed {args.seed}: {report.n_requests} requests, "
          f"{report.n_errors} failed ({report.success_rate:.0%} served)")
    print(f"  faults injected: {metrics['faults_injected_by_hook'] or 'none'}")
    print(f"  worker restarts {metrics['worker_restarts']} | slice retries "
          f"{metrics['slice_retries']} | inline fallbacks "
          f"{metrics['inline_fallbacks']} | quarantines "
          f"{metrics['batch_quarantines']} | deadline timeouts "
          f"{metrics['deadline_timeouts']}")
    print(f"  p95 latency {report.latency_p95_ms:.1f} ms at "
          f"{report.throughput_rps:.1f} req/s")
    if args.trace_out:
        spans = read_jsonl_spans(args.trace_out)
        traces = {span["trace_id"] for span in spans}
        event_hooks = sorted({
            event["attributes"]["hook"]
            for span in spans for event in span["events"]
            if event["name"] == "fault"})
        injected_hooks = sorted(metrics["faults_injected_by_hook"])
        print(f"  trace artifact: {len(spans)} spans / {len(traces)} traces "
              f"-> {args.trace_out}")
        print(f"  fault span events at hooks: {event_hooks or 'none'}")
        # deadline-abandoned requests may orphan their buffered events,
        # but with no deadline armed every injected fault must surface
        # as a span event at the same hook name
        if args.timeout_ms is None and injected_hooks != event_hooks:
            print(f"  MISMATCH: telemetry recorded faults at "
                  f"{injected_hooks}, trace events cover {event_hooks}")
            return 1
    return 0


def cmd_carbon(args: argparse.Namespace) -> int:
    """Serve the same load twice — uncontrolled, then under a joule
    budget — and print the energy/carbon ledger of both.

    Requests go through the gateway in waves of ``--window`` with one
    controller tick between waves, so the descent down the ladder is
    deterministic and visible.  With no explicit ``--budget`` the cap
    self-calibrates to ``--budget-fraction`` of the uncontrolled mean,
    so the command always demonstrates the controller controlling.
    """
    import asyncio
    import time

    from repro.serving import Gateway, ServingConfig, SessionManager, \
        TenantShedError
    from repro.specs import BudgetSpec
    from repro.suites import load_suite

    suite = load_suite(args.suite)
    queries = suite.queries

    def run(spec: "BudgetSpec | None"):
        async def scenario():
            sessions = SessionManager()
            sessions.register(args.suite, suite)
            config = ServingConfig(max_batch_size=args.batch_size,
                                   max_wait_ms=2.0, budget=spec)
            async with Gateway(sessions, config=config) as gateway:
                start = time.perf_counter()
                served = 0
                for wave in range(0, args.requests, args.window):
                    n = min(args.window, args.requests - wave)
                    batch = [queries[(wave + i) % len(queries)]
                             for i in range(n)]
                    outcomes = await asyncio.gather(*(
                        gateway.submit(args.suite, query)
                        for query in batch), return_exceptions=True)
                    for outcome in outcomes:
                        # a tight budget may legitimately shed; anything
                        # else is a real failure
                        if isinstance(outcome, TenantShedError):
                            continue
                        if isinstance(outcome, BaseException):
                            raise outcome
                        served += 1
                    if gateway.budget is not None:
                        gateway.budget.tick()
                wall = time.perf_counter() - start
                return served, served / wall, gateway.metrics()

        served, goodput, metrics = asyncio.run(scenario())
        return served, goodput, metrics, (metrics["energy_j"] / served,
                                          metrics["carbon_g"] / served)

    served, goodput, _, (base_j, base_g) = run(None)
    print(f"uncontrolled: {served}/{args.requests} req at "
          f"{goodput:.1f} req/s | "
          f"{base_j:.1f} J/req | {base_g * 1e3:.2f} mgCO2/req")

    budget_j = (args.budget if args.budget is not None
                else base_j * args.budget_fraction)
    spec = BudgetSpec(
        energy_budget_j=budget_j,
        window_requests=args.window, settle_requests=args.window,
        recovery_ticks=2, interval_ms=3_600_000.0,
        signal=args.signal, trace_path=args.trace_path,
        intensity_g_per_kwh=args.intensity,
        intensity_high=args.intensity_high)
    served, goodput, metrics, (ctl_j, ctl_g) = run(spec)
    saved = (1.0 - ctl_j / base_j) if base_j > 0 else 0.0
    print(f"budget {budget_j:.1f} J/req: {served}/{args.requests} req at "
          f"{goodput:.1f} req/s | {ctl_j:.1f} J/req | "
          f"{ctl_g * 1e3:.2f} mgCO2/req ({saved:.0%} energy saved)")
    detail = metrics["budget_transitions_detail"]
    ladder = {key: count for key, count in sorted(detail.items())
              if not key.startswith("device:")}
    modes = {key: count for key, count in sorted(detail.items())
             if key.startswith("device:")}
    print(f"  ladder moves: {ladder or 'none'}")
    print(f"  power-mode moves: {modes or 'none'}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the HTTP front door (``repro.serving.http``) and serve.

    Tenants come from ``--tenants`` (each named suite becomes a tenant
    of the same name) or from a full :class:`~repro.specs.ServingSpec`
    JSON file via ``--spec``.  The builtin asyncio server needs nothing
    beyond the stdlib; ``--uvicorn`` mounts the same ASGI app in uvicorn
    when that optional extra is installed.  Stop with Ctrl-C — the
    gateway drains and shuts down cleanly.
    """
    import asyncio
    import json

    from repro.serving.http import create_app, run_uvicorn, serve_gateway
    from repro.specs import HttpSpec, ServingSpec, TenantSpec

    if args.spec:
        with open(args.spec) as handle:
            serving = ServingSpec.from_dict(json.load(handle))
    else:
        serving = ServingSpec(
            tenants=tuple(
                TenantSpec(name=name,
                           suite=SuiteSpec(name, n_queries=args.queries))
                for name in args.tenants.split(",")),
            max_batch_size=args.batch_size,
            plan_cache_size=args.plan_cache,
            timeout_ms=args.timeout_ms,
        )
    if args.carbon_budget is not None:
        from repro.specs import BudgetSpec

        serving = serving.replace(
            budget=BudgetSpec(energy_budget_j=args.carbon_budget))
    http = serving.http if serving.http is not None else HttpSpec()
    if args.host is not None:
        http = http.replace(host=args.host)
    if args.port is not None:
        http = http.replace(port=args.port)
    serving = serving.replace(http=http)
    gateway = open_session(serving).serve()
    if args.uvicorn:
        run_uvicorn(create_app(gateway, http=http), http)
        return 0

    async def serve() -> None:
        def ready(server) -> None:
            tenants = ", ".join(sorted(gateway.sessions.tenant_names))
            print(f"serving tenants [{tenants}] at {server.address} "
                  f"(Ctrl-C to stop)", flush=True)

        await serve_gateway(gateway, http=http, ready=ready)

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("shutdown complete")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Less-is-More reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="evaluate one batch")
    _add_common(run_parser)
    run_parser.add_argument("--scheme", default="lis-k3")
    run_parser.add_argument("--engine", default=None,
                            help="LLM engine name (registered via "
                                 "register_engine; default: the simulated "
                                 "engine)")
    run_parser.add_argument("--engine-url", default=None, metavar="URL",
                            help="base URL of an OpenAI-compatible server "
                                 "(e.g. http://127.0.0.1:8080/v1); implies "
                                 "--engine openai_http")
    run_parser.set_defaults(func=cmd_run)

    grid_parser = sub.add_parser("grid", help="sweep a grid on a worker pool")
    _add_common(grid_parser)
    grid_parser.add_argument("--schemes", default="default,gorilla,lis-k3",
                             help="comma-separated scheme names")
    grid_parser.add_argument("--models", default=None,
                             help="comma-separated model names "
                                  "(default: the --model value)")
    grid_parser.add_argument("--quants", default=None,
                             help="comma-separated quantizations "
                                  "(default: the --quant value)")
    grid_parser.add_argument("--backend", default="thread",
                             choices=GRID_BACKENDS.names(),
                             help="worker pool type (process scales the "
                                  "GIL-bound episode loop across cores)")
    grid_parser.add_argument("--workers", type=int, default=None,
                             help="pool size (default: one per CPU, capped "
                                  "at the cell count)")
    grid_parser.set_defaults(func=cmd_grid)

    compare_parser = sub.add_parser("compare", help="all schemes side by side")
    _add_common(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    levels_parser = sub.add_parser("levels", help="inspect Search Levels")
    _add_common(levels_parser)
    levels_parser.set_defaults(func=cmd_levels)

    catalog_parser = sub.add_parser(
        "catalog", help="inspect registered tool catalogs")
    catalog_sub = catalog_parser.add_subparsers(dest="catalog_command",
                                                required=True)

    catalog_list = catalog_sub.add_parser(
        "list", help="all registered catalogs with per-variant token totals")
    catalog_list.set_defaults(func=cmd_catalog_list)

    catalog_show = catalog_sub.add_parser(
        "show", help="one catalog's tools, grouped by category")
    catalog_show.add_argument("name", help="registered catalog name")
    catalog_show.add_argument("--variant", default="full",
                              choices=["full", "compressed", "minimal"],
                              help="description variant to present")
    catalog_show.set_defaults(func=cmd_catalog_show)

    catalog_diff = catalog_sub.add_parser(
        "diff", help="added/removed/changed tools between two catalogs "
                     "(exit 1 when they differ, like diff(1))")
    catalog_diff.add_argument("old", help="registered catalog name (before)")
    catalog_diff.add_argument("new", help="registered catalog name (after)")
    catalog_diff.add_argument("--variant", default="full",
                              choices=["full", "compressed", "minimal"],
                              help="variant for both sides")
    catalog_diff.add_argument("--against-variant", default=None,
                              choices=["full", "compressed", "minimal"],
                              help="variant for the 'after' side only "
                                   "(diff a catalog against its own "
                                   "compressed/minimal form)")
    catalog_diff.set_defaults(func=cmd_catalog_diff)

    profile_parser = sub.add_parser("profile", help="cost one LLM turn")
    profile_parser.add_argument("--tools", type=int, default=46)
    profile_parser.add_argument("--window", type=int, default=16384)
    profile_parser.add_argument("--quant", default="q4_K_M")
    profile_parser.add_argument("--params-b", type=float, default=8.0)
    profile_parser.add_argument("--output-tokens", type=int, default=130)
    profile_parser.add_argument("--power-mode", default="MAXN",
                                choices=["MAXN", "30W", "15W"])
    profile_parser.set_defaults(func=cmd_profile)

    metrics_parser = sub.add_parser(
        "metrics", help="serve a short load, print Prometheus exposition")
    metrics_parser.add_argument("--suite", default="edgehome")
    metrics_parser.add_argument("--requests", type=int, default=16)
    metrics_parser.add_argument("--concurrency", type=int, default=8)
    metrics_parser.add_argument("--batch-size", type=int, default=8)
    metrics_parser.add_argument("--sample-rate", type=float, default=1.0,
                                help="trace sample rate for the run")
    metrics_parser.set_defaults(func=cmd_metrics)

    chaos_parser = sub.add_parser(
        "chaos", help="serve a workload under seeded fault injection")
    chaos_parser.add_argument("--suite", default="edgehome")
    chaos_parser.add_argument("--seed", type=int, default=0,
                              help="FaultPlan seed (same seed, same faults)")
    chaos_parser.add_argument("--requests", type=int, default=32)
    chaos_parser.add_argument("--concurrency", type=int, default=8)
    chaos_parser.add_argument("--batch-size", type=int, default=8)
    chaos_parser.add_argument("--process", action="store_true",
                              help="use the supervised process pool backend")
    chaos_parser.add_argument("--workers", type=int, default=None)
    chaos_parser.add_argument("--timeout-ms", type=float, default=None,
                              help="end-to-end per-request deadline")
    chaos_parser.add_argument("--crash-rate", type=float, default=0.2,
                              help="worker SIGKILL probability per group "
                                   "(process backend only)")
    chaos_parser.add_argument("--slow-rate", type=float, default=0.0)
    chaos_parser.add_argument("--exception-rate", type=float, default=0.1)
    chaos_parser.add_argument("--trace-out", default=None, metavar="PATH",
                              help="write a JSONL trace artifact and verify "
                                   "injected faults appear as span events")
    chaos_parser.set_defaults(func=cmd_chaos)

    carbon_parser = sub.add_parser(
        "carbon", help="uncontrolled vs carbon/power-budgeted serving")
    carbon_parser.add_argument("--suite", default="edgehome")
    carbon_parser.add_argument("--requests", type=int, default=48)
    carbon_parser.add_argument("--concurrency", type=int, default=8)
    carbon_parser.add_argument("--batch-size", type=int, default=8)
    carbon_parser.add_argument("--window", type=int, default=8,
                               help="rolling budget window (requests)")
    carbon_parser.add_argument("--budget", type=float, default=None,
                               metavar="J_PER_REQ",
                               help="joules-per-request cap (default: "
                                    "--budget-fraction of uncontrolled)")
    carbon_parser.add_argument("--budget-fraction", type=float, default=0.6,
                               help="self-calibrated cap as a fraction of "
                                    "the uncontrolled mean")
    carbon_parser.add_argument("--signal", default="static",
                               help="registered carbon signal "
                                    "(static, sinusoid, trace, ...)")
    carbon_parser.add_argument("--trace-path", default=None, metavar="CSV",
                               help="grid-intensity CSV for --signal trace")
    carbon_parser.add_argument("--intensity", type=float, default=400.0,
                               help="grid intensity in gCO2/kWh (static "
                                    "signal / sinusoid mean)")
    carbon_parser.add_argument("--intensity-high", type=float, default=None,
                               help="step the board down power modes at or "
                                    "above this intensity")
    carbon_parser.set_defaults(func=cmd_carbon)

    serve_parser = sub.add_parser(
        "serve", help="boot the HTTP front door over tenant suites")
    serve_parser.add_argument("--tenants", default="edgehome",
                              help="comma-separated suite names; each "
                                   "becomes a tenant of the same name")
    serve_parser.add_argument("--spec", default=None, metavar="PATH",
                              help="ServingSpec JSON file (overrides "
                                   "--tenants and the batching flags)")
    serve_parser.add_argument("-n", "--queries", type=int, default=None,
                              help="queries per tenant suite")
    serve_parser.add_argument("--host", default=None,
                              help="bind host (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=None,
                              help="bind port (default 8080; 0 = ephemeral)")
    serve_parser.add_argument("--batch-size", type=int, default=32)
    serve_parser.add_argument("--plan-cache", type=int, default=0,
                              help="plan-result memoization entries")
    serve_parser.add_argument("--timeout-ms", type=float, default=None,
                              help="end-to-end per-request deadline")
    serve_parser.add_argument("--carbon-budget", type=float, default=None,
                              metavar="J_PER_REQ",
                              help="enable the carbon/power budget "
                                   "controller with this rolling "
                                   "joules-per-request cap")
    serve_parser.add_argument("--uvicorn", action="store_true",
                              help="serve through uvicorn (optional extra) "
                                   "instead of the builtin asyncio server")
    serve_parser.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

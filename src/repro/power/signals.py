"""Grid carbon-intensity signals for carbon-aware serving.

A carbon signal maps a point in time to the grid's carbon intensity in
gCO₂ per kWh.  Signals are *pure functions of time* — they hold no
clock of their own, so the same ``intensity(t_s)`` call always returns
the same value (the determinism contract).  Whoever consumes a signal
(:class:`~repro.power.meter.EnergyMeter`,
:class:`~repro.power.budget.BudgetController`) owns the injectable
clock that produces ``t_s``.

Three builtins ship behind the :data:`repro.registry.CARBON_SIGNALS`
registry:

``static``
    A constant intensity — the simplest budget scenario, and what a
    deployment without a grid feed would configure.
``sinusoid``
    A synthetic diurnal curve: mean ± amplitude over a configurable
    period, a stand-in for the day/night swing of a solar-heavy grid.
``trace``
    Replays a committed grid-intensity CSV
    (``benchmarks/data/grid_intensity_day.csv`` ships a real-shaped
    duck curve) cyclically with piecewise-linear interpolation.

Registered factories take the :class:`~repro.specs.BudgetSpec` (or any
object with the same attributes) and return a signal; third-party
signals register with :func:`repro.registry.register_carbon_signal`.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path

from repro.registry import register_carbon_signal

#: gCO₂/kWh default when no signal is configured — roughly a mixed
#: fossil/renewables grid annual average
DEFAULT_INTENSITY_G_PER_KWH = 400.0

#: expected header of a grid-intensity trace CSV
TRACE_HEADER = ("hour", "intensity_g_per_kwh")

#: seconds per replayed day of a trace signal
DAY_S = 86400.0


@dataclass(frozen=True)
class StaticSignal:
    """A constant grid intensity (gCO₂/kWh)."""

    intensity_g_per_kwh: float = DEFAULT_INTENSITY_G_PER_KWH

    def __post_init__(self):
        if self.intensity_g_per_kwh < 0.0:
            raise ValueError(
                f"intensity_g_per_kwh must be >= 0, "
                f"got {self.intensity_g_per_kwh}")

    def intensity(self, t_s: float) -> float:
        return self.intensity_g_per_kwh


@dataclass(frozen=True)
class SinusoidSignal:
    """A synthetic diurnal curve: ``mean + amplitude * sin(...)``.

    ``t_s = phase_s`` sits at the mean on the way up; the curve peaks a
    quarter period later.  Values clamp at zero (a grid cannot emit
    negative carbon).
    """

    mean_g_per_kwh: float = DEFAULT_INTENSITY_G_PER_KWH
    amplitude_g_per_kwh: float = 150.0
    period_s: float = DAY_S
    phase_s: float = 0.0

    def __post_init__(self):
        if self.mean_g_per_kwh < 0.0:
            raise ValueError(
                f"mean_g_per_kwh must be >= 0, got {self.mean_g_per_kwh}")
        if self.amplitude_g_per_kwh < 0.0:
            raise ValueError(
                f"amplitude_g_per_kwh must be >= 0, "
                f"got {self.amplitude_g_per_kwh}")
        if self.period_s <= 0.0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")

    def intensity(self, t_s: float) -> float:
        angle = 2.0 * math.pi * (t_s - self.phase_s) / self.period_s
        return max(0.0, self.mean_g_per_kwh
                   + self.amplitude_g_per_kwh * math.sin(angle))


class TraceSignal:
    """Cyclic replay of ``(t_s, intensity)`` breakpoints.

    Intensity between breakpoints is linearly interpolated; past the
    last breakpoint the curve wraps to the first one ``period_s``
    seconds after it started, so a 24-hour trace replays forever.
    """

    def __init__(self, points: list[tuple[float, float]],
                 period_s: float = DAY_S):
        if not points:
            raise ValueError("TraceSignal needs at least one (t, intensity) point")
        if period_s <= 0.0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        times = [float(t) for t, _ in points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("TraceSignal times must be strictly increasing")
        if times[0] < 0.0 or times[-1] >= period_s:
            raise ValueError(
                f"TraceSignal times must lie in [0, period_s), got "
                f"[{times[0]}, {times[-1]}] against period {period_s}")
        for t, value in points:
            if value < 0.0:
                raise ValueError(
                    f"intensity must be >= 0, got {value} at t={t}")
        self.points = [(float(t), float(v)) for t, v in points]
        self.period_s = float(period_s)

    def intensity(self, t_s: float) -> float:
        points = self.points
        if len(points) == 1:
            return points[0][1]
        t = t_s % self.period_s
        # find the segment [points[i], points[i+1]) containing t, with
        # the wrap segment [last, first + period) closing the cycle
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if t0 <= t < t1:
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        t0, v0 = points[-1]
        t1, v1 = points[0][0] + self.period_s, points[0][1]
        if t < t0:  # before the first breakpoint: still the wrap segment
            t += self.period_s
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)


def load_intensity_trace(path: str | Path) -> TraceSignal:
    """Load a grid-intensity CSV (``hour,intensity_g_per_kwh``) as a signal.

    The committed trace lives at ``benchmarks/data/grid_intensity_day.csv``.
    Hours may be fractional but must be strictly increasing within
    ``[0, 24)``; every malformed row fails with its line number and
    content so a broken feed is diagnosable from the error alone.
    """
    path = Path(path)
    if not path.exists():
        raise ValueError(f"grid-intensity trace not found: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty file; expected header "
                             f"{','.join(TRACE_HEADER)}") from None
        if tuple(column.strip() for column in header) != TRACE_HEADER:
            raise ValueError(
                f"{path}: bad header {','.join(header)!r}; expected "
                f"{','.join(TRACE_HEADER)}")
        points: list[tuple[float, float]] = []
        for line_no, row in enumerate(reader, start=2):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue  # trailing blank line
            if len(row) != 2:
                raise ValueError(
                    f"{path}:{line_no}: expected 2 columns "
                    f"(hour,intensity_g_per_kwh), got {len(row)}: {row!r}")
            try:
                hour, value = float(row[0]), float(row[1])
            except ValueError:
                raise ValueError(
                    f"{path}:{line_no}: non-numeric value in row {row!r}"
                ) from None
            if not 0.0 <= hour < 24.0:
                raise ValueError(
                    f"{path}:{line_no}: hour must be in [0, 24), got {hour}")
            if value < 0.0:
                raise ValueError(
                    f"{path}:{line_no}: intensity must be >= 0, got {value}")
            points.append((hour * 3600.0, value))
    if not points:
        raise ValueError(f"{path}: no data rows after the header")
    try:
        return TraceSignal(points, period_s=DAY_S)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None


def dump_intensity_trace(signal: TraceSignal, path: str | Path) -> None:
    """Write a :class:`TraceSignal` back to the CSV format the loader reads."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(TRACE_HEADER)
        for t_s, value in signal.points:
            writer.writerow([f"{t_s / 3600.0:g}", f"{value:g}"])


def build_signal(spec) -> object:
    """Construct the carbon signal named by ``spec.signal``.

    ``spec`` is a :class:`~repro.specs.BudgetSpec` (or anything with the
    same attributes); ``None`` yields the default static signal.
    """
    from repro.registry import CARBON_SIGNALS

    if spec is None:
        return StaticSignal()
    return CARBON_SIGNALS.get(spec.signal)(spec)


# ----------------------------------------------------------------------
# registered builtin factories (factory(spec) -> signal, like TRACE_SINKS)
# ----------------------------------------------------------------------
@register_carbon_signal("static")
def _static_signal(spec) -> StaticSignal:
    return StaticSignal(intensity_g_per_kwh=spec.intensity_g_per_kwh)


@register_carbon_signal("sinusoid")
def _sinusoid_signal(spec) -> SinusoidSignal:
    return SinusoidSignal(mean_g_per_kwh=spec.intensity_g_per_kwh,
                          amplitude_g_per_kwh=spec.intensity_amplitude,
                          period_s=spec.period_s,
                          phase_s=spec.phase_s)


@register_carbon_signal("trace")
def _trace_signal(spec) -> TraceSignal:
    if not spec.trace_path:
        raise ValueError("BudgetSpec(signal='trace') requires trace_path "
                         "to name the grid-intensity CSV")
    return load_intensity_trace(spec.trace_path)

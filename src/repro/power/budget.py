"""Carbon/power budget control: drive the degradation ladder from joules.

CarbonCall's (arXiv 2504.20348) other half: where
:class:`~repro.serving.degrade.DegradationController` steps tenants down
the serving ladder on *queue pressure*, the :class:`BudgetController`
steps them down on a *power/carbon budget* — a rolling
joules-per-request or gCO₂-per-request cap read from the
:class:`~repro.power.meter.EnergyMeter` — and additionally steps the
simulated board down nvpmodel power modes (MAXN → 30W → 15W) while the
grid's carbon intensity is high, climbing back with hysteresis once it
clears.

Both controllers write through the gateway's shared
:class:`~repro.serving.degrade.LadderArbiter` under distinct source
names, so they compose instead of fighting: the deeper desire wins, the
effective rung moves at most when a desire changes, and transition
counts cannot oscillate between two disagreeing controllers.

Like the pressure controller, the core is a synchronous :meth:`tick`
(pass ``now_s`` to drive the carbon signal without any clock);
:meth:`run` is the thin async loop the gateway starts when configured
with a :class:`~repro.specs.BudgetSpec`.

Budget windows are request-count based (the last ``window_requests``
attributed requests per tenant), not wall-time based, so tests drive
the whole control loop deterministically.  After any ladder move the
controller waits for ``settle_requests`` fresh records before acting on
that tenant again — the window must re-fill with evidence from the new
rung, which is what prevents a stale window from racing a tenant all
the way down the ladder.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

#: the nvpmodel ladder, fastest first (mirrors
#: :data:`repro.hardware.power_modes.POWER_MODES`)
MODE_LADDER = ("MAXN", "30W", "15W")


@dataclass(frozen=True)
class BudgetPolicy:
    """Thresholds and knobs of the carbon/power budget loop.

    Parameters
    ----------
    energy_budget_j:
        Rolling-mean joules per request a tenant may spend before being
        stepped down a rung; ``None`` disables the energy budget.
    carbon_budget_g:
        Rolling-mean gCO₂ per request cap; ``None`` disables it.  At
        least one of the two budgets or ``intensity_high`` must be set.
    window_requests:
        How many recent requests the rolling means cover.
    settle_requests:
        Fresh records required after a ladder move before the tenant is
        judged again (default: ``window_requests`` — a full new window).
    recovery_ticks:
        Consecutive under-budget ticks required before stepping a tenant
        back up (and low-intensity ticks before stepping the power mode
        back up).
    recovery_margin:
        Recovery additionally requires the rolling mean below
        ``budget * recovery_margin`` — the hysteresis band that keeps a
        tenant hovering at the cap from flapping.
    intensity_high / intensity_low:
        gCO₂/kWh thresholds for the power-mode ladder: at or above
        ``intensity_high`` each tick steps the simulated board down one
        nvpmodel mode; at or below ``intensity_low`` (default
        ``intensity_high * recovery_margin``) ticks count toward
        climbing back.  ``None`` disables mode stepping.
    min_power_mode:
        Deepest mode the controller may select (``"15W"`` allows the
        full MAXN → 30W → 15W descent; ``"MAXN"`` pins the board).
    interval_ms:
        Poll period of the async :meth:`BudgetController.run` loop.
    """

    energy_budget_j: float | None = None
    carbon_budget_g: float | None = None
    window_requests: int = 32
    settle_requests: int | None = None
    recovery_ticks: int = 3
    recovery_margin: float = 0.8
    intensity_high: float | None = None
    intensity_low: float | None = None
    min_power_mode: str = "15W"
    interval_ms: float = 100.0

    def __post_init__(self):
        if (self.energy_budget_j is None and self.carbon_budget_g is None
                and self.intensity_high is None):
            raise ValueError(
                "BudgetPolicy needs at least one control: energy_budget_j, "
                "carbon_budget_g or intensity_high")
        if self.energy_budget_j is not None and self.energy_budget_j <= 0.0:
            raise ValueError(
                f"energy_budget_j must be > 0 (or None), "
                f"got {self.energy_budget_j}")
        if self.carbon_budget_g is not None and self.carbon_budget_g <= 0.0:
            raise ValueError(
                f"carbon_budget_g must be > 0 (or None), "
                f"got {self.carbon_budget_g}")
        if self.window_requests < 1:
            raise ValueError(
                f"window_requests must be >= 1, got {self.window_requests}")
        if self.settle_requests is None:
            object.__setattr__(self, "settle_requests", self.window_requests)
        if self.settle_requests < 1:
            raise ValueError(
                f"settle_requests must be >= 1, got {self.settle_requests}")
        if self.recovery_ticks < 1:
            raise ValueError(
                f"recovery_ticks must be >= 1, got {self.recovery_ticks}")
        if not 0.0 < self.recovery_margin <= 1.0:
            raise ValueError(
                f"recovery_margin must be in (0, 1], "
                f"got {self.recovery_margin}")
        if self.intensity_high is not None:
            if self.intensity_high <= 0.0:
                raise ValueError(
                    f"intensity_high must be > 0 (or None), "
                    f"got {self.intensity_high}")
            if self.intensity_low is None:
                object.__setattr__(self, "intensity_low",
                                   self.intensity_high * self.recovery_margin)
            if not 0.0 <= self.intensity_low < self.intensity_high:
                raise ValueError(
                    f"intensity_low must be in [0, intensity_high), "
                    f"got {self.intensity_low}")
        elif self.intensity_low is not None:
            raise ValueError("intensity_low requires intensity_high")
        if self.min_power_mode not in MODE_LADDER:
            raise ValueError(
                f"min_power_mode must be one of {MODE_LADDER}, "
                f"got {self.min_power_mode!r}")
        if self.interval_ms <= 0.0:
            raise ValueError(
                f"interval_ms must be > 0, got {self.interval_ms}")

    @property
    def interval_s(self) -> float:
        return self.interval_ms / 1e3

    @classmethod
    def from_spec(cls, spec) -> "BudgetPolicy":
        """The runtime policy equivalent of a :class:`~repro.specs.BudgetSpec`."""
        return cls(
            energy_budget_j=spec.energy_budget_j,
            carbon_budget_g=spec.carbon_budget_g,
            window_requests=spec.window_requests,
            settle_requests=spec.settle_requests,
            recovery_ticks=spec.recovery_ticks,
            recovery_margin=spec.recovery_margin,
            intensity_high=spec.intensity_high,
            intensity_low=spec.intensity_low,
            min_power_mode=spec.min_power_mode,
            interval_ms=spec.interval_ms,
        )


class BudgetController:
    """Steps tenants down the ladder and the board down power modes.

    One controller per gateway, sharing the gateway's
    :class:`~repro.serving.degrade.LadderArbiter` (source ``"budget"``)
    with the queue-pressure controller and its
    :class:`~repro.power.meter.EnergyMeter` with the accounting layer.
    Every action lands in telemetry as a ``budget_transitions`` entry
    (``<tenant>:<direction>:<rung>`` for ladder moves,
    ``device:<direction>:<mode>`` for power-mode moves).
    """

    SOURCE = "budget"

    def __init__(self, gateway, policy: BudgetPolicy, meter=None,
                 signal=None, clock=None):
        self.gateway = gateway
        self.policy = policy
        self.meter = meter if meter is not None else gateway.power_meter
        self.signal = signal if signal is not None else self.meter.signal
        self._clock = clock if clock is not None else self.meter.now
        self._mode_index = 0
        self._mode_floor = MODE_LADDER.index(policy.min_power_mode)
        self._mode_clear_streak = 0
        self._tenant_clear_streak: dict[str, int] = {}
        self._shed_streak: dict[str, int] = {}
        #: per-tenant total_requests watermark at the last ladder move
        self._settle_marks: dict[str, int] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def power_mode(self) -> str:
        return MODE_LADDER[self._mode_index]

    def status(self) -> dict:
        """Controller state for operators: mode plus per-tenant desires."""
        arbiter = self.gateway.ladder
        tenants = {}
        for tenant in self.gateway.sessions.tenant_names:
            ladder = arbiter.ladder(tenant)
            desired = arbiter.desired_index(self.SOURCE, tenant)
            tenants[tenant] = {
                "desired_rung": ladder[min(desired, len(ladder) - 1)],
                "effective_rung": arbiter.rung(tenant),
                "rung_source": arbiter.rung_source(tenant),
            }
        return {"power_mode": self.power_mode, "tenants": tenants}

    # ------------------------------------------------------------------
    # the feedback loop
    # ------------------------------------------------------------------
    def tick(self, now_s: float | None = None) -> None:
        """One control step; pass ``now_s`` to drive it without a clock."""
        t_s = self._clock() if now_s is None else now_s
        intensity = self.signal.intensity(t_s)
        self._tick_power_mode(intensity)
        if (self.policy.energy_budget_j is not None
                or self.policy.carbon_budget_g is not None):
            for tenant in self.gateway.sessions.tenant_names:
                self._tick_tenant(tenant)

    async def run(self) -> None:
        """Poll-and-tick loop; cancelled by ``Gateway.stop``.

        Ticks run on a worker thread for the same reason the pressure
        controller's do: a variant downshift re-indexes Search Levels
        and must not stall the event loop's admissions.
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.policy.interval_s)
            await loop.run_in_executor(None, self.tick)

    # ------------------------------------------------------------------
    # power-mode ladder
    # ------------------------------------------------------------------
    def _tick_power_mode(self, intensity: float) -> None:
        policy = self.policy
        if policy.intensity_high is None:
            return
        if intensity >= policy.intensity_high:
            self._mode_clear_streak = 0
            if self._mode_index < self._mode_floor:
                self._set_mode(self._mode_index + 1, "down")
        elif intensity <= policy.intensity_low:
            self._mode_clear_streak += 1
            if self._mode_clear_streak >= policy.recovery_ticks:
                self._mode_clear_streak = 0
                if self._mode_index > 0:
                    self._set_mode(self._mode_index - 1, "up")
        else:
            # in-between band: hold the mode, restart the recovery streak
            self._mode_clear_streak = 0

    def _set_mode(self, index: int, direction: str) -> None:
        self._mode_index = index
        mode = MODE_LADDER[index]
        self.meter.set_power_mode(mode)
        self.gateway.telemetry.record_budget_transition(
            "device", mode, direction)
        tracer = getattr(self.gateway, "tracer", None)
        if tracer is not None:
            tracer.marker("budget", {"scope": "device", "power_mode": mode,
                                     "direction": direction})

    # ------------------------------------------------------------------
    # per-tenant budget ladder
    # ------------------------------------------------------------------
    def _tick_tenant(self, tenant: str) -> None:
        policy = self.policy
        arbiter = self.gateway.ladder
        ladder = arbiter.ladder(tenant)
        desired = arbiter.desired_index(self.SOURCE, tenant)
        if ladder[min(desired, len(ladder) - 1)] == "shed":
            # a shed tenant generates no fresh evidence: probation —
            # after recovery_ticks quiet ticks, try one rung up
            streak = self._shed_streak.get(tenant, 0) + 1
            if streak >= policy.recovery_ticks:
                self._shed_streak[tenant] = 0
                self._step(tenant, -1)
            else:
                self._shed_streak[tenant] = streak
            return
        self._shed_streak[tenant] = 0
        stats = self.meter.window_stats(tenant)
        if stats.requests == 0:
            return
        fresh = stats.total_requests - self._settle_marks.get(tenant, 0)
        if fresh < min(policy.settle_requests, policy.window_requests):
            return  # the window hasn't refilled since the last move
        over = False
        under = True
        if policy.energy_budget_j is not None:
            over = over or stats.mean_energy_j > policy.energy_budget_j
            under = under and (stats.mean_energy_j
                               <= policy.energy_budget_j
                               * policy.recovery_margin)
        if policy.carbon_budget_g is not None:
            over = over or stats.mean_carbon_g > policy.carbon_budget_g
            under = under and (stats.mean_carbon_g
                               <= policy.carbon_budget_g
                               * policy.recovery_margin)
        if over:
            self._tenant_clear_streak[tenant] = 0
            self._step(tenant, +1)
        elif under and desired > 0:
            streak = self._tenant_clear_streak.get(tenant, 0) + 1
            if streak >= policy.recovery_ticks:
                self._tenant_clear_streak[tenant] = 0
                self._step(tenant, -1)
            else:
                self._tenant_clear_streak[tenant] = streak
        else:
            # within the hysteresis band: hold, restart the streak
            self._tenant_clear_streak[tenant] = 0

    def _step(self, tenant: str, direction: int) -> None:
        arbiter = self.gateway.ladder
        new_rung = arbiter.step(self.SOURCE, tenant, direction)
        if new_rung is None:
            return  # clamped at a ladder edge, nothing moved
        self._settle_marks[tenant] = (
            self.meter.window_stats(tenant).total_requests)
        direction_name = "down" if direction > 0 else "up"
        self.gateway.telemetry.record_budget_transition(
            tenant, new_rung, direction_name)
        tracer = getattr(self.gateway, "tracer", None)
        if tracer is not None:
            tracer.marker("budget", {"scope": tenant, "rung": new_rung,
                                     "direction": direction_name})

"""Carbon/power-budget-aware serving (the CarbonCall closed loop).

Joins three layers that already exist in this repo but did not talk:
the per-request latency/energy model (:mod:`repro.hardware.inference`),
the nvpmodel power modes (:mod:`repro.hardware.power_modes`) and the
serving degradation ladder (:mod:`repro.serving.degrade`).

* :mod:`repro.power.signals` — grid carbon-intensity signals (gCO₂/kWh
  as a pure function of time) behind the
  :data:`repro.registry.CARBON_SIGNALS` registry.
* :mod:`repro.power.meter` — the :class:`EnergyMeter`, attributing
  estimated joules and gCO₂ per request/tenant in the accounting layer
  (episode bits never change).
* :mod:`repro.power.budget` — the :class:`BudgetController`, stepping
  tenants down the serving ladder on a rolling joule/gCO₂ budget and
  the simulated board down power modes while grid intensity is high.
"""

from repro.power.budget import MODE_LADDER, BudgetController, BudgetPolicy
from repro.power.meter import EnergyMeter, EnergyRecord, WindowStats
from repro.power.signals import (
    DEFAULT_INTENSITY_G_PER_KWH,
    SinusoidSignal,
    StaticSignal,
    TraceSignal,
    build_signal,
    dump_intensity_trace,
    load_intensity_trace,
)

__all__ = [
    "BudgetController",
    "BudgetPolicy",
    "DEFAULT_INTENSITY_G_PER_KWH",
    "EnergyMeter",
    "EnergyRecord",
    "MODE_LADDER",
    "SinusoidSignal",
    "StaticSignal",
    "TraceSignal",
    "WindowStats",
    "build_signal",
    "dump_intensity_trace",
    "load_intensity_trace",
]

"""Per-request energy and carbon attribution for the serving gateway.

The gateway's episodes already carry token counts; the hardware layer
already knows how to cost tokens on the edge board
(:func:`repro.hardware.inference.simulate_inference`) under any
nvpmodel power mode (:mod:`repro.hardware.power_modes`).  The
:class:`EnergyMeter` joins the two in the *accounting layer*: after an
episode completes, its token counts are re-costed against the device
profile in the currently active power mode, and the estimated joules
are converted to gCO₂ through the configured carbon signal.

Crucially the meter never touches the live agents' device profile —
stepping the simulated board down a power mode changes only how
completed work is costed, so served episodes stay bitwise identical to
the same rung's uncontrolled configuration (the determinism contract).

Attribution is first-order: each episode is costed as one aggregate
LLM call (total prompt tokens in, total completion tokens out) rather
than replaying the per-call breakdown, mirroring how an external power
rail would integrate over the whole request.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.hardware.device import JETSON_AGX_ORIN, DeviceProfile
from repro.hardware.inference import InferenceRequest, simulate_inference
from repro.hardware.power_modes import POWER_MODES, apply_power_mode

#: joules per kWh (converts attributed energy to grid-intensity units)
J_PER_KWH = 3.6e6

#: fallback model shape when an episode's model/quant is not in the
#: registries (custom engines serving arbitrary checkpoints): the
#: reference 8B / q4_K_M cell the device profile is calibrated on
_FALLBACK_PARAMS_B = 8.0
_FALLBACK_BITS = 4.85

#: context window assumed when a plan does not carry one
DEFAULT_CONTEXT_WINDOW = 16384


def elapsed_clock(start: float | None = None):
    """The default meter clock: seconds elapsed since construction.

    Monotonic wall time is fine here — carbon attribution observes the
    live serving loop and never feeds back into episode bits; tests
    inject a fake clock (or pass ``now_s`` explicitly) instead.
    """
    if start is None:
        start = time.monotonic()
    return lambda: time.monotonic() - start


@dataclass(frozen=True)
class EnergyRecord:
    """One request's attributed energy/carbon."""

    tenant: str
    qid: str
    energy_j: float
    carbon_g: float
    power_mode: str
    intensity_g_per_kwh: float


@dataclass(frozen=True)
class WindowStats:
    """Rolling per-tenant attribution over the last ``window`` requests."""

    requests: int            #: records currently in the window
    total_requests: int      #: records ever attributed to the tenant
    energy_j: float          #: joules spent inside the window
    carbon_g: float          #: gCO₂ emitted inside the window
    mean_energy_j: float     #: joules per request inside the window
    mean_carbon_g: float     #: gCO₂ per request inside the window


_EMPTY_STATS = WindowStats(0, 0, 0.0, 0.0, 0.0, 0.0)


class EnergyMeter:
    """Attributes estimated joules and gCO₂ per request and tenant.

    One meter per gateway.  ``record`` runs on the gateway's batch
    worker; the controller thread reads ``window_stats`` and swaps the
    active ``power_mode`` — a lock keeps the window deques coherent
    across the two.
    """

    def __init__(self, signal=None, device: DeviceProfile = JETSON_AGX_ORIN,
                 clock=None, window_requests: int = 32):
        from repro.power.signals import StaticSignal

        if window_requests < 1:
            raise ValueError(
                f"window_requests must be >= 1, got {window_requests}")
        self.signal = signal if signal is not None else StaticSignal()
        self.base_device = device
        self._clock = clock if clock is not None else elapsed_clock()
        self.window_requests = window_requests
        self._lock = threading.Lock()
        self._mode = "MAXN"
        self._mode_device = device  # MAXN == the base profile
        self._totals_energy: dict[str, float] = {}
        self._totals_carbon: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._windows: dict[str, deque[EnergyRecord]] = {}

    # ------------------------------------------------------------------
    # clock / power mode
    # ------------------------------------------------------------------
    def now(self) -> float:
        """The meter's notion of time (drives the carbon signal)."""
        return self._clock()

    @property
    def power_mode(self) -> str:
        """The active nvpmodel mode new work is costed under."""
        return self._mode

    def set_power_mode(self, mode: str) -> None:
        """Switch the accounting device profile to an nvpmodel mode."""
        mode = mode.upper()
        if mode not in POWER_MODES:
            raise ValueError(f"unknown power mode {mode!r}; choose from "
                             f"{sorted(POWER_MODES)}")
        with self._lock:
            self._mode = mode
            self._mode_device = (self.base_device if mode == "MAXN"
                                 else apply_power_mode(self.base_device, mode))

    # ------------------------------------------------------------------
    # attribution
    # ------------------------------------------------------------------
    def record(self, tenant: str, episode, *, model: str, quant: str,
               context_window: int | None = None,
               now_s: float | None = None) -> EnergyRecord:
        """Attribute one completed episode; returns the costed record."""
        params_b, bits = self._model_shape(model, quant)
        prompt = int(getattr(episode, "prompt_tokens", 0) or 0)
        completion = int(getattr(episode, "completion_tokens", 0) or 0)
        qid = str(getattr(episode, "qid", ""))
        with self._lock:
            mode, device = self._mode, self._mode_device
        if prompt or completion:
            trace = simulate_inference(InferenceRequest(
                params_b=params_b,
                bits_per_weight=bits,
                prompt_tokens=prompt,
                generated_tokens=completion,
                context_window=context_window or DEFAULT_CONTEXT_WINDOW,
                jitter_stream=f"energy:{tenant}:{qid}",
            ), device=device)
            energy_j = trace.energy_j
        else:
            energy_j = 0.0
        t_s = self._clock() if now_s is None else now_s
        intensity = self.signal.intensity(t_s)
        carbon_g = energy_j / J_PER_KWH * intensity
        record = EnergyRecord(tenant=tenant, qid=qid, energy_j=energy_j,
                              carbon_g=carbon_g, power_mode=mode,
                              intensity_g_per_kwh=intensity)
        with self._lock:
            self._totals_energy[tenant] = (
                self._totals_energy.get(tenant, 0.0) + energy_j)
            self._totals_carbon[tenant] = (
                self._totals_carbon.get(tenant, 0.0) + carbon_g)
            self._counts[tenant] = self._counts.get(tenant, 0) + 1
            window = self._windows.get(tenant)
            if window is None:
                window = deque(maxlen=self.window_requests)
                self._windows[tenant] = window
            window.append(record)
        return record

    def _model_shape(self, model: str, quant: str) -> tuple[float, float]:
        from repro.llm import get_model_spec, get_quant_spec

        try:
            params_b = get_model_spec(model).params_b
        except ValueError:
            params_b = _FALLBACK_PARAMS_B
        try:
            bits = get_quant_spec(quant).bits_per_weight
        except ValueError:
            bits = _FALLBACK_BITS
        return params_b, bits

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def window_stats(self, tenant: str) -> WindowStats:
        """Rolling stats over the tenant's last ``window_requests`` records."""
        with self._lock:
            window = self._windows.get(tenant)
            if not window:
                total = self._counts.get(tenant, 0)
                return (_EMPTY_STATS if not total
                        else WindowStats(0, total, 0.0, 0.0, 0.0, 0.0))
            n = len(window)
            energy = sum(record.energy_j for record in window)
            carbon = sum(record.carbon_g for record in window)
            return WindowStats(
                requests=n,
                total_requests=self._counts.get(tenant, 0),
                energy_j=energy,
                carbon_g=carbon,
                mean_energy_j=energy / n,
                mean_carbon_g=carbon / n,
            )

    def snapshot(self) -> dict:
        """Cumulative attribution plus the active power mode."""
        with self._lock:
            return {
                "power_mode": self._mode,
                "energy_j": sum(self._totals_energy.values()),
                "carbon_g": sum(self._totals_carbon.values()),
                "energy_j_by_tenant": dict(self._totals_energy),
                "carbon_g_by_tenant": dict(self._totals_carbon),
                "requests_by_tenant": dict(self._counts),
            }

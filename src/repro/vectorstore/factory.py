"""FAISS-style string factory and JSON round-trip for indexes."""

from __future__ import annotations

import json
import re

import numpy as np

from repro.vectorstore.base import VectorIndex
from repro.vectorstore.flat import FlatIndex
from repro.vectorstore.ivf import IVFIndex
from repro.vectorstore.pq import PQIndex

_IVF_RE = re.compile(r"^IVF(\d+)$", re.IGNORECASE)
_PQ_RE = re.compile(r"^PQ(\d+)$", re.IGNORECASE)


def index_factory(dim: int, description: str = "Flat", metric: str = "cosine") -> VectorIndex:
    """Build an index from a FAISS-like description string.

    Supported descriptions: ``"Flat"``, ``"IVF<n>"`` (e.g. ``"IVF16"``)
    and ``"PQ<m>"`` (e.g. ``"PQ8"``; PQ always uses the L2 metric).
    """
    description = description.strip()
    if description.lower() == "flat":
        return FlatIndex(dim=dim, metric=metric)
    ivf_match = _IVF_RE.match(description)
    if ivf_match:
        return IVFIndex(dim=dim, metric=metric, n_lists=int(ivf_match.group(1)))
    pq_match = _PQ_RE.match(description)
    if pq_match:
        return PQIndex(dim=dim, m=int(pq_match.group(1)))
    raise ValueError(f"unsupported index description {description!r}")


def dump_index(index: VectorIndex) -> str:
    """Serialize a flat/IVF index (vectors + ids + config) to JSON."""
    payload = {
        "kind": type(index).__name__,
        "dim": index.dim,
        "metric": index.metric.name,
        "ids": index._ids.tolist(),
        "vectors": index._vectors.tolist(),
    }
    if isinstance(index, IVFIndex):
        payload["n_lists"] = index.n_lists
        payload["nprobe"] = index.nprobe
    return json.dumps(payload)


def load_index(data: str) -> VectorIndex:
    """Rebuild an index serialized with :func:`dump_index`."""
    payload = json.loads(data)
    kind = payload["kind"]
    if kind == "FlatIndex":
        index: VectorIndex = FlatIndex(dim=payload["dim"], metric=payload["metric"])
    elif kind == "IVFIndex":
        index = IVFIndex(
            dim=payload["dim"],
            metric=payload["metric"],
            n_lists=payload["n_lists"],
            nprobe=payload["nprobe"],
        )
    else:
        raise ValueError(f"unknown index kind {kind!r}")
    vectors = np.asarray(payload["vectors"], dtype=float)
    if vectors.size:
        index.add(vectors, ids=payload["ids"])
    return index

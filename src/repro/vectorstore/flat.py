"""Exact (brute-force) k-NN index — the FAISS ``IndexFlat*`` equivalent."""

from __future__ import annotations

import numpy as np

from repro.vectorstore.base import SearchResult, VectorIndex


class FlatIndex(VectorIndex):
    """Exact nearest-neighbour search over all stored vectors.

    This is the index used by the Less-is-More Tool Controller: tool
    pools are tiny (tens of tools), so exact search is both the fastest
    and the most faithful reproduction of the paper's FAISS usage.

    Search is fully batched: one metric evaluation produces the whole
    ``(q, n)`` score matrix and one vectorized selection pass ranks every
    query — no per-query Python loop, no per-call ``np.arange``.
    """

    def _search_impl(self, queries: np.ndarray, k: int) -> list[SearchResult]:
        score_matrix = self.metric.score(queries, self._vectors)
        return self._rank_batch(score_matrix, self._rows, k)

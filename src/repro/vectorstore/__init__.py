"""Vector-index substrate (FAISS substitute).

The Tool Controller in the paper runs FAISS k-NN searches against the
Search Level latent spaces.  This package provides the same capability in
pure numpy:

* :class:`FlatIndex` — exact search, identical semantics to
  ``faiss.IndexFlatIP`` / ``IndexFlatL2``;
* :class:`IVFIndex` — an inverted-file index with a k-means coarse
  quantizer and an ``nprobe`` knob, mirroring ``faiss.IndexIVFFlat`` (used
  by the ablation studies, not the main pipeline);
* :func:`index_factory` — small FAISS-style string factory.

All indexes share the :class:`VectorIndex` interface: ``add`` vectors with
integer ids, ``search`` returns ``(scores, ids)`` sorted best-first.
"""

from repro.vectorstore.base import SearchResult, VectorIndex
from repro.vectorstore.factory import index_factory
from repro.vectorstore.flat import FlatIndex
from repro.vectorstore.ivf import IVFIndex
from repro.vectorstore.metrics import METRICS, Metric
from repro.vectorstore.pq import PQIndex

__all__ = [
    "METRICS",
    "FlatIndex",
    "IVFIndex",
    "Metric",
    "PQIndex",
    "SearchResult",
    "VectorIndex",
    "index_factory",
]

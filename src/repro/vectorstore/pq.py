"""Product-quantization index (``faiss.IndexPQ`` equivalent).

On a memory-constrained edge device even the vector store competes with
the model weights for DRAM.  PQ compresses each vector into ``m`` one-
byte codes (one per sub-space) — a 768-d float64 vector (6 KB) becomes
``m`` bytes — at a small recall cost.  Used by the embedding-memory
ablation; the main pipeline keeps exact Flat search (tool pools are
tiny).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng
from repro.vectorstore.base import SearchResult, VectorIndex
from repro.vectorstore.ivf import kmeans
from repro.vectorstore.metrics import batch_invariant_matmul


class PQIndex(VectorIndex):
    """Asymmetric-distance product quantizer.

    Parameters
    ----------
    m:
        Number of sub-spaces (must divide ``dim``).
    n_centroids:
        Codebook size per sub-space (<= 256 so codes fit one byte).
    """

    def __init__(self, dim: int, metric="l2", m: int = 8, n_centroids: int = 256):
        if metric not in ("l2",):
            raise ValueError("PQIndex supports the 'l2' metric only")
        super().__init__(dim=dim, metric=metric)
        if m <= 0 or dim % m != 0:
            raise ValueError(f"m must divide dim ({dim}), got {m}")
        if not 2 <= n_centroids <= 256:
            raise ValueError(f"n_centroids must be in [2, 256], got {n_centroids}")
        self.m = m
        self.n_centroids = n_centroids
        self.sub_dim = dim // m
        self._codebooks: np.ndarray | None = None  # (m, n_centroids, sub_dim)
        self._codes: np.ndarray | None = None      # (n, m) uint8
        self._code_columns: np.ndarray | None = None  # (1, m, n) intp

    # ------------------------------------------------------------------
    # training / encoding
    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        return self._codebooks is not None

    def train(self, vectors: np.ndarray | None = None) -> None:
        """Fit one k-means codebook per sub-space."""
        data = self._vectors if vectors is None else np.atleast_2d(np.asarray(vectors, float))
        if data.shape[0] == 0:
            raise ValueError("cannot train PQ index without vectors")
        n_centroids = min(self.n_centroids, data.shape[0])
        books = []
        for sub in range(self.m):
            block = data[:, sub * self.sub_dim:(sub + 1) * self.sub_dim]
            centroids, _ = kmeans(block, n_centroids,
                                  seed_stream=f"pq-train-{sub}")
            books.append(centroids)
        self._codebooks = np.stack(books)
        self._encode_all()

    def _encode_all(self) -> None:
        assert self._codebooks is not None
        n = len(self)
        codes = np.zeros((n, self.m), dtype=np.uint8)
        for sub in range(self.m):
            block = self._vectors[:, sub * self.sub_dim:(sub + 1) * self.sub_dim]
            dists = self._block_dists(block, self._codebooks[sub])
            codes[:, sub] = np.argmin(dists, axis=1)
        self._codes = codes
        # (1, m, n) gather indices reused by every batched search
        self._code_columns = codes.T.astype(np.intp)[None, :, :]

    @staticmethod
    def _block_dists(block: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        # the fixed-shape matmul keeps per-query LUTs (and therefore PQ
        # scores) bitwise independent of the query batch composition
        b_sq = np.sum(block**2, axis=1, keepdims=True)
        c_sq = np.sum(centroids**2, axis=1)
        cross = batch_invariant_matmul(block, centroids.T)
        return b_sq - 2.0 * cross + c_sq[None, :]

    def _on_add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        if self.is_trained:
            self._encode_all()

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _search_impl(self, queries: np.ndarray, k: int) -> list[SearchResult]:
        if not self.is_trained:
            self.train()
        assert self._codebooks is not None and self._codes is not None
        # asymmetric distance: queries stay exact, database is coded.
        # One LUT per sub-space covers the whole query batch, and one
        # gather+sum scores every (query, vector) pair — the only Python
        # loop is over the m sub-spaces, never over queries.
        sub_queries = queries.reshape(queries.shape[0], self.m, self.sub_dim)
        luts = np.stack([
            self._block_dists(sub_queries[:, sub, :], self._codebooks[sub])
            for sub in range(self.m)
        ], axis=1)  # (q, m, n_centroids)
        dists = np.take_along_axis(luts, self._code_columns, axis=2).sum(axis=1)
        return self._rank_batch(dists, self._rows, k)

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def code_bytes(self) -> int:
        """Resident bytes of the compressed database (codes + codebooks)."""
        codebook_bytes = 0 if self._codebooks is None else self._codebooks.nbytes
        code_bytes = 0 if self._codes is None else self._codes.nbytes
        return codebook_bytes + code_bytes

    def raw_bytes(self) -> int:
        """Bytes the uncompressed float64 vectors would occupy."""
        return self._vectors.nbytes

    def compression_ratio(self) -> float:
        """raw / compressed size including codebooks.

        On small databases the fixed codebooks dominate; see
        :meth:`marginal_compression_ratio` for the per-vector ratio that
        governs large stores.
        """
        compressed = self.code_bytes()
        if compressed == 0:
            return 1.0
        return self.raw_bytes() / compressed

    def marginal_compression_ratio(self) -> float:
        """Per-vector raw/code byte ratio (codebooks amortised away)."""
        if self._codes is None or self._codes.size == 0:
            return 1.0
        return self.raw_bytes() / self._codes.nbytes

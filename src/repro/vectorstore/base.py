"""Common interface for vector indexes."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.vectorstore.metrics import Metric, get_metric


@dataclass
class SearchResult:
    """Top-k result for one query: parallel score/id arrays, best first."""

    scores: np.ndarray
    ids: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)

    def top(self) -> tuple[float, int]:
        """Return the single best ``(score, id)`` pair."""
        if len(self.ids) == 0:
            raise ValueError("empty search result")
        return float(self.scores[0]), int(self.ids[0])

    def mean_score(self) -> float:
        """Average score of the retrieved neighbours (0.0 when empty).

        This is the quantity the paper's Tool Controller compares across
        Search Levels ("average top-k score", Section III-C).
        """
        if len(self.scores) == 0:
            return 0.0
        return float(np.mean(self.scores))


@dataclass
class VectorIndex:
    """Base class: id-addressed vector storage with exactish k-NN search."""

    dim: int
    metric: Metric = field(default_factory=lambda: get_metric("cosine"))

    def __post_init__(self):
        if self.dim <= 0:
            raise ValueError(f"dim must be positive, got {self.dim}")
        self.metric = get_metric(self.metric)
        self._vectors = np.zeros((0, self.dim))
        self._ids = np.zeros(0, dtype=np.int64)
        # hoisted 0..n-1 row ids, maintained on add (not per search call)
        self._rows = np.zeros(0, dtype=np.intp)

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._vectors.shape[0])

    @property
    def ids(self) -> np.ndarray:
        """Stored ids, in insertion order."""
        return self._ids.copy()

    def add(self, vectors: np.ndarray, ids: list[int] | np.ndarray | None = None) -> None:
        """Append ``vectors`` with the given integer ids (default: 0..n-1 continuation)."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        if vectors.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vectors.shape[1]}")
        if ids is None:
            start = len(self)
            ids = np.arange(start, start + vectors.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape[0] != vectors.shape[0]:
                raise ValueError("ids and vectors length mismatch")
            duplicate = np.intersect1d(ids, self._ids)
            if duplicate.size or len(set(ids.tolist())) != ids.shape[0]:
                raise ValueError("duplicate ids are not allowed")
        self._vectors = np.vstack([self._vectors, vectors])
        self._ids = np.concatenate([self._ids, ids])
        self._rows = np.arange(self._vectors.shape[0], dtype=np.intp)
        self._on_add(vectors, ids)

    def reconstruct(self, vector_id: int) -> np.ndarray:
        """Return the stored vector for ``vector_id``."""
        matches = np.nonzero(self._ids == vector_id)[0]
        if matches.size == 0:
            raise KeyError(f"id {vector_id} not in index")
        return self._vectors[matches[0]].copy()

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(self, queries: np.ndarray, k: int) -> list[SearchResult]:
        """Return the top-``k`` neighbours for each query row."""
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        if queries.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {queries.shape[1]}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if len(self) == 0:
            empty = SearchResult(np.zeros(0), np.zeros(0, dtype=np.int64))
            return [empty for _ in range(queries.shape[0])]
        return self._search_impl(queries, min(k, len(self)))

    def search_one(self, query: np.ndarray, k: int) -> SearchResult:
        """Convenience: top-``k`` neighbours of a single vector."""
        return self.search(np.atleast_2d(query), k)[0]

    def search_arrays(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Batched top-k as ``(scores, ids)`` matrices of shape ``(q, k')``.

        ``k'`` is ``k`` clamped to the index size.  Requires every query
        to retrieve the same number of neighbours (always true for exact
        indexes; an IVF probe may narrow some queries' candidate sets).
        """
        results = self.search(queries, k)
        lengths = [len(result) for result in results]
        if len(set(lengths)) > 1:
            raise ValueError(
                f"search_arrays(k={k}) requires uniform result lengths over "
                f"{len(self)} stored vectors, but the {len(results)} queries "
                f"retrieved {lengths} neighbours each; use search() for "
                "ragged results (an IVF probe over sparse lists can narrow "
                "some queries' candidate sets)")
        return (np.stack([result.scores for result in results]),
                np.stack([result.ids for result in results]))

    # hooks -------------------------------------------------------------
    def _on_add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        """Subclass hook invoked after vectors are appended."""

    def _search_impl(self, queries: np.ndarray, k: int) -> list[SearchResult]:
        raise NotImplementedError

    # shared helpers -----------------------------------------------------
    def _rank(self, scores: np.ndarray, candidate_rows: np.ndarray, k: int) -> SearchResult:
        """Order candidate rows by score for one query."""
        return self._rank_batch(scores[None, :], candidate_rows, k)[0]

    def _rank_batch(self, score_matrix: np.ndarray, candidate_rows: np.ndarray,
                    k: int) -> list[SearchResult]:
        """Top-``k`` of every score row in one vectorized selection pass.

        ``score_matrix`` is ``(q, c)`` over the shared ``candidate_rows``.
        When ``k`` is a strict subset, an ``argpartition`` pass selects
        the top block before only that block is sorted — O(c + k log k)
        per query instead of O(c log c).
        """
        score_matrix = np.atleast_2d(score_matrix)
        # argsort/argpartition pick minima; negate similarities so "best"
        # is always the smallest key
        keys = -score_matrix if self.metric.higher_is_better else score_matrix
        n_candidates = score_matrix.shape[1]
        if k < n_candidates:
            block = np.argpartition(keys, k - 1, axis=1)[:, :k]
            block_keys = np.take_along_axis(keys, block, axis=1)
            order = np.argsort(block_keys, axis=1, kind="stable")
            top = np.take_along_axis(block, order, axis=1)
        else:
            top = np.argsort(keys, axis=1, kind="stable")
        top_scores = np.take_along_axis(score_matrix, top, axis=1)
        top_ids = self._ids[candidate_rows[top]]
        return [SearchResult(scores=top_scores[qi], ids=top_ids[qi])
                for qi in range(score_matrix.shape[0])]

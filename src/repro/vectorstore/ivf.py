"""Inverted-file index with a k-means coarse quantizer (``IndexIVFFlat``)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng
from repro.vectorstore.base import SearchResult, VectorIndex
from repro.vectorstore.metrics import get_metric


def kmeans(
    vectors: np.ndarray,
    n_clusters: int,
    n_iters: int = 25,
    seed_stream: str = "ivf-kmeans",
) -> tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means; returns ``(centroids, assignments)``.

    Deterministic: initial centroids are sampled from a named RNG stream.
    Empty clusters are re-seeded to the point farthest from its centroid.
    """
    vectors = np.asarray(vectors, dtype=float)
    n = vectors.shape[0]
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    n_clusters = min(n_clusters, n)
    rng = derive_rng(seed_stream, n, n_clusters)
    centroids = vectors[rng.choice(n, size=n_clusters, replace=False)].copy()
    l2 = get_metric("l2")
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(n_iters):
        dists = l2.score(vectors, centroids)
        new_assignments = np.argmin(dists, axis=1)
        if np.array_equal(new_assignments, assignments) and _ > 0:
            break
        assignments = new_assignments
        for cluster in range(n_clusters):
            members = vectors[assignments == cluster]
            if members.shape[0] == 0:
                worst = int(np.argmax(np.min(dists, axis=1)))
                centroids[cluster] = vectors[worst]
            else:
                centroids[cluster] = members.mean(axis=0)
    return centroids, assignments


class IVFIndex(VectorIndex):
    """Approximate k-NN: search only the ``nprobe`` nearest centroid lists.

    Mirrors ``faiss.IndexIVFFlat``.  The index must be trained (or will
    self-train on first search using the stored vectors).
    """

    def __init__(self, dim: int, metric="cosine", n_lists: int = 8, nprobe: int = 2):
        super().__init__(dim=dim, metric=metric)
        if n_lists <= 0:
            raise ValueError(f"n_lists must be positive, got {n_lists}")
        if nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        self.n_lists = int(n_lists)
        self.nprobe = int(nprobe)
        self._centroids: np.ndarray | None = None
        self._assignments: np.ndarray | None = None
        #: per-centroid member rows (sorted), rebuilt by :meth:`_reassign`
        self._list_rows: list[np.ndarray] = []

    @property
    def is_trained(self) -> bool:
        """Whether the coarse quantizer has been fitted."""
        return self._centroids is not None

    def train(self, vectors: np.ndarray | None = None) -> None:
        """Fit the coarse quantizer on ``vectors`` (default: stored data)."""
        data = self._vectors if vectors is None else np.atleast_2d(np.asarray(vectors, dtype=float))
        if data.shape[0] == 0:
            raise ValueError("cannot train IVF index without vectors")
        self._centroids, _ = kmeans(data, self.n_lists)
        self._reassign()

    def _reassign(self) -> None:
        if self._centroids is None or len(self) == 0:
            self._assignments = np.zeros(0, dtype=np.int64)
            self._list_rows = []
            return
        l2 = get_metric("l2")
        dists = l2.score(self._vectors, self._centroids)
        self._assignments = np.argmin(dists, axis=1).astype(np.int64)
        self._list_rows = [np.flatnonzero(self._assignments == cluster)
                           for cluster in range(self._centroids.shape[0])]

    def _on_add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        if self.is_trained:
            self._reassign()

    def _search_impl(self, queries: np.ndarray, k: int) -> list[SearchResult]:
        if not self.is_trained:
            self.train()
        assert self._centroids is not None and self._assignments is not None
        l2 = get_metric("l2")
        centroid_dists = l2.score(queries, self._centroids)
        nprobe = min(self.nprobe, self._centroids.shape[0])
        # every query's probe set in one vectorized selection, then group
        # queries sharing a candidate list so each group is scored and
        # ranked with a single batched metric call
        probe_lists = np.argsort(centroid_dists, axis=1, kind="stable")[:, :nprobe]
        probe_sets, group_of = np.unique(np.sort(probe_lists, axis=1),
                                         axis=0, return_inverse=True)
        results: list[SearchResult | None] = [None] * queries.shape[0]
        for group, probes in enumerate(probe_sets):
            members = np.flatnonzero(group_of == group)
            candidate_rows = np.sort(np.concatenate(
                [self._list_rows[int(cluster)] for cluster in probes]))
            if candidate_rows.size == 0:
                candidate_rows = self._rows
            scores = self.metric.score(queries[members], self._vectors[candidate_rows])
            ranked = self._rank_batch(scores, candidate_rows,
                                      min(k, candidate_rows.size))
            for qi, result in zip(members, ranked):
                results[qi] = result
        return results

"""Similarity/distance metrics shared by the vector indexes.

All metrics compute the query/vector cross product through
:func:`batch_invariant_matmul`, which evaluates the gemm in fixed-size
padded row blocks.  BLAS picks different blocking (and therefore a
different float summation order) depending on the matrix shapes, so a
plain ``queries @ vectors.T`` gives *bitwise different* scores for the
same query depending on how many other queries share the batch.  A
serving gateway that coalesces concurrent requests into one search call
would then return timing-dependent results.  Fixing the gemm shape makes
every query's scores identical no matter which batch it rides in, at the
cost of padding tiny batches up to :data:`QUERY_BLOCK` rows (~50us, well
under one per-query search).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.vectorops import normalize_rows

#: Row-block size of the fixed-shape gemm.  Every block is padded to
#: exactly this many rows, so each query row is computed by an
#: identical-shape kernel regardless of batch composition.  8 balances
#: the padding waste a single-query search pays (8x rows) against the
#: Python-level block loop a large stacked batch pays (n/8 gemm calls);
#: both ends measured within ~25% of their unpadded cost.
QUERY_BLOCK = 8


def batch_invariant_matmul(queries: np.ndarray, vectors_t: np.ndarray) -> np.ndarray:
    """``queries @ vectors_t`` with batch-composition-invariant rows.

    The query rows are processed in blocks of exactly
    :data:`QUERY_BLOCK` rows (zero-padded), so the per-row result is
    bitwise identical whether a query is scored alone or stacked with
    hundreds of others — the property the micro-batching scheduler
    relies on for served results to equal sequential ones.
    """
    n_queries = queries.shape[0]
    if n_queries == 0:
        return np.zeros((0, vectors_t.shape[1]))
    blocks = []
    for start in range(0, n_queries, QUERY_BLOCK):
        chunk = queries[start:start + QUERY_BLOCK]
        pad = QUERY_BLOCK - chunk.shape[0]
        if pad:
            chunk = np.vstack([chunk, np.zeros((pad, chunk.shape[1]))])
            blocks.append((chunk @ vectors_t)[:QUERY_BLOCK - pad])
        else:
            blocks.append(chunk @ vectors_t)
    if len(blocks) == 1:
        return blocks[0]
    return np.vstack(blocks)


@dataclass(frozen=True)
class Metric:
    """A scoring function between a query batch and stored vectors.

    Attributes
    ----------
    name:
        Identifier used in factory strings and serialized indexes.
    higher_is_better:
        True for similarities (inner product, cosine), False for
        distances (L2).
    score:
        ``score(queries (q,d), vectors (n,d)) -> (q,n)`` array.
    """

    name: str
    higher_is_better: bool
    score: Callable[[np.ndarray, np.ndarray], np.ndarray]


def _inner_product(queries: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    return batch_invariant_matmul(queries, vectors.T)


def _cosine(queries: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    return batch_invariant_matmul(normalize_rows(queries), normalize_rows(vectors).T)


def _squared_l2(queries: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    # ||q - v||^2 = ||q||^2 - 2 q.v + ||v||^2, computed without a (q,n,d) blow-up
    q_sq = np.sum(queries**2, axis=1, keepdims=True)
    v_sq = np.sum(vectors**2, axis=1)
    cross = batch_invariant_matmul(queries, vectors.T)
    dists = q_sq - 2.0 * cross + v_sq[None, :]
    np.maximum(dists, 0.0, out=dists)
    return dists


METRICS: dict[str, Metric] = {
    "ip": Metric("ip", True, _inner_product),
    "cosine": Metric("cosine", True, _cosine),
    "l2": Metric("l2", False, _squared_l2),
}


def get_metric(name: str | Metric) -> Metric:
    """Resolve a metric by name, passing :class:`Metric` through."""
    if isinstance(name, Metric):
        return name
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(f"unknown metric {name!r}; choose from {sorted(METRICS)}") from None

"""Similarity/distance metrics shared by the vector indexes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.vectorops import normalize_rows


@dataclass(frozen=True)
class Metric:
    """A scoring function between a query batch and stored vectors.

    Attributes
    ----------
    name:
        Identifier used in factory strings and serialized indexes.
    higher_is_better:
        True for similarities (inner product, cosine), False for
        distances (L2).
    score:
        ``score(queries (q,d), vectors (n,d)) -> (q,n)`` array.
    """

    name: str
    higher_is_better: bool
    score: Callable[[np.ndarray, np.ndarray], np.ndarray]


def _inner_product(queries: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    return queries @ vectors.T


def _cosine(queries: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    return normalize_rows(queries) @ normalize_rows(vectors).T


def _squared_l2(queries: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    # ||q - v||^2 = ||q||^2 - 2 q.v + ||v||^2, computed without a (q,n,d) blow-up
    q_sq = np.sum(queries**2, axis=1, keepdims=True)
    v_sq = np.sum(vectors**2, axis=1)
    cross = queries @ vectors.T
    dists = q_sq - 2.0 * cross + v_sq[None, :]
    np.maximum(dists, 0.0, out=dists)
    return dists


METRICS: dict[str, Metric] = {
    "ip": Metric("ip", True, _inner_product),
    "cosine": Metric("cosine", True, _cosine),
    "l2": Metric("l2", False, _squared_l2),
}


def get_metric(name: str | Metric) -> Metric:
    """Resolve a metric by name, passing :class:`Metric` through."""
    if isinstance(name, Metric):
        return name
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(f"unknown metric {name!r}; choose from {sorted(METRICS)}") from None

"""The Less-is-More agent: recommender -> controller -> reduced call."""

from __future__ import annotations

from repro.core.agent_base import (
    DEFAULT_CONTEXT_WINDOW,
    EMBEDDING_OVERHEAD_S,
    KNN_OVERHEAD_S,
    REDUCED_CONTEXT_WINDOW,
    FunctionCallingAgent,
    ToolPlan,
)
from repro.core.controller import ToolController
from repro.core.levels import SearchLevelBuilder, SearchLevels
from repro.embedding.cache import CachedEmbedder, shared_embedder
from repro.hardware import JETSON_AGX_ORIN, DeviceProfile
from repro.llm import SimulatedLLM
from repro.suites.base import BenchmarkSuite, Query
from repro.utils.vectorops import blend_and_normalize


class LessIsMoreAgent(FunctionCallingAgent):
    """Fine-tuning-free dynamic tool selection (the paper's method).

    Per query:

    1. the deployed LLM is prompted *without tools* and emits "ideal
       tool" descriptions (Tool Recommender);
    2. the descriptions (with the query as context) are embedded with the
       MPNet-substitute and k-NN-matched against Search Levels 1 and 2;
    3. the Controller picks the level with the higher average top-k score
       (below-threshold confidence -> Level 3 / all tools) and the agent
       performs function calling with only the selected subset at an 8K
       context window;
    4. if the LLM signals failure twice, the step escalates to Level 3
       at the default 16K window (the paper's fallback).
    """

    scheme = "lis"
    fallback_to_all = True

    def __init__(
        self,
        llm: SimulatedLLM,
        suite: BenchmarkSuite,
        levels: SearchLevels,
        k: int = 3,
        confidence_threshold: float | None = None,
        context_window: int = REDUCED_CONTEXT_WINDOW,
        device: DeviceProfile = JETSON_AGX_ORIN,
        embedder: CachedEmbedder | None = None,
        force_level: int | None = None,
    ):
        super().__init__(llm=llm, suite=suite, device=device)
        self.levels = levels
        self.k = k
        self.context_window = context_window
        self.embedder = embedder if embedder is not None else shared_embedder()
        controller_kwargs = {"k": k, "force_level": force_level}
        if confidence_threshold is not None:
            controller_kwargs["confidence_threshold"] = confidence_threshold
        self.controller = ToolController(levels, **controller_kwargs)
        self._corpus = suite.registry.descriptions()

    @classmethod
    def build(
        cls,
        model: str,
        quant: str,
        suite: BenchmarkSuite,
        k: int = 3,
        levels: SearchLevels | None = None,
        **kwargs,
    ) -> "LessIsMoreAgent":
        """Construct the full pipeline from registry names.

        ``levels`` may be passed to reuse an offline-built index across
        agents (they are model-independent).
        """
        llm = SimulatedLLM.from_registry(model, quant)
        if levels is None:
            levels = SearchLevelBuilder().build(suite)
        return cls(llm=llm, suite=suite, levels=levels, k=k, **kwargs)

    def plan(self, query: Query) -> ToolPlan:
        recommendation = self.llm.recommend_tools(
            query, self.suite.registry, corpus_descriptions=self._corpus,
        )
        # paper Section III-B: the recommended descriptions are embedded
        # "alongside the corresponding user task" — realised as a convex
        # blend so the description still dominates the match while the
        # task context disambiguates multi-tool workflows.  Query and
        # descriptions go through the cache in one batched encode.
        embedded = self.embedder.encode([query.text, *recommendation.descriptions])
        vectors = blend_and_normalize(embedded[1:], embedded[0], weight=0.75)
        decision = self.controller.decide(vectors)
        window = (self.context_window if decision.level in (1, 2)
                  else DEFAULT_CONTEXT_WINDOW)
        overhead = (EMBEDDING_OVERHEAD_S * len(recommendation.descriptions)
                    + 2 * KNN_OVERHEAD_S)
        return ToolPlan(
            tools=self.suite.registry.subset(decision.tools),
            context_window=window,
            level=decision.level,
            overhead_s=overhead,
            pre_usages=[recommendation.usage],
        )

"""The Less-is-More agent: recommender -> controller -> reduced call."""

from __future__ import annotations

import numpy as np

from repro.core.agent_base import (
    DEFAULT_CONTEXT_WINDOW,
    EMBEDDING_OVERHEAD_S,
    KNN_OVERHEAD_S,
    REDUCED_CONTEXT_WINDOW,
    FunctionCallingAgent,
    ToolPlan,
)
from repro.core.controller import ToolController
from repro.core.levels import SearchLevelBuilder, SearchLevels
from repro.embedding.cache import CachedEmbedder, shared_embedder
from repro.hardware import JETSON_AGX_ORIN, DeviceProfile
from repro.llm import SimulatedLLM
from repro.registry import SchemeContext, register_scheme
from repro.suites.base import BenchmarkSuite, Query
from repro.utils.vectorops import blend_and_normalize


class LessIsMoreAgent(FunctionCallingAgent):
    """Fine-tuning-free dynamic tool selection (the paper's method).

    Per query:

    1. the deployed LLM is prompted *without tools* and emits "ideal
       tool" descriptions (Tool Recommender);
    2. the descriptions (with the query as context) are embedded with the
       MPNet-substitute and k-NN-matched against Search Levels 1 and 2;
    3. the Controller picks the level with the higher average top-k score
       (below-threshold confidence -> Level 3 / all tools) and the agent
       performs function calling with only the selected subset at an 8K
       context window;
    4. if the LLM signals failure twice, the step escalates to Level 3
       at the default 16K window (the paper's fallback).
    """

    scheme = "lis"
    fallback_to_all = True

    def __init__(
        self,
        llm: SimulatedLLM,
        suite: BenchmarkSuite,
        levels: SearchLevels,
        k: int = 3,
        confidence_threshold: float | None = None,
        context_window: int = REDUCED_CONTEXT_WINDOW,
        device: DeviceProfile = JETSON_AGX_ORIN,
        embedder: CachedEmbedder | None = None,
        force_level: int | None = None,
    ):
        super().__init__(llm=llm, suite=suite, device=device)
        self.levels = levels
        self.k = k
        self.context_window = context_window
        self.embedder = embedder if embedder is not None else shared_embedder()
        controller_kwargs = {"k": k, "force_level": force_level}
        if confidence_threshold is not None:
            controller_kwargs["confidence_threshold"] = confidence_threshold
        self.controller = ToolController(levels, **controller_kwargs)
        self._corpus = suite.registry.descriptions()

    @classmethod
    def build(
        cls,
        model: str,
        quant: str,
        suite: BenchmarkSuite,
        k: int = 3,
        levels: SearchLevels | None = None,
        **kwargs,
    ) -> "LessIsMoreAgent":
        """Construct the full pipeline from registry names.

        ``levels`` may be passed to reuse an offline-built index across
        agents (they are model-independent).
        """
        llm = SimulatedLLM.from_registry(model, quant)
        if levels is None:
            levels = SearchLevelBuilder().build(suite)
        return cls(llm=llm, suite=suite, levels=levels, k=k, **kwargs)

    def plan(self, query: Query) -> ToolPlan:
        return self.plan_batch([query])[0]

    def plan_batch(self, queries: list[Query]) -> list[ToolPlan]:
        """Plan a micro-batch of queries through shared vectorized kernels.

        All queries' recommender descriptions are embedded in one cache
        pass, and every request's Level-1/Level-2 retrieval rides in one
        stacked multi-query search per index
        (:meth:`~repro.core.controller.ToolController.decide_batch`).
        Because both the embedder and the scoring kernels are
        batch-invariant, the returned plans are identical to per-query
        :meth:`plan` calls — this is the hot path the serving gateway's
        micro-batch scheduler amortizes across concurrent requests.
        """
        if not queries:
            return []
        recommendations = [
            self.llm.recommend_tools(
                query, self.suite.registry, corpus_descriptions=self._corpus)
            for query in queries
        ]
        # paper Section III-B: the recommended descriptions are embedded
        # "alongside the corresponding user task" — realised as a convex
        # blend so the description still dominates the match while the
        # task context disambiguates multi-tool workflows.  Every query's
        # text and descriptions go through the cache in one batched encode.
        texts: list[str] = []
        spans: list[tuple[int, int]] = []
        for query, recommendation in zip(queries, recommendations):
            start = len(texts)
            texts.append(query.text)
            texts.extend(recommendation.descriptions)
            spans.append((start, len(texts)))
        embedded = self.embedder.encode(texts)
        # one blend pass over every request's description rows: the ops
        # are all row-wise, so the result is bitwise equal to blending
        # each request's block separately
        description_rows = np.concatenate(
            [np.arange(start + 1, end) for start, end in spans])
        context_rows = np.concatenate(
            [np.full(end - start - 1, start, dtype=np.intp) for start, end in spans])
        blended = blend_and_normalize(
            embedded[description_rows], embedded[context_rows], weight=0.75,
            rowwise_context=True,
        )
        blocks = []
        offset = 0
        for start, end in spans:
            n_rows = end - start - 1
            blocks.append(blended[offset:offset + n_rows])
            offset += n_rows
        decisions = self.controller.decide_batch(blocks)

        plans: list[ToolPlan] = []
        for recommendation, decision in zip(recommendations, decisions):
            window = (self.context_window if decision.level in (1, 2)
                      else DEFAULT_CONTEXT_WINDOW)
            overhead = (EMBEDDING_OVERHEAD_S * len(recommendation.descriptions)
                        + 2 * KNN_OVERHEAD_S)
            plans.append(ToolPlan(
                tools=self.suite.catalog.select(decision.tools),
                context_window=window,
                level=decision.level,
                overhead_s=overhead,
                pre_usages=[recommendation.usage],
            ))
        return plans


@register_scheme("lis")
def _build_lis(model: str, quant: str, context: SchemeContext,
               k: int = 3, **kwargs):
    """Scheme-registry factory for the Less-is-More pipeline.

    Search Levels and the embedder come from the context, so agents
    built through a shared runner/session reuse one offline index across
    the whole grid (the paper's one-time offline step).
    """
    llm = context.build_llm(model, quant)
    embedder = context.embedder if context.embedder is not None else shared_embedder()
    return LessIsMoreAgent(llm=llm, suite=context.suite, levels=context.levels,
                           k=k, embedder=embedder, **kwargs)

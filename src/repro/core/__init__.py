"""Less-is-More: the paper's contribution.

Three cooperating pieces (paper Figure 1):

* :class:`SearchLevelBuilder` / :class:`SearchLevels` — the offline
  latent spaces: Level 1 (individual tool embeddings, ``T``), Level 2
  (clusters over the GPT-4-augmented query space, ``A``), Level 3 (the
  full tool set, no search).
* The **Tool Recommender** — the deployed LLM itself, prompted with *no
  tools*, emitting "ideal tool" descriptions (implemented by
  :meth:`repro.llm.SimulatedLLM.recommend_tools`).
* :class:`ToolController` — k-NN of the recommender embeddings against
  Levels 1 and 2, level arbitration by average top-k score, with the
  paper's two fallbacks (low-confidence -> Level 3; runtime error ->
  retry, then Level 3).

:class:`LessIsMoreAgent` wires them into a runnable agent and produces
:class:`~repro.core.episode.EpisodeResult` records that the evaluation
harness converts into the paper's four metrics.
"""

from repro.core.controller import ControllerDecision, ToolController
from repro.core.episode import EpisodeResult, StepRecord
from repro.core.levels import SearchLevelBuilder, SearchLevels, ToolCluster
from repro.core.pipeline import LessIsMoreAgent

__all__ = [
    "ControllerDecision",
    "EpisodeResult",
    "LessIsMoreAgent",
    "SearchLevelBuilder",
    "SearchLevels",
    "StepRecord",
    "ToolCluster",
    "ToolController",
]

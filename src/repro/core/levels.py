"""Offline construction of the three Search Levels (paper Section III-A)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering import AgglomerativeClustering
from repro.embedding.cache import CachedEmbedder, shared_embedder
from repro.suites.augmentation import AugmentationEngine
from repro.suites.base import BenchmarkSuite
from repro.utils.vectorops import normalize_rows
from repro.vectorstore import FlatIndex


@dataclass(frozen=True)
class ToolCluster:
    """One Level-2 cluster: a synergy group of tools with a centroid."""

    cluster_id: int
    tools: tuple[str, ...]
    n_samples: int


@dataclass
class SearchLevels:
    """The populated latent spaces the Tool Controller searches.

    Attributes
    ----------
    tool_index:
        Level 1 — FAISS-style flat index of per-tool description
        embeddings; ids are positions in ``tool_names``.
    cluster_index:
        Level 2 — flat index of cluster centroids over the augmented
        query space; ids index ``clusters``.
    tool_names / clusters:
        Id-resolution tables for the two indexes.
    """

    suite_name: str
    tool_names: list[str]
    tool_index: FlatIndex
    clusters: list[ToolCluster]
    cluster_index: FlatIndex
    all_tools: list[str] = field(default_factory=list)

    def tools_of_cluster(self, cluster_id: int) -> tuple[str, ...]:
        """Member tools of one Level-2 cluster."""
        return self.clusters[cluster_id].tools

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)


class SearchLevelBuilder:
    """Builds :class:`SearchLevels` for a suite (one-time offline step).

    Parameters
    ----------
    embedder:
        Shared cached embedder (the "pretrained MPNet tokenizer").
    n_clusters:
        Level-2 cluster count; default scales with the tool pool so
        clusters stay small enough that the top-k union is a genuine
        reduction (paper Table II passes 19 of 46 tools).
    linkage:
        Agglomerative linkage for the augmented space (paper uses
        scikit-learn's agglomerative clustering; average linkage on
        cosine distance suits unit-norm sentence embeddings).
    """

    def __init__(
        self,
        embedder: CachedEmbedder | None = None,
        n_clusters: int | str | None = None,
        linkage: str = "ward",
        augmentation_seed: int = 0,
    ):
        if isinstance(n_clusters, str) and n_clusters != "auto":
            raise ValueError(f"n_clusters must be an int, 'auto' or None, got {n_clusters!r}")
        self.embedder = embedder if embedder is not None else shared_embedder()
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.augmentation_seed = augmentation_seed

    def build(self, suite: BenchmarkSuite) -> SearchLevels:
        """Populate all search levels for ``suite``."""
        tool_names = suite.registry.names
        tool_index = self._build_level1(suite)
        clusters, cluster_index = self._build_level2(suite)
        return SearchLevels(
            suite_name=suite.name,
            tool_names=tool_names,
            tool_index=tool_index,
            clusters=clusters,
            cluster_index=cluster_index,
            all_tools=list(tool_names),
        )

    # ------------------------------------------------------------------
    # Level 1: individual tool embeddings
    # ------------------------------------------------------------------
    def _build_level1(self, suite: BenchmarkSuite) -> FlatIndex:
        vectors = self.embedder.encode(suite.registry.descriptions())
        index = FlatIndex(dim=self.embedder.dim, metric="cosine")
        index.add(vectors)
        return index

    # ------------------------------------------------------------------
    # Level 2: clusters over the augmented query space
    # ------------------------------------------------------------------
    def _build_level2(self, suite: BenchmarkSuite) -> tuple[list[ToolCluster], FlatIndex]:
        samples = AugmentationEngine(suite, seed=self.augmentation_seed).generate()
        index = FlatIndex(dim=self.embedder.dim, metric="cosine")
        if not samples:
            return [], index

        vectors = self.embedder.encode([sample.text for sample in samples])
        # ward needs euclidean, which is monotonic in cosine on unit-norm
        # sentence embeddings, so both linkages cluster the same geometry
        metric = "euclidean" if self.linkage == "ward" else "cosine"
        if self.n_clusters == "auto":
            from repro.clustering.model_selection import select_n_clusters

            n_clusters, _ = select_n_clusters(
                vectors, k_min=max(4, suite.n_tools // 6),
                k_max=max(6, suite.n_tools // 2),
                linkage=self.linkage, metric=metric,
            )
        else:
            n_clusters = self.n_clusters or self._default_cluster_count(suite)
        n_clusters = min(n_clusters, len(samples))
        labels = AgglomerativeClustering(
            n_clusters=n_clusters, linkage=self.linkage, metric=metric,
        ).fit_predict(vectors)

        clusters: list[ToolCluster] = []
        centroids: list[np.ndarray] = []
        for cluster_id in range(int(labels.max()) + 1):
            member_rows = np.nonzero(labels == cluster_id)[0]
            tools: dict[str, None] = {}
            for row in member_rows:
                for tool in samples[int(row)].tools:
                    tools.setdefault(tool, None)
            clusters.append(ToolCluster(
                cluster_id=len(clusters),
                tools=tuple(tools),
                n_samples=int(member_rows.size),
            ))
            centroids.append(self._cluster_centroid(suite, tuple(tools)))
        index.add(np.stack(centroids))
        return clusters, index

    def _cluster_centroid(self, suite: BenchmarkSuite, tools: tuple[str, ...]) -> np.ndarray:
        """Centroid of a cluster in the *tool description* space.

        Grouping comes from the augmented query space (co-usage), but the
        centroid is represented over the member tools' descriptions so it
        is directly comparable with the recommender's tool-shaped
        descriptions at query time (the same space Level 1 lives in).
        """
        descriptions = [suite.registry.get(name).description for name in tools]
        vectors = self.embedder.encode(descriptions)
        return normalize_rows(vectors.mean(axis=0, keepdims=True))[0]

    @staticmethod
    def _default_cluster_count(suite: BenchmarkSuite) -> int:
        """Aim for clusters of ~3-5 tools.

        Small clusters keep centroids crisp (better arbitration) and
        keep top-k unions a genuine reduction: the paper's Table II
        example passes 19 of GeoEngine's 46 tools.
        """
        return max(4, suite.n_tools // 3)

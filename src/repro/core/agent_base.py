"""Shared execution loop for all function-calling agents.

The Less-is-More agent and every baseline differ only in *which tools
they present, at which context window, with which calling style*; the
step loop — call the LLM, execute the tool, retry on failure, account
time and energy — is identical.  Subclasses implement :meth:`plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.episode import EpisodeResult, StepRecord
from repro.hardware import (
    JETSON_AGX_ORIN,
    DeviceProfile,
    InferenceRequest,
    MeasurementSession,
    simulate_inference,
)
from repro.llm import SimulatedLLM, TokenUsage
from repro.suites.base import BenchmarkSuite, Query
from repro.tools import SimulatedToolExecutor
from repro.tools.schema import ToolSpec

#: Host-side overhead of embedding one short text on the Orin CPU/GPU
#: (the "inexpensive pretrained embedding tokenizer" of the paper).
EMBEDDING_OVERHEAD_S = 0.009
#: One k-NN probe over a tools/cluster index (FAISS-scale, tiny pools).
KNN_OVERHEAD_S = 0.0025

#: Context windows used in the paper's evaluation (Section IV): default
#: models run at 16K so all tools fit; Gorilla and LiS run at 8K.
DEFAULT_CONTEXT_WINDOW = 16384
REDUCED_CONTEXT_WINDOW = 8192


@dataclass
class ToolPlan:
    """What an agent decided to present for one query."""

    tools: list[ToolSpec]
    context_window: int
    level: int | None = None
    overhead_s: float = 0.0
    pre_usages: list[TokenUsage] = field(default_factory=list)


class FunctionCallingAgent:
    """Base agent: subclass and implement :meth:`plan`."""

    scheme = "base"
    #: whether a repeated error signal escalates to all tools at 16K
    fallback_to_all = False

    def __init__(
        self,
        llm: SimulatedLLM,
        suite: BenchmarkSuite,
        device: DeviceProfile = JETSON_AGX_ORIN,
        skill_multiplier: float = 1.0,
        arg_multiplier: float = 1.0,
    ):
        self.llm = llm
        self.suite = suite
        self.device = device
        self.skill_multiplier = skill_multiplier
        self.arg_multiplier = arg_multiplier
        factory = suite.executor_factory
        self.executor = (factory(suite.registry) if factory is not None
                         else SimulatedToolExecutor(suite.registry))

    # ------------------------------------------------------------------
    # to be provided by subclasses
    # ------------------------------------------------------------------
    def plan(self, query: Query) -> ToolPlan:
        """Choose the tool subset and window for ``query``."""
        raise NotImplementedError

    def plan_batch(self, queries: list[Query]) -> list[ToolPlan]:
        """Plan many queries at once.

        The base implementation simply loops; agents whose planning is
        dominated by vectorizable work (embedding + retrieval) override
        this to coalesce the batch into single kernel calls.  Plans must
        be identical to per-query :meth:`plan` output — the serving
        gateway's equivalence guarantee rests on it.
        """
        return [self.plan(query) for query in queries]

    def tools_for_step(self, query: Query, step_index: int,
                       current_tools: list[ToolSpec],
                       called_tools: list[str]) -> tuple[list[ToolSpec], float]:
        """Optionally re-plan tools before each chain step.

        Returns ``(tools, extra_overhead_s)``.  The default keeps the
        episode plan; retrieval-per-turn baselines (Gorilla) override.
        """
        return current_tools, 0.0

    # ------------------------------------------------------------------
    # episode loop
    # ------------------------------------------------------------------
    def run(self, query: Query) -> EpisodeResult:
        """Execute one full episode and measure it on the device model."""
        return self.run_planned(query, self.plan(query))

    def run_planned(self, query: Query, plan: ToolPlan) -> EpisodeResult:
        """Execute one episode from an already-computed plan.

        Split from :meth:`run` so a serving layer can plan a whole
        micro-batch in one vectorized pass and then execute each episode
        individually.  The method touches no agent-level mutable state,
        so one agent instance can execute episodes concurrently as long
        as its executor/embedder are thread-safe (they are by default).
        """
        session = MeasurementSession(device=self.device)
        session.add_overhead(plan.overhead_s)

        result = EpisodeResult(
            qid=query.qid,
            scheme=self.scheme,
            model=self.llm.model.name,
            quant=self.llm.quant.name,
            selected_level=plan.level,
        )
        for usage in plan.pre_usages:
            self._account(usage, plan.context_window, session, result,
                          stream=f"{query.qid}-pre")

        tools = plan.tools
        window = plan.context_window
        in_fallback = False
        called_tools: list[str] = []
        # one tool-state object per episode: stateful executors carry tool
        # effects across chain steps (and conversation turns) through it
        tool_state = self.executor.new_episode_state()
        for step_index in range(query.n_steps):
            if not in_fallback:
                tools, replan_overhead = self.tools_for_step(
                    query, step_index, tools, called_tools)
                session.add_overhead(replan_overhead)
            record, in_fallback, tools, window = self._run_step(
                query, step_index, tools, window, in_fallback, session, result,
                tool_state,
            )
            result.steps.append(record)
            if record.tool_called is not None:
                called_tools.append(record.tool_called)

        result.fallback_used = in_fallback
        result.time_s = session.total_time_s
        result.energy_j = session.energy_j
        result.avg_power_w = session.avg_power_w
        result.peak_memory_gb = session.peak_memory_gb
        return result

    def run_planned_many(self, queries: list[Query],
                         plans: list[ToolPlan]) -> list[EpisodeResult]:
        """Execute a batch of already-planned episodes, in order.

        The serial loop the serving layer runs after ``plan_batch`` —
        inline on the gateway's batch worker, or inside a process-pool
        worker (agents pickle cleanly: the embedder, direction bank and
        tool executor recreate their locks on the receiving side), where
        it is the unit of work shipped per worker slice.
        """
        if len(queries) != len(plans):
            raise ValueError(
                f"{len(queries)} queries but {len(plans)} plans")
        return [self.run_planned(query, plan)
                for query, plan in zip(queries, plans)]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_step(self, query, step_index, tools, window, in_fallback,
                  session, result, tool_state=None):
        attempt = 0
        turn_index = query.turn_of_step(step_index)
        turn = self._turn(query, step_index, tools, window, attempt, session, result)

        if turn.signalled_error:
            # paper Section III-C: retry once, then fall back to Level 3
            attempt += 1
            turn = self._turn(query, step_index, tools, window, attempt, session, result)
            if turn.signalled_error and self.fallback_to_all and not in_fallback:
                in_fallback = True
                tools = list(self.suite.registry)
                window = DEFAULT_CONTEXT_WINDOW
                attempt += 1
                turn = self._turn(query, step_index, tools, window, attempt,
                                  session, result)

        if turn.call is None:
            record = StepRecord(step_index, None, False, False, len(tools),
                                retried=attempt > 0, turn_index=turn_index)
            return record, in_fallback, tools, window

        allowed = set(turn.tools_seen)
        outcome = self.executor.execute(turn.call, allowed=allowed,
                                        state=tool_state)
        session.add_api_latency(outcome.api_latency_s)
        if not outcome.ok and query.sequential:
            # multi-turn copilots (GeoEngine) surface the API validation
            # error back to the model, which retries once; single-shot
            # suites (BFCL) grade the first call, so no recovery there
            attempt += 1
            retry_turn = self._turn(query, step_index, tools, window, attempt,
                                    session, result)
            if retry_turn.call is not None:
                turn = retry_turn
                outcome = self.executor.execute(turn.call, allowed=set(turn.tools_seen),
                                                state=tool_state)
                session.add_api_latency(outcome.api_latency_s)

        record = StepRecord(
            step_index=step_index,
            tool_called=turn.call.tool if turn.call else None,
            correct_tool=turn.correct_tool,
            execution_ok=outcome.ok if turn.call else False,
            n_tools_presented=len(tools),
            retried=attempt > 0,
            turn_index=turn_index,
        )
        return record, in_fallback, tools, window

    def _turn(self, query, step_index, tools, window, attempt, session, result):
        turn = self.llm.execute_step(
            query, step_index, tools, window, attempt=attempt,
            skill_multiplier=self.skill_multiplier,
            arg_multiplier=self.arg_multiplier,
        )
        self._account(turn.usage, window, session, result,
                      stream=f"{query.qid}-s{step_index}-a{attempt}")
        return turn

    def _account(self, usage: TokenUsage, window: int,
                 session: MeasurementSession, result: EpisodeResult,
                 stream: str) -> None:
        """Convert token usage into a hardware trace and tally it."""
        trace = simulate_inference(
            InferenceRequest(
                params_b=self.llm.model.params_b,
                bits_per_weight=self.llm.quant.bits_per_weight,
                prompt_tokens=usage.prompt_tokens,
                generated_tokens=usage.completion_tokens,
                context_window=window,
                kv_cached_tokens=usage.kv_cached_tokens,
                jitter_stream=f"{self.scheme}-{self.llm.name}-{stream}",
            ),
            device=self.device,
        )
        session.add_trace(trace)
        result.n_llm_calls += 1
        result.prompt_tokens += usage.prompt_tokens
        result.completion_tokens += usage.completion_tokens

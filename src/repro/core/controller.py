"""The Tool Controller: level arbitration + tool subset selection."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.levels import SearchLevels

#: Paper Section III-C: "if both average top-k scores are below 0.5 ...
#: we default to presenting all tools (Level 3)".  The 0.5 value is on
#: MPNet's cosine scale, where unrelated sentence pairs still score
#: ~0.3-0.5; our lexical-semantic embedder is colder (unrelated pairs
#: score near 0), so the equivalent low-confidence cutoff is ~0.30.
DEFAULT_CONFIDENCE_THRESHOLD = 0.30


@dataclass(frozen=True)
class ControllerDecision:
    """Outcome of one controller invocation.

    ``level`` is 1, 2 or 3; ``tools`` is the subset to present (for
    Level 3 it is the full pool).  The two scores are the average top-k
    similarities the arbitration compared.
    """

    level: int
    tools: tuple[str, ...]
    level1_score: float
    level2_score: float

    @property
    def n_tools(self) -> int:
        return len(self.tools)


class ToolController:
    """k-NN search over the Search Levels with the paper's arbitration.

    For every recommender embedding the controller retrieves the top-k
    individual tools (Level 1) and top-k clusters (Level 2), compares the
    average top-k scores, and presents the union of the winning level's
    retrievals.  Confidence below ``threshold`` on both levels falls back
    to the entire tool set (Level 3).
    """

    def __init__(
        self,
        levels: SearchLevels,
        k: int = 3,
        confidence_threshold: float = DEFAULT_CONFIDENCE_THRESHOLD,
        max_level2_clusters: int | None = None,
        multi_need_margin: float = 0.85,
        force_level: int | None = None,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if force_level not in (None, 1, 2, 3):
            raise ValueError(f"force_level must be 1, 2, 3 or None, got {force_level}")
        self.levels = levels
        self.k = k
        self.confidence_threshold = confidence_threshold
        # how many clusters may contribute tools; defaults to k (the
        # retrieved set), matching the paper's "top-k ... clusters"
        self.max_level2_clusters = max_level2_clusters or k
        # paper Section III-C intuition: "LLM recommendations involving
        # multiple tools are more likely to match a tool cluster" — when
        # the recommender emitted several tool needs, prefer Level 2 as
        # long as its score is within this fraction of Level 1's
        self.multi_need_margin = multi_need_margin
        # ablation hook: bypass arbitration and always use one level
        self.force_level = force_level

    def decide(self, recommendation_vectors: np.ndarray) -> ControllerDecision:
        """Arbitrate levels for a batch of recommender embeddings (``E``).

        Both levels are searched with one multi-query call per index; the
        score aggregates are computed on the stacked ``(q, k)`` matrices.
        """
        return self.decide_batch([recommendation_vectors])[0]

    def decide_batch(self, vector_blocks: list[np.ndarray]) -> list[ControllerDecision]:
        """Arbitrate many requests' recommendation blocks in one search pass.

        ``vector_blocks`` holds one ``(n_i, dim)`` embedding matrix per
        request.  All blocks are stacked into a single multi-query search
        per index and the arbitration runs on each request's score slice.
        The scoring kernels are batch-invariant (see
        :mod:`repro.vectorstore.metrics`), so every decision is bitwise
        identical to calling :meth:`decide` on that block alone — the
        contract the serving gateway's micro-batcher relies on.
        """
        blocks = [np.atleast_2d(np.asarray(block, dtype=float))
                  for block in vector_blocks]
        searchable = [i for i, block in enumerate(blocks) if block.shape[0] > 0]
        decisions: list[ControllerDecision | None] = [None] * len(blocks)
        if len(self.levels.tool_index) == 0 or not searchable:
            return [self._level3(0.0, 0.0) for _ in blocks]
        for i, block in enumerate(blocks):
            if block.shape[0] == 0:
                decisions[i] = self._level3(0.0, 0.0)

        stacked = (blocks[searchable[0]] if len(searchable) == 1
                   else np.vstack([blocks[i] for i in searchable]))
        level1_scores, level1_ids = self.levels.tool_index.search_arrays(stacked, self.k)
        has_level2 = len(self.levels.cluster_index) > 0
        if has_level2:
            level2_scores, level2_ids = self.levels.cluster_index.search_arrays(
                stacked, self.k)

        row = 0
        for i in searchable:
            n_rows = blocks[i].shape[0]
            rows = slice(row, row + n_rows)
            row += n_rows
            decisions[i] = self._arbitrate(
                n_rows,
                level1_scores[rows], level1_ids[rows],
                level2_scores[rows] if has_level2 else None,
                level2_ids[rows] if has_level2 else None,
            )
        return decisions

    def _arbitrate(
        self,
        n_vectors: int,
        level1_scores: np.ndarray,
        level1_ids: np.ndarray,
        level2_scores: np.ndarray | None,
        level2_ids: np.ndarray | None,
    ) -> ControllerDecision:
        """The paper's level arbitration over one request's top-k scores."""
        level1_score = float(level1_scores.mean())
        level1_top1 = float(level1_scores[:, 0].max())

        has_level2 = level2_scores is not None
        if has_level2:
            level2_score = float(level2_scores.mean())
            level2_top1 = float(level2_scores[:, 0].max())
        else:
            level2_score = 0.0
            level2_top1 = 0.0

        if self.force_level == 3:
            return self._level3(level1_score, level2_score)

        # low-confidence fallback: judged on the best top-1 match (robust
        # to k, unlike the mean which shrinks as k grows), arbitration
        # between levels on the average top-k score as in the paper
        if (self.force_level is None
                and max(level1_top1, level2_top1) < self.confidence_threshold):
            return self._level3(level1_score, level2_score)

        multi_need = n_vectors >= 2
        # has_level2 guards both disjuncts: an empty cluster index must
        # never win arbitration (its 0.0 score can exceed a negative
        # Level-1 mean, which would present an empty tool set)
        level2_preferred = has_level2 and (
            level2_score > level1_score
            or (multi_need
                and level2_score >= self.multi_need_margin * level1_score)
        )
        if self.force_level is not None:
            level2_preferred = self.force_level == 2 and has_level2
        if not level2_preferred:
            tools: dict[str, None] = {}
            for tool_id in level1_ids.ravel():
                tools.setdefault(self.levels.tool_names[int(tool_id)], None)
            return ControllerDecision(1, tuple(tools), level1_score, level2_score)

        # Level 2: rank clusters by their best score over recommendations,
        # union the member tools of the strongest clusters.
        cluster_scores: dict[int, float] = {}
        for score, cluster_id in zip(level2_scores.ravel(), level2_ids.ravel()):
            cluster_id = int(cluster_id)
            cluster_scores[cluster_id] = max(cluster_scores.get(cluster_id, -np.inf),
                                             float(score))
        ranked = sorted(cluster_scores, key=lambda cid: cluster_scores[cid], reverse=True)
        tools = {}
        for cluster_id in ranked[: self.max_level2_clusters]:
            for tool in self.levels.tools_of_cluster(cluster_id):
                tools.setdefault(tool, None)
        return ControllerDecision(2, tuple(tools), level1_score, level2_score)

    def _level3(self, level1_score: float, level2_score: float) -> ControllerDecision:
        return ControllerDecision(3, tuple(self.levels.all_tools),
                                  level1_score, level2_score)

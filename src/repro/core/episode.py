"""Episode records shared by the Less-is-More agent and all baselines."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StepRecord:
    """One chain step: what was called and whether it worked."""

    step_index: int
    tool_called: str | None
    correct_tool: bool
    execution_ok: bool
    n_tools_presented: int
    retried: bool = False
    #: conversation turn this step belongs to (0 for single-shot queries)
    turn_index: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "StepRecord":
        return cls(**data)


@dataclass
class EpisodeResult:
    """Everything measured about one query episode.

    The paper's four metrics derive from these fields: Success Rate from
    ``success``, Tool Accuracy from ``tool_accuracy``, and the normalized
    execution-time / power columns from ``time_s`` / ``avg_power_w``
    relative to the default scheme.
    """

    qid: str
    scheme: str
    model: str
    quant: str
    steps: list[StepRecord] = field(default_factory=list)
    selected_level: int | None = None
    fallback_used: bool = False
    time_s: float = 0.0
    energy_j: float = 0.0
    avg_power_w: float = 0.0
    peak_memory_gb: float = 0.0
    n_llm_calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def tool_accuracy(self) -> bool:
        """All steps selected the gold tool (paper's Tool Accuracy)."""
        return bool(self.steps) and all(step.correct_tool for step in self.steps)

    @property
    def success(self) -> bool:
        """Correct tools *and* well-formed executions end-to-end."""
        return bool(self.steps) and all(
            step.correct_tool and step.execution_ok for step in self.steps
        )

    @property
    def mean_tools_presented(self) -> float:
        if not self.steps:
            return 0.0
        return sum(step.n_tools_presented for step in self.steps) / len(self.steps)

    def to_dict(self) -> dict:
        """JSON-able form that round-trips **bitwise** through
        :meth:`from_dict`.

        Floats serialize via Python's shortest-repr JSON encoding, which
        decodes to the identical IEEE-754 value — so an episode sent over
        the HTTP edge compares equal to the in-process original (asserted
        by ``tests/test_serving_equivalence.py``).  The derived
        ``success`` / ``tool_accuracy`` metrics ride along for clients
        but are dropped on decode (they are properties, not state).
        """
        data = {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}
        data["steps"] = [step.to_dict() for step in self.steps]
        data["success"] = self.success
        data["tool_accuracy"] = self.tool_accuracy
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EpisodeResult":
        data = dict(data)
        data.pop("success", None)
        data.pop("tool_accuracy", None)
        data["steps"] = [StepRecord.from_dict(step)
                         for step in data.get("steps", [])]
        return cls(**data)

"""Fourth suite: ``browser`` — multi-turn, stateful web-automation episodes.

The paper's evaluation is single-conversation: every query arrives in
one shot and the executor is stateless.  Real on-device assistants hold
*conversations* — the user opens a page on turn one, then asks to click
and read on later turns, and the tool backend must remember which page
is open.  This suite exercises that shape: a 14-tool browser-automation
pool (navigation / input / reading), queries whose gold chains span 2-3
user turns (:class:`~repro.suites.base.QueryTurn`), and a *stateful*
executor — :class:`BrowserToolExecutor` — whose per-episode state makes
later calls fail unless an earlier call of the same episode opened a
page first.  Tool-state carryover across turns is therefore
load-bearing: break it and success rates collapse.

Loaded via ``load_suite("browser")`` and usable with every agent, bench
and serving path in the package.
"""

from __future__ import annotations

from typing import Any

from repro.registry import register_catalog
from repro.suites.base import PAPER_QUERY_BATCH, BenchmarkSuite, Query, QueryTurn
from repro.tools.catalog import ToolCatalog, load_catalog
from repro.tools.executor import SimulatedToolExecutor
from repro.tools.schema import ToolCall
from repro.tools.schema import ToolParameter as P
from repro.tools.schema import ToolSpec as T
from repro.utils.hashing import stable_hash64
from repro.utils.rng import derive_rng


def _browser_tools() -> tuple[T, ...]:
    """14 tool specs across navigation, input and reading domains."""
    tools = [
        # navigation (4) ---------------------------------------------------
        T("open_page", "Open a web page by URL in the active browser tab.",
          (P("url", "string", "Address of the page to open."),),
          category="navigation"),
        T("go_back", "Navigate back to the previously viewed page.",
          (), category="navigation"),
        T("reload_page", "Reload the currently open page.",
          (), category="navigation"),
        T("scroll_page", "Scroll the open page up or down by a number of screens.",
          (P("direction", "string", "Scroll direction.", enum=("up", "down")),
           P("screens", "integer", "How many screens to scroll.",
             required=False)), category="navigation"),
        # input (5) --------------------------------------------------------
        T("click_element", "Click the page element matching a CSS selector.",
          (P("selector", "string", "CSS selector of the element."),),
          category="input"),
        T("type_text", "Type text into the input field matching a selector.",
          (P("selector", "string", "CSS selector of the input field."),
           P("text", "string", "Text to type.")), category="input"),
        T("press_key", "Press a keyboard key on the focused element.",
          (P("key", "string", "Key to press.",
             enum=("enter", "tab", "escape")),), category="input"),
        T("select_option", "Choose an option from a dropdown on the page.",
          (P("selector", "string", "CSS selector of the dropdown."),
           P("option", "string", "Visible label of the option.")),
          category="input"),
        T("submit_form", "Submit the form matching a CSS selector.",
          (P("selector", "string", "CSS selector of the form."),),
          category="input"),
        # reading (5) ------------------------------------------------------
        T("read_title", "Read the title of the currently open page.",
          (), category="reading"),
        T("read_text", "Extract the text content of an element on the page.",
          (P("selector", "string", "CSS selector of the element."),),
          category="reading"),
        T("find_elements", "Find page elements whose text matches a phrase.",
          (P("query", "string", "Phrase to look for."),), category="reading"),
        T("list_links", "List the hyperlinks present on the open page.",
          (), category="reading"),
        T("take_screenshot", "Capture a screenshot of the open page.",
          (), category="reading"),
    ]
    return tuple(tools)


@register_catalog("browser")
def build_browser_catalog() -> ToolCatalog:
    """The 14-tool browser-automation catalog (full variant)."""
    return ToolCatalog("browser", _browser_tools())


class BrowserToolExecutor(SimulatedToolExecutor):
    """Stateful executor: tool effects persist for the whole episode.

    Per-episode state (from :meth:`new_episode_state`) tracks which page
    is open and what has been typed.  Every tool except ``open_page``
    *requires* an open page — so a multi-turn episode only succeeds when
    the page opened on turn one is still open when turn two clicks and
    turn three reads.  Results embed the open page, making the carryover
    observable (and assertable) from episode outcomes.

    State threads through ``execute(call, state=...)`` rather than
    living on the executor, so one executor instance stays safe to share
    across concurrent episodes (the serving gateway does).  A ``None``
    state — a caller that never created one — degrades to the stateless
    base behaviour.
    """

    #: tools that operate on the currently open page
    _NEEDS_PAGE = frozenset({
        "go_back", "reload_page", "scroll_page", "click_element",
        "type_text", "press_key", "select_option", "submit_form",
        "read_title", "read_text", "find_elements", "list_links",
        "take_screenshot",
    })

    def new_episode_state(self) -> dict[str, Any]:
        return {"page": None, "visited": [], "typed": {}, "actions": 0}

    def _state_error(self, call: ToolCall, state) -> str | None:
        if state is None or call.tool not in self._NEEDS_PAGE:
            return None
        if state["page"] is None:
            return (f"tool {call.tool!r} needs an open page, but no page was "
                    f"opened earlier in this browsing session")
        return None

    def _fabricate_result(self, call: ToolCall, state=None) -> dict[str, Any]:
        result = super()._fabricate_result(call, state)
        if state is None:
            return result
        if call.tool == "open_page":
            state["page"] = call.arguments["url"]
            state["visited"].append(state["page"])
        elif call.tool == "go_back" and len(state["visited"]) > 1:
            state["visited"].pop()
            state["page"] = state["visited"][-1]
        elif call.tool == "type_text":
            state["typed"][call.arguments["selector"]] = call.arguments["text"]
        state["actions"] += 1
        result["page"] = state["page"]
        result["session_actions"] = state["actions"]
        if call.tool == "read_title":
            token = stable_hash64("title", state["page"] or "") % 1000
            result["title"] = f"{state['page']} — page {token:03d}"
        return result


def build_browser_executor(catalog) -> BrowserToolExecutor:
    """Executor factory wired into the suite (module-level: picklable)."""
    return BrowserToolExecutor(catalog)


# ----------------------------------------------------------------------
# multi-turn query templates
# ----------------------------------------------------------------------
#: site slot pool (suite-local; plain strings keep gold args deterministic)
_SITES = ("news.example.com", "shop.example.com", "wiki.example.org",
          "mail.example.net", "forum.example.org", "docs.example.io")
_SELECTORS = ("#search", ".menu-item", "#login", ".article-link",
              "#comment-box", ".price-tag")
_PHRASES = ("latest headlines", "free shipping", "edit history",
            "unread messages", "top replies", "getting started")
_TEXTS = ("hello world", "order status", "quarterly report",
          "meeting notes", "weather tomorrow")

#: each template is (category, ((turn_pattern, calls_fn), ...)); slots are
#: filled from the suite-local pools above
_BROWSER_TEMPLATES: tuple[tuple[str, tuple], ...] = (
    ("lookup", (
        ("Open {site} for me",
         lambda s: [ToolCall("open_page", {"url": f"https://{s['site']}"})]),
        ("What is this page called?",
         lambda s: [ToolCall("read_title", {})]),
    )),
    ("search", (
        ("Go to {site} and search for {text}",
         lambda s: [ToolCall("open_page", {"url": f"https://{s['site']}"}),
                    ToolCall("type_text", {"selector": "#search",
                                           "text": s["text"]})]),
        ("Run the search",
         lambda s: [ToolCall("press_key", {"key": "enter"})]),
        ("Read me the first result",
         lambda s: [ToolCall("read_text", {"selector": ".article-link"})]),
    )),
    ("form", (
        ("Open {site}",
         lambda s: [ToolCall("open_page", {"url": f"https://{s['site']}"})]),
        ("Fill {selector} with {text} and submit the signup form",
         lambda s: [ToolCall("type_text", {"selector": s["selector"],
                                           "text": s["text"]}),
                    ToolCall("submit_form", {"selector": "#signup"})]),
    )),
    ("browse", (
        ("Open {site} and scroll down a couple of screens",
         lambda s: [ToolCall("open_page", {"url": f"https://{s['site']}"}),
                    ToolCall("scroll_page", {"direction": "down",
                                             "screens": 2})]),
        ("Any links about {phrase}?",
         lambda s: [ToolCall("find_elements", {"query": s["phrase"]})]),
        ("Click the first one",
         lambda s: [ToolCall("click_element", {"selector": ".article-link"})]),
    )),
    ("capture", (
        ("Bring up {site}",
         lambda s: [ToolCall("open_page", {"url": f"https://{s['site']}"})]),
        ("Grab a screenshot and list the links on it",
         lambda s: [ToolCall("take_screenshot", {}),
                    ToolCall("list_links", {})]),
    )),
    ("navigate", (
        ("Open {site} and click {selector}",
         lambda s: [ToolCall("open_page", {"url": f"https://{s['site']}"}),
                    ToolCall("click_element", {"selector": s["selector"]})]),
        ("Reload and read the title",
         lambda s: [ToolCall("reload_page", {}),
                    ToolCall("read_title", {})]),
    )),
)

_POOLS = {"site": _SITES, "selector": _SELECTORS, "phrase": _PHRASES,
          "text": _TEXTS}


def generate_browser_queries(n_queries: int, seed: int, split: str) -> list[Query]:
    """Deterministic multi-turn query pool over the browser templates."""
    rng = derive_rng("browser", split, seed)
    order = rng.permutation(len(_BROWSER_TEMPLATES))
    queries: list[Query] = []
    for index in range(n_queries):
        category, turn_templates = _BROWSER_TEMPLATES[
            int(order[index % len(order)])]
        slots = {name: pool[int(rng.integers(len(pool)))]
                 for name, pool in _POOLS.items()}
        turns = tuple(
            QueryTurn(text=pattern.format(**slots),
                      gold_calls=tuple(calls_fn(slots)))
            for pattern, calls_fn in turn_templates)
        gold_calls = tuple(call for turn in turns for call in turn.gold_calls)
        queries.append(Query(
            qid=f"browser-{split}-{index:04d}",
            # the recommender and Search Levels key off query text; the
            # joined conversation keeps the whole task visible to them
            text=" Then: ".join(turn.text for turn in turns),
            category=category,
            gold_calls=gold_calls,
            sequential=True,
            turns=turns,
        ))
    return queries


def build_browser_suite(n_queries: int = PAPER_QUERY_BATCH, seed: int = 0,
                        n_train: int = 100,
                        catalog: ToolCatalog | None = None) -> BenchmarkSuite:
    """Build the browser suite (14 tools, multi-turn stateful chains).

    ``catalog`` overrides the tool pool (default: the registered
    ``"browser"`` catalog).
    """
    return BenchmarkSuite(
        name="browser",
        registry=catalog if catalog is not None else load_catalog("browser"),
        queries=generate_browser_queries(n_queries, seed, split="eval"),
        train_queries=generate_browser_queries(n_train, seed, split="train"),
        sequential=True,
        executor_factory=build_browser_executor,
    )

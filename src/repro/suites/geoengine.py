"""GeoEngine-substitute query generator: sequential geospatial tasks.

Queries are chains of dependent calls over the 46-tool geospatial catalog
("sequential function calls, where each call depends on the previous
result", paper Section IV).  The canonical paper example —
"Plot the fmow VQA captions in UK from Fall 2009" — is the first
template below.
"""

from __future__ import annotations

from repro.suites.base import PAPER_QUERY_BATCH, BenchmarkSuite, Query
from repro.suites.templating import QueryTemplate, season_dates
from repro.tools.catalog import ToolCatalog, load_catalog
from repro.tools.schema import ToolCall


def _chain(*steps: tuple) -> list[ToolCall]:
    return [ToolCall(tool, arguments) for tool, arguments in steps]


GEOENGINE_TEMPLATES: tuple[QueryTemplate, ...] = (
    QueryTemplate(
        "vqa_mapping",
        "Plot the {dataset} VQA captions in {region} from {season} {year}",
        lambda s: _chain(
            ("load_dataset", {"dataset": s["dataset"]}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("filter_images_by_season", {"season": s["season"], "year": s["year"]}),
            ("generate_vqa_captions", {}),
            ("plot_captions_on_map", {}),
        )),
    QueryTemplate(
        "detection",
        "How many {object_class}s are visible in {region} in the {dataset} imagery from {year}?",
        lambda s: _chain(
            ("load_dataset", {"dataset": s["dataset"]}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("filter_images_by_daterange",
             {"start_date": f"{s['year']}-01-01", "end_date": f"{s['year']}-12-31"}),
            ("detect_objects", {"object_class": s["object_class"]}),
            ("count_detected_objects", {}),
        )),
    QueryTemplate(
        "detection",
        "Detect building footprints in {region} using {dataset} and export them as GeoJSON.",
        lambda s: _chain(
            ("load_dataset", {"dataset": s["dataset"]}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("detect_buildings", {}),
            ("export_geojson", {"filename": f"{s['region'].lower()}_buildings.geojson"}),
        )),
    QueryTemplate(
        "analytics",
        "How healthy is the vegetation in {region} during {season} {year}? Show a heatmap.",
        lambda s: _chain(
            ("load_dataset", {"dataset": "sentinel2"}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("filter_images_by_season", {"season": s["season"], "year": s["year"]}),
            ("compute_ndvi", {}),
            ("plot_heatmap", {"metric": "ndvi"}),
        )),
    QueryTemplate(
        "reporting",
        "Assess the flood risk around {region} and save the findings as a PDF report.",
        lambda s: _chain(
            ("load_dataset", {"dataset": "sentinel2"}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("segment_water_bodies", {}),
            ("flood_risk_assessment", {"region": s["region"]}),
            ("save_report_pdf", {"title": f"Flood risk report for {s['region']}"}),
        )),
    QueryTemplate(
        "analytics",
        "What changed in {region} between {year} and {year_b}? Describe the differences.",
        lambda s: _chain(
            ("load_dataset", {"dataset": "landsat8"}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("change_detection", {"baseline_year": s["year"], "comparison_year": s["year_b"]}),
            ("describe_change", {"region": s["region"]}),
        )),
    QueryTemplate(
        "analytics",
        "Chart how cloud cover over {region} evolved in the {dataset} archive.",
        lambda s: _chain(
            ("load_dataset", {"dataset": s["dataset"]}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("compute_cloud_cover", {}),
            ("plot_timeseries", {"metric": "cloud cover"}),
        )),
    QueryTemplate(
        "vqa_mapping",
        "Show me a grid of {small_int} sample {dataset} scenes from {region}.",
        lambda s: _chain(
            ("load_dataset", {"dataset": s["dataset"]}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("sample_images", {"count": s["small_int"]}),
            ("display_image_grid", {"count": s["small_int"]}),
        )),
    QueryTemplate(
        "detection",
        "Detect ships near the ports of {region} and plot the detections on the map.",
        lambda s: _chain(
            ("load_dataset", {"dataset": "xview"}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("detect_ships", {}),
            ("plot_detections", {}),
        )),
    QueryTemplate(
        "analytics",
        "Classify land use across {region} and export the area fractions to CSV.",
        lambda s: _chain(
            ("load_dataset", {"dataset": "fmow"}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("classify_land_use", {}),
            ("compute_landcover_fractions", {}),
            ("export_csv", {"filename": f"{s['region'].lower()}_landuse.csv"}),
        )),
    QueryTemplate(
        "analytics",
        "Roughly how many people live in the {region} area according to {dataset}?",
        lambda s: _chain(
            ("load_dataset", {"dataset": s["dataset"]}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("population_estimate", {"region": s["region"]}),
        )),
    QueryTemplate(
        "reporting",
        "Assess building damage in {region} after the {date} storm and write a report.",
        lambda s: _chain(
            ("load_dataset", {"dataset": "xview"}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("damage_assessment", {"region": s["region"], "event_date": s["date"]}),
            ("save_report_pdf", {"title": f"Damage assessment for {s['region']}"}),
        )),
    QueryTemplate(
        "vqa_mapping",
        "Caption the {dataset} scenes over {region} and share the resulting map.",
        lambda s: _chain(
            ("load_dataset", {"dataset": s["dataset"]}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("generate_image_captions", {}),
            ("plot_captions_on_map", {}),
            ("share_map_link", {}),
        )),
    QueryTemplate(
        "detection",
        "Find vehicles in {region} keeping only detections above {threshold} confidence.",
        lambda s: _chain(
            ("load_dataset", {"dataset": "xview"}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("detect_vehicles", {}),
            ("filter_detections_by_confidence", {"threshold": s["threshold"]}),
        )),
    QueryTemplate(
        "detection",
        "How dense is aircraft parking around {region} airports in {year}?",
        lambda s: _chain(
            ("load_dataset", {"dataset": "fmow"}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("filter_images_by_daterange",
             {"start_date": f"{s['year']}-01-01", "end_date": f"{s['year']}-12-31"}),
            ("detect_aircraft", {}),
            ("estimate_object_density", {"object_class": "aircraft"}),
        )),
    QueryTemplate(
        "vqa_mapping",
        "Summarize what the {season} {year} {dataset} imagery shows about {region}.",
        lambda s: _chain(
            ("load_dataset", {"dataset": s["dataset"]}),
            ("filter_images_by_region", {"region": s["region"]}),
            ("filter_images_by_season", {"season": s["season"], "year": s["year"]}),
            ("summarize_region_content", {"region": s["region"]}),
        )),
)


def generate_geoengine_queries(n_queries: int, seed: int, split: str) -> list[Query]:
    """Generate ``n_queries`` deterministic sequential geospatial queries."""
    from repro.utils.rng import derive_rng

    rng = derive_rng("geoengine", split, seed)
    order = rng.permutation(len(GEOENGINE_TEMPLATES))
    queries: list[Query] = []
    for index in range(n_queries):
        template = GEOENGINE_TEMPLATES[int(order[index % len(order)])]
        text, calls, slots = template.instantiate(rng)
        if "season" in slots and "year" in slots:
            # keep the date filters consistent with the season mentioned in text
            start, end = season_dates(slots["season"], slots["year"])
            for call in calls:
                if call.tool == "filter_images_by_daterange":
                    call.arguments.update(start_date=start, end_date=end)
        queries.append(Query(
            qid=f"geo-{split}-{index:04d}",
            text=text,
            category=template.category,
            gold_calls=tuple(calls),
            sequential=True,
        ))
    return queries


def build_geoengine_suite(n_queries: int = PAPER_QUERY_BATCH, seed: int = 0,
                          n_train: int = 120,
                          catalog: ToolCatalog | None = None) -> BenchmarkSuite:
    """Build the GeoEngine-substitute suite (46 tools, sequential chains).

    ``catalog`` overrides the tool pool (default: the registered
    ``"geoengine"`` catalog).
    """
    return BenchmarkSuite(
        name="geoengine",
        registry=catalog if catalog is not None else load_catalog("geoengine"),
        queries=generate_geoengine_queries(n_queries, seed, split="eval"),
        train_queries=generate_geoengine_queries(n_train, seed, split="train"),
        sequential=True,
    )

"""GeoEngine-substitute tool catalog: 46 geospatial copilot tools.

GeoLLM-Engine (Singh et al., CVPR 2024) provides agents with remote-
sensing tools over earth-observation archives (fmow, xView, ...).  The
paper uses 46 of its functions with *sequential* queries such as "Plot
the fmow VQA captions in UK from Fall 2009", where each call consumes the
previous call's output.  This catalog reproduces that tool surface; the
chain structure lives in :mod:`repro.suites.geoengine`.
"""

from __future__ import annotations

from repro.registry import register_catalog
from repro.tools.catalog import ToolCatalog
from repro.tools.registry import ToolRegistry
from repro.tools.schema import ToolParameter as P
from repro.tools.schema import ToolSpec as T

#: Earth-observation archives exposed by the simulated platform.
DATASETS = ("fmow", "xview", "sentinel2", "landsat8", "naip")

#: Seasons used by the date filters (paper example: "Fall 2009").
SEASONS = ("spring", "summer", "fall", "winter")


def _geoengine_tools() -> tuple[T, ...]:
    """The 46 GeoEngine-like tool specs (registration order is stable)."""
    tools = [
        # ------------------------------------------------------------------
        # data access (8)
        # ------------------------------------------------------------------
        T("load_dataset",
          "Load a remote sensing imagery dataset archive such as fmow or xview "
          "into the active workspace session.",
          (P("dataset", "string", "Dataset archive name.", enum=DATASETS),),
          category="data_access"),
        T("list_available_datasets",
          "List the satellite and aerial imagery datasets available on the platform.",
          (),
          category="data_access"),
        T("get_dataset_info",
          "Get the metadata of a dataset: sensor, resolution, coverage and license.",
          (P("dataset", "string", "Dataset archive name.", enum=DATASETS),),
          category="data_access"),
        T("filter_images_by_region",
          "Filter the loaded imagery collection to scenes located inside a country "
          "or named geographic region.",
          (P("region", "string", "Country or region name, e.g. 'UK'."),),
          category="data_access"),
        T("filter_images_by_daterange",
          "Filter the loaded imagery collection to scenes acquired between two dates.",
          (P("start_date", "string", "Range start, e.g. '2009-09-01'."),
           P("end_date", "string", "Range end, e.g. '2009-11-30'.")),
          category="data_access"),
        T("filter_images_by_season",
          "Filter the loaded imagery collection to scenes acquired during a season "
          "of a given year, like Fall 2009.",
          (P("season", "string", "Season of the year.", enum=SEASONS),
           P("year", "integer", "Calendar year.")),
          category="data_access"),
        T("sample_images",
          "Randomly sample a fixed number of scenes from the current filtered collection.",
          (P("count", "integer", "Number of scenes to sample."),),
          category="data_access"),
        T("get_image_metadata",
          "Get acquisition metadata for one scene: timestamp, sensor, cloud mask, footprint.",
          (P("image_id", "string", "Scene identifier."),),
          category="data_access"),
        # ------------------------------------------------------------------
        # object detection (8)
        # ------------------------------------------------------------------
        T("detect_objects",
          "Run the object detection model on the current image collection and return "
          "bounding boxes for a requested object class.",
          (P("object_class", "string", "Object class to detect, e.g. 'ship'."),),
          category="detection"),
        T("count_detected_objects",
          "Count the objects found by the most recent detection run, grouped per scene.",
          (),
          category="detection"),
        T("detect_buildings",
          "Detect building footprints in the current imagery collection.",
          (),
          category="detection"),
        T("detect_vehicles",
          "Detect cars and trucks in the current high-resolution imagery collection.",
          (),
          category="detection"),
        T("detect_ships",
          "Detect ships and maritime vessels in coastal and harbor scenes.",
          (),
          category="detection"),
        T("detect_aircraft",
          "Detect airplanes parked at airports or airfields in the imagery.",
          (),
          category="detection"),
        T("estimate_object_density",
          "Estimate the spatial density of detected objects per square kilometer.",
          (P("object_class", "string", "Object class of interest."),),
          category="detection"),
        T("filter_detections_by_confidence",
          "Keep only the detections whose confidence score exceeds a threshold.",
          (P("threshold", "number", "Minimum confidence in [0, 1]."),),
          category="detection"),
        # ------------------------------------------------------------------
        # classification & segmentation (6)
        # ------------------------------------------------------------------
        T("classify_land_use",
          "Classify each scene of the collection into land use categories such as "
          "residential, industrial, agricultural or forest.",
          (),
          category="classification"),
        T("classify_scene",
          "Classify a single scene into a functional category like airport, port or stadium.",
          (P("image_id", "string", "Scene identifier."),),
          category="classification"),
        T("segment_water_bodies",
          "Segment rivers, lakes and coastal water pixels in the imagery collection.",
          (),
          category="classification"),
        T("segment_roads",
          "Extract the road network mask from the imagery collection.",
          (),
          category="classification"),
        T("segment_vegetation",
          "Segment vegetated areas such as forest, cropland and parks in the imagery.",
          (),
          category="classification"),
        T("compute_landcover_fractions",
          "Compute the per-class area fraction of the land cover segmentation result.",
          (),
          category="classification"),
        # ------------------------------------------------------------------
        # VQA & captioning (6)
        # ------------------------------------------------------------------
        T("generate_image_captions",
          "Generate natural language captions describing each scene in the collection.",
          (),
          category="vqa"),
        T("generate_vqa_captions",
          "Generate visual question answering captions for the current collection, "
          "answering a templated question per scene.",
          (P("question", "string", "VQA question template.", required=False),),
          category="vqa"),
        T("answer_visual_question",
          "Answer a free-form question about a single scene using the VQA model.",
          (P("image_id", "string", "Scene identifier."),
           P("question", "string", "Question about the scene.")),
          category="vqa"),
        T("summarize_region_content",
          "Summarize what the filtered collection shows about a geographic region.",
          (P("region", "string", "Region the summary should cover."),),
          category="vqa"),
        T("compare_image_pair",
          "Describe the visual differences between two scenes of the same location.",
          (P("image_id_a", "string", "First scene."),
           P("image_id_b", "string", "Second scene.")),
          category="vqa"),
        T("describe_change",
          "Generate a textual description of the temporal change detected in a region.",
          (P("region", "string", "Region of interest."),),
          category="vqa"),
        # ------------------------------------------------------------------
        # analytics (8)
        # ------------------------------------------------------------------
        T("compute_ndvi",
          "Compute the normalized difference vegetation index for the collection "
          "and return per-scene vegetation health statistics.",
          (),
          category="analytics"),
        T("compute_cloud_cover",
          "Estimate the cloud cover percentage of each scene in the collection.",
          (),
          category="analytics"),
        T("change_detection",
          "Run change detection between two acquisition periods over the same region.",
          (P("baseline_year", "integer", "Baseline acquisition year."),
           P("comparison_year", "integer", "Comparison acquisition year.")),
          category="analytics"),
        T("compute_area_statistics",
          "Compute area statistics (total, mean, histogram) for the current analysis layer.",
          (),
          category="analytics"),
        T("population_estimate",
          "Estimate the population living inside the currently selected region.",
          (P("region", "string", "Region name."),),
          category="analytics"),
        T("elevation_profile",
          "Compute the terrain elevation profile along a path or across a region.",
          (P("region", "string", "Region or path description."),),
          category="analytics"),
        T("flood_risk_assessment",
          "Assess flood risk for a region by combining water masks and elevation data.",
          (P("region", "string", "Region to assess."),),
          category="analytics"),
        T("damage_assessment",
          "Assess building damage after a disaster event by comparing pre and post imagery.",
          (P("region", "string", "Affected region."),
           P("event_date", "string", "Date of the disaster event.")),
          category="analytics"),
        # ------------------------------------------------------------------
        # visualization (6)
        # ------------------------------------------------------------------
        T("plot_captions_on_map",
          "Plot the generated captions on an interactive map at each scene footprint.",
          (),
          category="visualization"),
        T("plot_detections",
          "Plot the detection bounding boxes over the scenes on the map viewer.",
          (),
          category="visualization"),
        T("plot_heatmap",
          "Render a heatmap layer of a computed metric over the region map.",
          (P("metric", "string", "Metric to visualize, e.g. 'ndvi'.", required=False),),
          category="visualization"),
        T("render_basemap",
          "Render the basemap of a region at a chosen zoom level in the map viewer.",
          (P("region", "string", "Region to center on."),
           P("zoom", "integer", "Zoom level.", required=False)),
          category="visualization"),
        T("plot_timeseries",
          "Plot the time series of a computed per-scene metric as a chart.",
          (P("metric", "string", "Metric to chart."),),
          category="visualization"),
        T("display_image_grid",
          "Display a grid of scene thumbnails from the current collection.",
          (P("count", "integer", "Number of thumbnails.", required=False),),
          category="visualization"),
        # ------------------------------------------------------------------
        # export & reporting (4)
        # ------------------------------------------------------------------
        T("export_geojson",
          "Export the current analysis layer (detections, masks, captions) as GeoJSON.",
          (P("filename", "string", "Output file name."),),
          category="export"),
        T("export_csv",
          "Export the current tabular results as a CSV file.",
          (P("filename", "string", "Output file name."),),
          category="export"),
        T("save_report_pdf",
          "Compile the session's maps, charts and captions into a PDF report.",
          (P("title", "string", "Report title."),),
          category="export"),
        T("share_map_link",
          "Create a shareable link of the current interactive map view.",
          (),
          category="export"),
    ]
    return tuple(tools)


@register_catalog("geoengine")
def build_geoengine_catalog() -> ToolCatalog:
    """The 46-tool GeoEngine-like catalog (full variant)."""
    return ToolCatalog("geoengine", _geoengine_tools())


def build_geoengine_registry() -> ToolRegistry:
    """Legacy registry form of the GeoEngine catalog (same specs, order)."""
    return ToolRegistry(_geoengine_tools())

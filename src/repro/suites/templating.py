"""Shared query-template machinery for the benchmark generators."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.tools.schema import ToolCall

_SLOT_RE = re.compile(r"\{(\w+)\}")

#: Value pools for template slots, shared by both suites.
SLOT_POOLS: dict[str, tuple] = {
    "city": ("New York", "London", "Paris", "Tokyo", "Chicago", "Berlin",
             "Madrid", "Sydney", "Toronto", "Mumbai", "Cairo", "Seoul"),
    "region": ("UK", "France", "Japan", "Brazil", "California", "Texas",
               "Kenya", "Australia", "Germany", "India", "Italy", "Egypt"),
    "country": ("France", "Japan", "Brazil", "Canada", "Italy", "Spain"),
    "language": ("French", "Spanish", "German", "Japanese", "Italian",
                 "Portuguese", "Korean"),
    "ticker": ("AAPL", "GOOG", "MSFT", "AMZN", "TSLA", "NVDA"),
    "crypto": ("BTC", "ETH", "SOL", "ADA"),
    "currency": ("USD", "EUR", "GBP", "JPY", "CAD", "AUD"),
    "team": ("Lakers", "Yankees", "Arsenal", "Cowboys", "Warriors"),
    "movie": ("Inception", "Interstellar", "The Matrix", "Oppenheimer",
              "Parasite"),
    "artist": ("Coldplay", "Adele", "Drake", "Beyonce"),
    "song": ("Yellow", "Hello", "One Dance", "Halo"),
    "book_genre": ("science fiction", "mystery", "historical fiction",
                   "fantasy"),
    "dish": ("pasta carbonara", "chicken curry", "vegetable stir fry",
             "beef tacos", "mushroom risotto"),
    "meal": ("two eggs and toast with butter", "a bowl of ramen",
             "caesar salad with chicken", "a cheeseburger with fries"),
    "topic": ("artificial intelligence", "climate change", "space travel",
              "the Roman Empire", "quantum computing", "renewable energy"),
    "word": ("serendipity", "ephemeral", "ubiquitous", "altruism"),
    "phrase": ("good morning my friend", "where is the train station",
               "the weather is lovely today", "i would like a coffee"),
    "event_title": ("team standup", "dentist appointment", "project review",
                    "yoga class"),
    "timezone_a": ("US/Eastern", "Europe/London", "Asia/Tokyo"),
    "timezone_b": ("US/Pacific", "Europe/Berlin", "Australia/Sydney"),
    "cuisine": ("italian", "japanese", "mexican", "indian", "thai"),
    "dataset": ("fmow", "xview", "sentinel2", "landsat8", "naip"),
    "season": ("spring", "summer", "fall", "winter"),
    "object_class": ("ship", "aircraft", "vehicle", "building",
                     "storage tank"),
    "metric": ("ndvi", "cloud cover", "object density"),
    "year": tuple(range(2005, 2021)),
    "year_b": tuple(range(2005, 2021)),
    "small_int": (2, 3, 4, 5, 6, 8, 10),
    "big_int": (12, 16, 20, 24, 36),
    "amount": (25.0, 80.0, 120.0, 250.0, 400.0, 1500.0),
    "rate": (3.5, 4.2, 5.0, 6.75, 7.1),
    "threshold": (0.5, 0.6, 0.7, 0.8, 0.9),
    "weight": (58.0, 64.0, 72.0, 81.0, 95.0),
    "height": (158.0, 165.0, 172.0, 180.0, 188.0),
    "income": (42000.0, 65000.0, 88000.0, 120000.0),
    "status": ("single", "married", "head_of_household"),
    "date": ("2024-03-14", "2024-05-02", "2024-06-21", "2024-08-09"),
    "time": ("07:00", "09:30", "14:00", "18:15"),
    "number": (7, 12, 36, 54, 120, 256),
    "x_value": (2.0, 3.0, 4.5, 6.0),
    "mode": ("driving", "walking", "transit"),
}


@dataclass(frozen=True)
class QueryTemplate:
    """A parameterised query pattern with a gold-call builder.

    ``calls`` maps the filled slot dict to the gold tool-call sequence
    (length 1 for single-call suites).
    """

    category: str
    pattern: str
    calls: Callable[[dict[str, Any]], list[ToolCall]]

    def slots(self) -> list[str]:
        """Slot names appearing in the pattern."""
        return _SLOT_RE.findall(self.pattern)

    def instantiate(self, rng: np.random.Generator) -> tuple[str, list[ToolCall], dict[str, Any]]:
        """Sample slot values and return (text, gold_calls, slots)."""
        values: dict[str, Any] = {}
        for slot in self.slots():
            pool = SLOT_POOLS.get(slot)
            if pool is None:
                raise KeyError(f"template slot {slot!r} has no value pool")
            values[slot] = pool[int(rng.integers(len(pool)))]
        if "year" in values and "year_b" in values and values["year_b"] <= values["year"]:
            # keep comparison ranges well-ordered for change-detection queries
            values["year_b"] = values["year"] + int(rng.integers(1, 6))
        text = self.pattern.format(**values)
        return text, self.calls(values), values


def season_dates(season: str, year: int) -> tuple[str, str]:
    """Approximate (start, end) ISO dates of a season, as a copilot would."""
    ranges = {
        "spring": ("03-01", "05-31"),
        "summer": ("06-01", "08-31"),
        "fall": ("09-01", "11-30"),
        "winter": ("12-01", "02-28"),
    }
    start, end = ranges[season]
    end_year = year + 1 if season == "winter" else year
    return f"{year}-{start}", f"{end_year}-{end}"

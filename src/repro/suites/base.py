"""Core benchmark-suite datatypes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tools.catalog import ToolCatalog
from repro.tools.registry import ToolRegistry
from repro.tools.schema import ToolCall

#: Mini-batch size used throughout the paper's evaluation (Section IV).
PAPER_QUERY_BATCH = 230


@dataclass(frozen=True)
class QueryTurn:
    """One conversation turn of a multi-turn query.

    ``text`` is what the user says on this turn; ``gold_calls`` the
    reference calls the agent should issue *during* this turn, in order.
    """

    text: str
    gold_calls: tuple[ToolCall, ...]

    def __post_init__(self):
        object.__setattr__(self, "gold_calls", tuple(self.gold_calls))
        if not self.text:
            raise ValueError("QueryTurn.text must be a non-empty string")
        if not self.gold_calls:
            raise ValueError("QueryTurn.gold_calls must not be empty")


@dataclass(frozen=True)
class Query:
    """One benchmark query with its gold solution.

    ``gold_calls`` holds the reference tool-call sequence: length 1 for
    BFCL-style independent queries, length >= 2 for GeoEngine-style
    sequential tasks (order matters there — each call consumes the
    previous call's output).

    ``turns`` (optional) structures a conversation: each
    :class:`QueryTurn` carries the user text and gold calls of one turn,
    and their concatenation must equal ``gold_calls`` — turns partition
    the flat chain, so every single-shot consumer (step counts, tool
    accuracy, the recommender) keeps working unchanged while multi-turn
    consumers (turn-indexed step records, per-episode executor state)
    read the boundaries.
    """

    qid: str
    text: str
    category: str
    gold_calls: tuple[ToolCall, ...]
    sequential: bool = False
    turns: tuple[QueryTurn, ...] = ()

    def __post_init__(self):
        if not self.gold_calls:
            raise ValueError(f"query {self.qid}: gold_calls must not be empty")
        object.__setattr__(self, "turns", tuple(self.turns))
        if self.turns:
            flattened = tuple(call for turn in self.turns
                              for call in turn.gold_calls)
            if flattened != tuple(self.gold_calls):
                raise ValueError(
                    f"query {self.qid}: per-turn gold_calls must concatenate "
                    f"to gold_calls (turns cover {len(flattened)} calls, "
                    f"query has {len(self.gold_calls)})")

    @property
    def gold_tools(self) -> tuple[str, ...]:
        """Names of the gold tools, in call order."""
        return tuple(call.tool for call in self.gold_calls)

    @property
    def n_steps(self) -> int:
        return len(self.gold_calls)

    @property
    def n_turns(self) -> int:
        """Conversation turns (1 for single-shot queries)."""
        return len(self.turns) if self.turns else 1

    def turn_of_step(self, step_index: int) -> int:
        """The turn a chain step belongs to (0 for single-shot queries)."""
        if not self.turns:
            return 0
        boundary = 0
        for turn_index, turn in enumerate(self.turns):
            boundary += len(turn.gold_calls)
            if step_index < boundary:
                return turn_index
        return len(self.turns) - 1


@dataclass
class BenchmarkSuite:
    """A tool catalog plus deterministic eval/train query sets.

    ``queries`` is the evaluation mini-batch (paper: 230 queries);
    ``train_queries`` is a disjoint pool that only Level-2 construction
    may look at (mirroring the paper's use of benchmark training splits
    for GPT-4 augmentation).

    The ``registry`` field (named for the legacy constructor surface)
    accepts either a frozen :class:`~repro.tools.catalog.ToolCatalog` or
    a legacy :class:`~repro.tools.registry.ToolRegistry`; registries are
    frozen into a catalog at construction, so ``suite.registry`` — and
    the :attr:`catalog` alias — is always a versioned catalog.

    ``executor_factory`` (optional) builds the suite's tool executor
    from its catalog — ``f(catalog) -> SimulatedToolExecutor`` — letting
    stateful suites (the browser suite) install an executor whose
    :meth:`~repro.tools.executor.SimulatedToolExecutor.new_episode_state`
    carries tool state across the turns of one episode.  It must be a
    module-level callable so suites stay picklable.
    """

    name: str
    registry: ToolCatalog | ToolRegistry
    queries: list[Query]
    train_queries: list[Query] = field(default_factory=list)
    sequential: bool = False
    executor_factory: object = None

    def __post_init__(self):
        if isinstance(self.registry, ToolRegistry):
            self.registry = self.registry.to_catalog(name=self.name)
        if not isinstance(self.registry, ToolCatalog):
            raise TypeError(
                f"suite {self.name!r}: registry must be a ToolCatalog or "
                f"ToolRegistry, got {type(self.registry).__name__}")
        for query in list(self.queries) + list(self.train_queries):
            for tool in query.gold_tools:
                if tool not in self.registry:
                    raise ValueError(
                        f"query {query.qid} references unknown tool {tool!r} "
                        f"(catalog {self.registry.name!r}, "
                        f"version {self.registry.version[:12]})"
                    )

    @property
    def catalog(self) -> ToolCatalog:
        """The suite's tool catalog (alias of :attr:`registry`)."""
        return self.registry

    def with_catalog(self, catalog: ToolCatalog) -> "BenchmarkSuite":
        """This suite re-tooled onto ``catalog`` (same query pools).

        Gold calls are re-validated against the new catalog, so swapping
        in a catalog that dropped a referenced tool fails loudly here —
        the serving hot-swap path relies on that check.
        """
        return BenchmarkSuite(
            name=self.name, registry=catalog, queries=self.queries,
            train_queries=self.train_queries, sequential=self.sequential,
            executor_factory=self.executor_factory,
        )

    @property
    def n_tools(self) -> int:
        return len(self.registry)

    @property
    def categories(self) -> list[str]:
        """Query categories present in the eval split, first-appearance order."""
        seen: dict[str, None] = {}
        for query in self.queries:
            seen.setdefault(query.category, None)
        return list(seen)

    def queries_by_category(self, category: str, split: str = "eval") -> list[Query]:
        """Queries of one category from the ``eval`` or ``train`` split."""
        pool = self.queries if split == "eval" else self.train_queries
        return [query for query in pool if query.category == category]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BenchmarkSuite({self.name!r}, tools={self.n_tools}, "
            f"eval={len(self.queries)}, train={len(self.train_queries)}, "
            f"sequential={self.sequential})"
        )

"""Third suite: ``edgehome`` — a multi-domain on-device assistant.

The paper's closing claim is that Less-is-More "allows for easy
adaptation to new tools" without retraining.  This suite tests that
generalisation story beyond the two paper benchmarks: a 32-tool
mixed-domain pool (smart home + personal assistant + on-device media)
with *both* single-call queries and short sequential routines — the
shape of a real phone/home deployment where neither BFCL's pure
single-call nor GeoEngine's deep chains applies cleanly.

Loaded via ``load_suite("edgehome")`` and usable with every agent,
bench and CLI command in the package.
"""

from __future__ import annotations

from repro.registry import register_catalog
from repro.suites.base import PAPER_QUERY_BATCH, BenchmarkSuite, Query
from repro.suites.templating import QueryTemplate
from repro.tools.catalog import ToolCatalog, load_catalog
from repro.tools.registry import ToolRegistry
from repro.tools.schema import ToolCall
from repro.tools.schema import ToolParameter as P
from repro.tools.schema import ToolSpec as T
from repro.utils.rng import derive_rng


def _edgehome_tools() -> tuple[T, ...]:
    """32 tool specs across home-control, assistant and media domains."""
    tools = [
        # home control (10) ------------------------------------------------
        T("turn_on_light", "Turn on the smart light in a room of the house.",
          (P("room", "string", "Room name."),), category="home"),
        T("turn_off_light", "Turn off the smart light in a room of the house.",
          (P("room", "string", "Room name."),), category="home"),
        T("set_brightness", "Set the brightness percentage of a room's lights.",
          (P("room", "string", "Room name."),
           P("level", "integer", "Brightness 0-100.")), category="home"),
        T("set_thermostat", "Set the thermostat target temperature in celsius.",
          (P("temperature", "number", "Target temperature."),), category="home"),
        T("get_indoor_climate", "Read the indoor temperature and humidity sensors.",
          (), category="home"),
        T("lock_door", "Lock a smart door lock by name.",
          (P("door", "string", "Door name."),), category="home"),
        T("unlock_door", "Unlock a smart door lock by name.",
          (P("door", "string", "Door name."),), category="home"),
        T("arm_security", "Arm the home alarm in home or away mode.",
          (P("mode", "string", "Arming mode.", enum=("home", "away")),),
          category="home"),
        T("view_camera", "Show the live feed of a named security camera.",
          (P("camera", "string", "Camera location."),), category="home"),
        T("start_vacuum", "Start the robot vacuum on a cleaning run.",
          (), category="home"),
        # personal assistant (12) -------------------------------------------
        T("create_event", "Create a calendar event with title, date and time.",
          (P("title", "string", "Event title."),
           P("date", "string", "Event date."),
           P("time", "string", "Start time.")), category="assistant"),
        T("list_events", "List calendar events scheduled for a date.",
          (P("date", "string", "Date to inspect."),), category="assistant"),
        T("set_alarm", "Set a wake-up alarm at a given time.",
          (P("time", "string", "Alarm time."),), category="assistant"),
        T("set_timer", "Start a countdown timer for a number of minutes.",
          (P("minutes", "integer", "Countdown length."),), category="assistant"),
        T("send_message", "Send a text message to a contact.",
          (P("contact", "string", "Recipient name."),
           P("message", "string", "Message body.")), category="assistant"),
        T("read_messages", "Read out the unread messages from a contact.",
          (P("contact", "string", "Sender name."),), category="assistant"),
        T("add_to_shopping_list", "Add an item to the shared shopping list.",
          (P("item", "string", "Item to add."),), category="assistant"),
        T("create_note", "Save a short note for later.",
          (P("text", "string", "Note content."),), category="assistant"),
        T("get_weather_brief", "Get a short local weather briefing for today.",
          (), category="assistant"),
        T("get_commute_time", "Estimate current driving time to a destination.",
          (P("destination", "string", "Where to."),), category="assistant"),
        T("call_contact", "Start a phone call with a contact.",
          (P("contact", "string", "Who to call."),), category="assistant"),
        T("check_battery", "Report the device battery level and charging state.",
          (), category="assistant"),
        # media (10) ------------------------------------------------------------
        T("play_music", "Play music from a playlist on the room speakers.",
          (P("room", "string", "Room name."),
           P("playlist", "string", "Playlist name.", required=False)),
          category="media"),
        T("pause_media", "Pause whatever media is currently playing.",
          (), category="media"),
        T("set_volume", "Set the speaker volume percentage in a room.",
          (P("room", "string", "Room name."),
           P("volume", "integer", "Volume 0-100.")), category="media"),
        T("next_track", "Skip to the next track in the current queue.",
          (), category="media"),
        T("play_radio", "Tune the speakers to a named radio station.",
          (P("station", "string", "Radio station."),), category="media"),
        T("play_podcast", "Resume the latest episode of a podcast show.",
          (P("show", "string", "Podcast show name."),), category="media"),
        T("cast_video", "Cast a video title to the living room TV.",
          (P("title", "string", "Video title."),), category="media"),
        T("set_sleep_timer", "Stop media playback after a number of minutes.",
          (P("minutes", "integer", "Minutes until stop."),), category="media"),
        T("announce", "Broadcast a voice announcement on every speaker.",
          (P("message", "string", "Announcement text."),), category="media"),
        T("get_now_playing", "Report which track is currently playing.",
          (), category="media"),
    ]
    return tuple(tools)


@register_catalog("edgehome")
def build_edgehome_catalog() -> ToolCatalog:
    """The 32-tool EdgeHome catalog (full variant)."""
    return ToolCatalog("edgehome", _edgehome_tools())


def build_edgehome_registry() -> ToolRegistry:
    """Legacy registry form of the EdgeHome catalog (same specs, order)."""
    return ToolRegistry(_edgehome_tools())


def _one(tool: str, **arguments) -> list[ToolCall]:
    return [ToolCall(tool, arguments)]


def _chain(*steps: tuple) -> list[ToolCall]:
    return [ToolCall(tool, arguments) for tool, arguments in steps]


EDGEHOME_TEMPLATES: tuple[QueryTemplate, ...] = (
    # single-call -------------------------------------------------------
    QueryTemplate("home", "Turn on the {room} lights",
                  lambda s: _one("turn_on_light", room=s["room"])),
    QueryTemplate("home", "Dim the {room} to {volume} percent",
                  lambda s: _one("set_brightness", room=s["room"], level=s["volume"])),
    QueryTemplate("home", "Set the heat to {temperature} degrees",
                  lambda s: _one("set_thermostat", temperature=float(s["temperature"]))),
    QueryTemplate("home", "Is it humid inside?",
                  lambda s: _one("get_indoor_climate")),
    QueryTemplate("home", "Lock the {door} door",
                  lambda s: _one("lock_door", door=s["door"])),
    QueryTemplate("home", "Show me the {door} camera",
                  lambda s: _one("view_camera", camera=s["door"])),
    QueryTemplate("assistant", "Wake me up at {time}",
                  lambda s: _one("set_alarm", time=s["time"])),
    QueryTemplate("assistant", "Set a timer for {volume} minutes",
                  lambda s: _one("set_timer", minutes=s["volume"])),
    QueryTemplate("assistant", "Text {contact} that I'm running late",
                  lambda s: _one("send_message", contact=s["contact"],
                                 message="I'm running late")),
    QueryTemplate("assistant", "Put milk on the shopping list",
                  lambda s: _one("add_to_shopping_list", item="milk")),
    QueryTemplate("assistant", "What's on my calendar on {date}?",
                  lambda s: _one("list_events", date=s["date"])),
    QueryTemplate("assistant", "How long is the drive to {city} right now?",
                  lambda s: _one("get_commute_time", destination=s["city"])),
    QueryTemplate("media", "Play some {playlist} in the {room}",
                  lambda s: _one("play_music", room=s["room"], playlist=s["playlist"])),
    QueryTemplate("media", "Skip this song",
                  lambda s: _one("next_track")),
    QueryTemplate("media", "Cast {movie} to the TV",
                  lambda s: _one("cast_video", title=s["movie"])),
    QueryTemplate("media", "Stop the music in {volume} minutes",
                  lambda s: _one("set_sleep_timer", minutes=s["volume"])),
    # short routines (sequential) -------------------------------------------
    QueryTemplate("routine",
                  "Good night: lock the {door} door, arm the alarm for home "
                  "and turn off the {room} lights",
                  lambda s: _chain(
                      ("lock_door", {"door": s["door"]}),
                      ("arm_security", {"mode": "home"}),
                      ("turn_off_light", {"room": s["room"]}),
                  )),
    QueryTemplate("routine",
                  "Movie time: dim the {room} to 15 percent and cast {movie} to the TV",
                  lambda s: _chain(
                      ("set_brightness", {"room": s["room"], "level": 15}),
                      ("cast_video", {"title": s["movie"]}),
                  )),
    QueryTemplate("routine",
                  "Morning routine: read my weather brief, then play {playlist} "
                  "in the {room} and warm the house to {temperature}",
                  lambda s: _chain(
                      ("get_weather_brief", {}),
                      ("play_music", {"room": s["room"], "playlist": s["playlist"]}),
                      ("set_thermostat", {"temperature": float(s["temperature"])}),
                  )),
    QueryTemplate("routine",
                  "Announce dinner is ready and pause the media everywhere",
                  lambda s: _chain(
                      ("announce", {"message": "dinner is ready"}),
                      ("pause_media", {}),
                  )),
)

# extra slot pools used only by this suite
_EXTRA_POOLS = {
    "room": ("kitchen", "living room", "bedroom", "study", "hallway"),
    "door": ("front", "back", "garage", "patio"),
    "contact": ("Alex", "Sam", "Maria", "Dad"),
    "playlist": ("jazz", "morning hits", "focus beats", "classics"),
    "temperature": (19, 20, 21, 22, 23),
    "volume": (10, 15, 20, 30, 45),
}


def generate_edgehome_queries(n_queries: int, seed: int, split: str) -> list[Query]:
    """Deterministic query pool mixing single calls and routines."""
    from repro.suites import templating

    # register the suite-local pools (idempotent)
    for name, pool in _EXTRA_POOLS.items():
        templating.SLOT_POOLS.setdefault(name, pool)

    rng = derive_rng("edgehome", split, seed)
    order = rng.permutation(len(EDGEHOME_TEMPLATES))
    queries: list[Query] = []
    for index in range(n_queries):
        template = EDGEHOME_TEMPLATES[int(order[index % len(order)])]
        text, calls, _ = template.instantiate(rng)
        queries.append(Query(
            qid=f"edge-{split}-{index:04d}",
            text=text,
            category=template.category,
            gold_calls=tuple(calls),
            sequential=len(calls) > 1,
        ))
    return queries


def build_edgehome_suite(n_queries: int = PAPER_QUERY_BATCH, seed: int = 0,
                         n_train: int = 100,
                         catalog: ToolCatalog | None = None) -> BenchmarkSuite:
    """Build the edgehome suite (32 tools, mixed single/sequential).

    ``catalog`` overrides the tool pool (default: the registered
    ``"edgehome"`` catalog, so plugins that re-register the name
    re-tool this suite too).
    """
    return BenchmarkSuite(
        name="edgehome",
        registry=catalog if catalog is not None else load_catalog("edgehome"),
        queries=generate_edgehome_queries(n_queries, seed, split="eval"),
        train_queries=generate_edgehome_queries(n_train, seed, split="train"),
        sequential=True,  # contains chains; per-query flag is authoritative
    )

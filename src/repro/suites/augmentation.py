"""GPT-4-substitute benchmark augmentation (ToolQA-style).

Paper Section III-A: GPT-4 is prompted with ~10 training queries per
category to generate "contextually proximate" task permutations; factual
correctness is explicitly *not* required — the outputs only serve as
noisy co-usage samples for Level-2 clustering, quality-checked with a
ROUGE score.

Offline we reproduce the same distribution with three deterministic
generators:

* **paraphrase** — synonym substitution through the concept lexicon
  (same task, different wording; same tool set);
* **permutation** — one chain step swapped for a same-category tool
  ("open the document" -> "print it instead"), wording spliced from the
  substitute tool's description;
* **combination** — two same-category tasks fused into one query whose
  tool set is the union (the multi-tool synergy signal clustering needs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.lexicon import ConceptLexicon, default_lexicon
from repro.embedding.tokenizer import Tokenizer, stem
from repro.suites.base import BenchmarkSuite, Query
from repro.suites.rouge import rouge_l
from repro.utils.rng import derive_rng
from repro.utils.text import normalize_whitespace, truncate_words


@dataclass(frozen=True)
class AugmentedQuery:
    """A clustering sample: synthetic text plus the tools it exercises."""

    text: str
    tools: tuple[str, ...]
    kind: str
    source_qids: tuple[str, ...]
    rouge_to_source: float


class AugmentationEngine:
    """Deterministic generator of contextually-proximate query variants."""

    def __init__(
        self,
        suite: BenchmarkSuite,
        lexicon: ConceptLexicon | None = None,
        queries_per_category: int = 10,
        variants_per_query: int = 3,
        rouge_band: tuple[float, float] = (0.05, 0.95),
        seed: int = 0,
    ):
        self.suite = suite
        self.lexicon = lexicon if lexicon is not None else default_lexicon()
        self.queries_per_category = queries_per_category
        self.variants_per_query = variants_per_query
        self.rouge_band = rouge_band
        self.seed = seed
        self._tokenizer = Tokenizer(remove_stopwords=False, apply_stem=False)
        # reverse map: concept -> terms, for synonym substitution
        self._terms_of: dict[str, tuple[str, ...]] = {
            concept: tuple(term for term in terms if " " not in term)
            for concept, terms in self.lexicon.concepts.items()
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self) -> list[AugmentedQuery]:
        """Produce the augmented pool from the suite's *train* split.

        Output is filtered to the configured ROUGE-L band: near-1 scores
        are redundant copies, near-0 scores lost the task context (the
        paper's "diverse tool combinations without redundancy").
        """
        rng = derive_rng("augment", self.suite.name, self.seed)
        samples: list[AugmentedQuery] = []
        for category in self._categories():
            pool = self.suite.queries_by_category(category, split="train")
            if not pool:
                continue
            picks = rng.permutation(len(pool))[: self.queries_per_category]
            chosen = [pool[int(i)] for i in picks]
            for query in chosen:
                for variant_idx in range(self.variants_per_query):
                    sample = self._one_variant(query, chosen, variant_idx, rng)
                    if sample is not None and self._in_band(sample):
                        samples.append(sample)
        return samples

    # ------------------------------------------------------------------
    # variant generators
    # ------------------------------------------------------------------
    def _one_variant(self, query: Query, pool: list[Query], variant_idx: int,
                     rng: np.random.Generator) -> AugmentedQuery | None:
        kind = ("paraphrase", "permutation", "combination")[variant_idx % 3]
        if kind == "paraphrase":
            return self._paraphrase(query, rng)
        if kind == "permutation":
            return self._permutation(query, rng)
        return self._combination(query, pool, rng)

    def _paraphrase(self, query: Query, rng: np.random.Generator) -> AugmentedQuery:
        text = self.paraphrase_text(query.text, rng, substitution_rate=0.45)
        return AugmentedQuery(
            text=text,
            tools=tuple(dict.fromkeys(query.gold_tools)),
            kind="paraphrase",
            source_qids=(query.qid,),
            rouge_to_source=rouge_l(text, query.text),
        )

    def _permutation(self, query: Query, rng: np.random.Generator) -> AugmentedQuery | None:
        """Swap one gold step for a sibling tool of the same catalog category."""
        registry = self.suite.registry
        swappable = [
            (idx, call) for idx, call in enumerate(query.gold_calls)
            if len(registry.by_category(registry.get(call.tool).category)) > 1
        ]
        if not swappable:
            return None
        idx, call = swappable[int(rng.integers(len(swappable)))]
        chain_tools = set(query.gold_tools)
        siblings = [
            tool for tool in registry.by_category(registry.get(call.tool).category)
            if tool.name != call.tool and tool.name not in chain_tools
        ]
        if not siblings:
            return None
        substitute = siblings[int(rng.integers(len(siblings)))]
        hint = truncate_words(substitute.description, 8)
        text = normalize_whitespace(f"{query.text} Instead, {hint.lower()}")
        tools = list(dict.fromkeys(query.gold_tools))
        tools[tools.index(call.tool)] = substitute.name
        return AugmentedQuery(
            text=self.paraphrase_text(text, rng, substitution_rate=0.2),
            tools=tuple(dict.fromkeys(tools)),
            kind="permutation",
            source_qids=(query.qid,),
            rouge_to_source=rouge_l(text, query.text),
        )

    def _combination(self, query: Query, pool: list[Query],
                     rng: np.random.Generator) -> AugmentedQuery | None:
        partners = [other for other in pool if other.qid != query.qid]
        if not partners:
            return None
        partner = partners[int(rng.integers(len(partners)))]
        text = normalize_whitespace(f"{query.text} Then also {partner.text.lower()}")
        tools = tuple(dict.fromkeys(query.gold_tools + partner.gold_tools))
        return AugmentedQuery(
            text=self.paraphrase_text(text, rng, substitution_rate=0.15),
            tools=tools,
            kind="combination",
            source_qids=(query.qid, partner.qid),
            rouge_to_source=rouge_l(text, query.text),
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def paraphrase_text(self, text: str, rng: np.random.Generator,
                        substitution_rate: float) -> str:
        """Replace words with same-concept synonyms at the given rate."""
        words = self._tokenizer.words(text)
        replaced: list[str] = []
        for word in words:
            concepts = self.lexicon.lookup(stem(word))
            if concepts and rng.random() < substitution_rate:
                concept = concepts[int(rng.integers(len(concepts)))]
                candidates = [term for term in self._terms_of.get(concept, ())
                              if term != word]
                if candidates:
                    replaced.append(candidates[int(rng.integers(len(candidates)))])
                    continue
            replaced.append(word)
        return " ".join(replaced)

    def _categories(self) -> list[str]:
        seen: dict[str, None] = {}
        for query in self.suite.train_queries:
            seen.setdefault(query.category, None)
        return list(seen)

    def _in_band(self, sample: AugmentedQuery) -> bool:
        low, high = self.rouge_band
        return low <= sample.rouge_to_source <= high

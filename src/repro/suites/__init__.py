"""Benchmark-suite substrate: tool catalogs, query generators, augmentation.

Two suites mirror the paper's evaluation targets:

* ``bfcl`` — a BFCL-like general function-calling suite: 51 tools, one
  gold call per query (sub-questions are independent);
* ``geoengine`` — a GeoLLM-Engine-like geospatial suite: 46 tools,
  *sequential* gold call chains where each call feeds the next.

Both generate deterministic query pools with gold tool calls, split into
``train`` (used only for Level-2 augmentation/clustering, as in the
paper) and ``eval`` (the 230-query mini-batches the paper reports on).
"""

from repro.registry import SUITES, register_suite
from repro.suites.base import BenchmarkSuite, Query, QueryTurn
from repro.suites.bfcl import build_bfcl_suite
from repro.suites.browser import build_browser_suite
from repro.suites.edgehome import build_edgehome_suite
from repro.suites.geoengine import build_geoengine_suite

register_suite("bfcl", build_bfcl_suite)
register_suite("geoengine", build_geoengine_suite)
register_suite("edgehome", build_edgehome_suite)
register_suite("browser", build_browser_suite)


def load_suite(name: str, n_queries: int | None = None, seed: int | None = None,
               catalog=None) -> BenchmarkSuite:
    """Load a suite by name through the suite registry.

    Built-ins: ``"bfcl"`` | ``"geoengine"`` | ``"edgehome"`` |
    ``"browser"`` (multi-turn, stateful); anything
    added via :func:`repro.registry.register_suite` resolves the same
    way.  ``n_queries`` defaults to the paper's mini-batch size (230).
    ``catalog`` (a :class:`~repro.tools.catalog.ToolCatalog`) overrides
    the suite's tool pool; it is only forwarded when set, so suite
    builders without a ``catalog`` parameter keep working.
    """
    builder = SUITES.get(name)
    kwargs = {}
    if n_queries is not None:
        kwargs["n_queries"] = n_queries
    if seed is not None:
        kwargs["seed"] = seed
    if catalog is not None:
        kwargs["catalog"] = catalog
    return builder(**kwargs)


__all__ = [
    "BenchmarkSuite",
    "Query",
    "QueryTurn",
    "build_bfcl_suite",
    "build_browser_suite",
    "build_edgehome_suite",
    "build_geoengine_suite",
    "load_suite",
]

"""ROUGE similarity scores.

The paper measures augmented-query quality "based on a similarity score
(i.e., ROUGE score following [12], [38])".  This module implements
ROUGE-1 and ROUGE-L F-measures over whitespace/word tokens.
"""

from __future__ import annotations

from collections import Counter

from repro.embedding.tokenizer import Tokenizer

_tokenizer = Tokenizer(remove_stopwords=False, apply_stem=False)


def _f_measure(matches: int, candidate_len: int, reference_len: int) -> float:
    if candidate_len == 0 or reference_len == 0 or matches == 0:
        return 0.0
    precision = matches / candidate_len
    recall = matches / reference_len
    return 2.0 * precision * recall / (precision + recall)


def rouge_1(candidate: str, reference: str) -> float:
    """Unigram-overlap ROUGE-1 F-measure in [0, 1]."""
    cand = Counter(_tokenizer.words(candidate))
    ref = Counter(_tokenizer.words(reference))
    matches = sum((cand & ref).values())
    return _f_measure(matches, sum(cand.values()), sum(ref.values()))


def _lcs_length(a: list[str], b: list[str]) -> int:
    """Length of the longest common subsequence (O(len(a)*len(b)))."""
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for token_a in a:
        current = [0]
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[-1]))
        previous = current
    return previous[-1]


def rouge_l(candidate: str, reference: str) -> float:
    """Longest-common-subsequence ROUGE-L F-measure in [0, 1]."""
    cand = _tokenizer.words(candidate)
    ref = _tokenizer.words(reference)
    return _f_measure(_lcs_length(cand, ref), len(cand), len(ref))

"""BFCL-substitute query generator: single-call general function calling.

Each template produces a user query plus the single gold call that solves
it (BFCL "mainly involves single function calls for each query", paper
Section IV).  Queries are sampled template-first so every tool keeps
roughly equal representation, then shuffled deterministically.
"""

from __future__ import annotations

from repro.suites.base import PAPER_QUERY_BATCH, BenchmarkSuite, Query
from repro.suites.templating import QueryTemplate
from repro.tools.catalog import ToolCatalog, load_catalog
from repro.tools.schema import ToolCall
from repro.utils.rng import derive_rng


def _call(tool: str, **arguments) -> list[ToolCall]:
    return [ToolCall(tool, arguments)]


BFCL_TEMPLATES: tuple[QueryTemplate, ...] = (
    # math -----------------------------------------------------------------
    QueryTemplate("math", "What is the value of ({number} + 17) * 3?",
                  lambda s: _call("calculate_expression", expression=f"({s['number']} + 17) * 3")),
    QueryTemplate("math", "Solve the quadratic equation 2x^2 - {small_int}x - 9 = 0.",
                  lambda s: _call("solve_quadratic", a=2.0, b=-float(s["small_int"]), c=-9.0)),
    QueryTemplate("math", "Compute the factorial of {small_int}.",
                  lambda s: _call("compute_factorial", n=s["small_int"])),
    QueryTemplate("math", "What are the prime factors of {number}?",
                  lambda s: _call("find_prime_factors", n=s["number"])),
    QueryTemplate("math", "Differentiate x**3 + {small_int}*x with respect to x.",
                  lambda s: _call("compute_derivative",
                                  function=f"x**3 + {s['small_int']}*x", variable="x")),
    QueryTemplate("math", "Integrate sin(x) from 0 to {x_value}.",
                  lambda s: _call("definite_integral", function="sin(x)",
                                  lower=0.0, upper=s["x_value"])),
    QueryTemplate("math", "Find the determinant of the matrix [[1, 2], [3, {small_int}]].",
                  lambda s: _call("matrix_determinant",
                                  matrix=[[1.0, 2.0], [3.0, float(s["small_int"])]])),
    # statistics -----------------------------------------------------------
    QueryTemplate("statistics",
                  "Give me the mean and standard deviation of 4, 8, {small_int}, 16 and 23.",
                  lambda s: _call("descriptive_statistics",
                                  values=[4.0, 8.0, float(s["small_int"]), 16.0, 23.0])),
    QueryTemplate("statistics",
                  "Fit a line through the points x = 1,2,3,4 and y = 2,4,5,{small_int}.",
                  lambda s: _call("linear_regression", x=[1.0, 2.0, 3.0, 4.0],
                                  y=[2.0, 4.0, 5.0, float(s["small_int"])])),
    QueryTemplate("statistics",
                  "What is the probability of exactly 3 heads in {small_int} fair coin flips?",
                  lambda s: _call("probability_binomial", trials=s["small_int"],
                                  successes=3, p=0.5)),
    QueryTemplate("statistics",
                  "Draw {small_int} random numbers between 0 and {number}.",
                  lambda s: _call("random_sample", low=0.0, high=float(s["number"]),
                                  size=s["small_int"])),
    # geometry ---------------------------------------------------------------
    QueryTemplate("geometry", "Find the area of a triangle with base {small_int} and height {x_value}.",
                  lambda s: _call("triangle_area", base=float(s["small_int"]), height=s["x_value"])),
    QueryTemplate("geometry", "What are the circumference and area of a circle of radius {x_value}?",
                  lambda s: _call("circle_properties", radius=s["x_value"])),
    QueryTemplate("geometry", "How far apart are the points (1, 2) and ({small_int}, {x_value})?",
                  lambda s: _call("distance_between_points", x1=1.0, y1=2.0,
                                  x2=float(s["small_int"]), y2=s["x_value"])),
    # weather ----------------------------------------------------------------
    QueryTemplate("weather", "What's the weather like in {city} right now?",
                  lambda s: _call("get_current_weather", city=s["city"])),
    QueryTemplate("weather", "Will it rain in {city} over the next {small_int} days?",
                  lambda s: _call("get_weather_forecast", city=s["city"], days=s["small_int"])),
    QueryTemplate("weather", "How is the air quality in {city} today?",
                  lambda s: _call("get_air_quality", city=s["city"])),
    QueryTemplate("weather", "When does the sun rise and set in {city}?",
                  lambda s: _call("get_sunrise_sunset", city=s["city"])),
    # time & calendar ----------------------------------------------------------
    QueryTemplate("time_calendar", "What time is it in {city} at the moment?",
                  lambda s: _call("get_current_time", location=s["city"])),
    QueryTemplate("time_calendar",
                  "Convert {date} 14:00 from {timezone_a} to {timezone_b}.",
                  lambda s: _call("convert_timezone", time=f"{s['date']} 14:00",
                                  from_zone=s["timezone_a"], to_zone=s["timezone_b"])),
    QueryTemplate("time_calendar",
                  "Put a {event_title} on my calendar for {date} at {time}.",
                  lambda s: _call("create_calendar_event", title=s["event_title"],
                                  date=s["date"], time=s["time"])),
    QueryTemplate("time_calendar", "What do I have scheduled on {date}?",
                  lambda s: _call("list_calendar_events", date=s["date"])),
    QueryTemplate("time_calendar", "Remind me to call mom at {time}.",
                  lambda s: _call("set_reminder", message="call mom", time=s["time"])),
    # finance ------------------------------------------------------------------
    QueryTemplate("finance", "How is {ticker} stock doing today?",
                  lambda s: _call("get_stock_price", ticker=s["ticker"])),
    QueryTemplate("finance", "Convert {amount} {currency} to EUR.",
                  lambda s: _call("convert_currency", amount=s["amount"],
                                  from_currency=s["currency"], to_currency="EUR")),
    QueryTemplate("finance",
                  "What's the monthly payment on a {amount} thousand dollar loan "
                  "at {rate}% over {big_int} years?",
                  lambda s: _call("compute_loan_payment", principal=s["amount"] * 1000,
                                  annual_rate=s["rate"], years=s["big_int"])),
    QueryTemplate("finance",
                  "If I invest {amount} dollars at {rate}% compounded yearly, "
                  "what will it be worth in {small_int} years?",
                  lambda s: _call("compound_interest", principal=s["amount"],
                                  annual_rate=s["rate"], years=s["small_int"])),
    QueryTemplate("finance", "What's the price of {crypto} right now?",
                  lambda s: _call("get_crypto_price", symbol=s["crypto"])),
    QueryTemplate("finance",
                  "Estimate my income tax if I made {income} dollars filing as {status}.",
                  lambda s: _call("estimate_tax", income=s["income"], status=s["status"])),
    # text & language -------------------------------------------------------------
    QueryTemplate("text_language", "Translate '{phrase}' into {language}.",
                  lambda s: _call("translate_text", text=s["phrase"],
                                  target_language=s["language"])),
    QueryTemplate("text_language",
                  "Summarize this article about {topic} in {small_int} sentences: "
                  "'{topic} has seen rapid progress in recent years...'",
                  lambda s: _call("summarize_text",
                                  text=f"{s['topic']} has seen rapid progress in recent years...",
                                  max_sentences=s["small_int"])),
    QueryTemplate("text_language", "Proofread this sentence: '{phrase}'.",
                  lambda s: _call("check_grammar", text=s["phrase"])),
    QueryTemplate("text_language",
                  "Is the sentiment of this review positive: 'the {dish} was amazing'?",
                  lambda s: _call("analyze_sentiment", text=f"the {s['dish']} was amazing")),
    QueryTemplate("text_language",
                  "Pull the top {small_int} keywords out of my notes on {topic}.",
                  lambda s: _call("extract_keywords", text=f"notes on {s['topic']}",
                                  max_keywords=s["small_int"])),
    # knowledge ----------------------------------------------------------------
    QueryTemplate("knowledge", "Look up {topic} on Wikipedia for me.",
                  lambda s: _call("search_wikipedia", query=s["topic"])),
    QueryTemplate("knowledge", "Search the web for the best laptops for {topic}.",
                  lambda s: _call("web_search", query=f"best laptops for {s['topic']}")),
    QueryTemplate("knowledge", "What are today's headlines about {topic}?",
                  lambda s: _call("get_news_headlines", topic=s["topic"])),
    QueryTemplate("knowledge", "What does the word '{word}' mean?",
                  lambda s: _call("define_word", word=s["word"])),
    QueryTemplate("knowledge", "Tell me a fun fact about {topic}.",
                  lambda s: _call("get_fun_fact", subject=s["topic"])),
    # travel & local --------------------------------------------------------------
    QueryTemplate("travel_local", "Find flights from {city} to {country} on {date}.",
                  lambda s: _call("search_flights", origin=s["city"],
                                  destination=s["country"], date=s["date"])),
    QueryTemplate("travel_local",
                  "Find a hotel in {city} checking in {date} for {small_int} nights.",
                  lambda s: _call("find_hotels", city=s["city"], check_in=s["date"],
                                  nights=s["small_int"])),
    QueryTemplate("travel_local", "Where can I get {cuisine} food in {city}?",
                  lambda s: _call("find_restaurants", location=s["city"], cuisine=s["cuisine"])),
    QueryTemplate("travel_local", "Give me {mode} directions from {city} airport to downtown.",
                  lambda s: _call("get_directions", origin=f"{s['city']} airport",
                                  destination=f"{s['city']} downtown", mode=s["mode"])),
    QueryTemplate("travel_local", "How bad is traffic in {city} right now?",
                  lambda s: _call("get_traffic_info", area=s["city"])),
    # lifestyle --------------------------------------------------------------------
    QueryTemplate("lifestyle", "Find me a recipe for {dish}.",
                  lambda s: _call("search_recipes", query=s["dish"])),
    QueryTemplate("lifestyle", "Tell me about the movie {movie}.",
                  lambda s: _call("get_movie_details", title=s["movie"])),
    QueryTemplate("lifestyle", "Did the {team} win their last game?",
                  lambda s: _call("get_sports_scores", team=s["team"])),
    QueryTemplate("lifestyle", "Recommend some {book_genre} books.",
                  lambda s: _call("recommend_books", query=s["book_genre"])),
    QueryTemplate("lifestyle", "Get me the lyrics of {song} by {artist}.",
                  lambda s: _call("get_song_lyrics", title=s["song"], artist=s["artist"])),
    QueryTemplate("lifestyle",
                  "What's my BMI if I weigh {weight} kg and I'm {height} cm tall?",
                  lambda s: _call("calculate_bmi", weight_kg=s["weight"], height_cm=s["height"])),
    QueryTemplate("lifestyle", "How many calories are in {meal}?",
                  lambda s: _call("count_calories", meal=s["meal"])),
)


def generate_bfcl_queries(n_queries: int, seed: int, split: str) -> list[Query]:
    """Generate ``n_queries`` deterministic BFCL-like queries.

    Templates are cycled so tool coverage stays uniform, then the order
    is shuffled; ``split`` namespaces the RNG so train/eval pools differ.
    """
    rng = derive_rng("bfcl", split, seed)
    order = rng.permutation(len(BFCL_TEMPLATES))
    queries: list[Query] = []
    for index in range(n_queries):
        template = BFCL_TEMPLATES[int(order[index % len(order)])]
        text, calls, _ = template.instantiate(rng)
        queries.append(Query(
            qid=f"bfcl-{split}-{index:04d}",
            text=text,
            category=template.category,
            gold_calls=tuple(calls),
            sequential=False,
        ))
    return queries


def build_bfcl_suite(n_queries: int = PAPER_QUERY_BATCH, seed: int = 0,
                     n_train: int = 120,
                     catalog: ToolCatalog | None = None) -> BenchmarkSuite:
    """Build the BFCL-substitute suite (51 tools, single-call queries).

    ``catalog`` overrides the tool pool (default: the registered
    ``"bfcl"`` catalog).
    """
    return BenchmarkSuite(
        name="bfcl",
        registry=catalog if catalog is not None else load_catalog("bfcl"),
        queries=generate_bfcl_queries(n_queries, seed, split="eval"),
        train_queries=generate_bfcl_queries(n_train, seed, split="train"),
        sequential=False,
    )

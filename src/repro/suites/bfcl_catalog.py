"""BFCL-substitute tool catalog: 51 general-purpose API tools.

The Berkeley Function-Calling Leaderboard cannot be downloaded offline, so
this catalog reproduces its *shape*: a broad pool of independent,
single-purpose APIs spanning maths, weather, language, finance, travel and
lifestyle categories (the paper uses 51 functions from BFCL, Section IV).
Descriptions are deliberately verbose — they are the retrieval corpus.
"""

from __future__ import annotations

from repro.registry import register_catalog
from repro.tools.catalog import ToolCatalog
from repro.tools.registry import ToolRegistry
from repro.tools.schema import ToolParameter as P
from repro.tools.schema import ToolSpec as T


def _bfcl_tools() -> tuple[T, ...]:
    """The 51 BFCL-like tool specs (registration order is stable)."""
    tools = [
        # ------------------------------------------------------------------
        # math (7)
        # ------------------------------------------------------------------
        T("calculate_expression",
          "Evaluate an arithmetic or algebraic expression and return its numeric value.",
          (P("expression", "string", "The mathematical expression to evaluate."),),
          category="math"),
        T("solve_quadratic",
          "Solve a quadratic equation a*x^2 + b*x + c = 0 and return its real roots.",
          (P("a", "number", "Quadratic coefficient."),
           P("b", "number", "Linear coefficient."),
           P("c", "number", "Constant term.")),
          category="math"),
        T("compute_factorial",
          "Compute the factorial of a non-negative integer.",
          (P("n", "integer", "The integer whose factorial is required."),),
          category="math"),
        T("find_prime_factors",
          "Find the prime factorization of an integer number.",
          (P("n", "integer", "The integer to factorize."),),
          category="math"),
        T("compute_derivative",
          "Compute the symbolic derivative of a mathematical function with respect to a variable.",
          (P("function", "string", "Function expression, e.g. 'x**2 + 3*x'."),
           P("variable", "string", "Differentiation variable.", required=False)),
          category="math"),
        T("definite_integral",
          "Numerically integrate a function between a lower and an upper bound.",
          (P("function", "string", "Function expression to integrate."),
           P("lower", "number", "Lower bound of integration."),
           P("upper", "number", "Upper bound of integration.")),
          category="math"),
        T("matrix_determinant",
          "Calculate the determinant of a square matrix given as nested rows.",
          (P("matrix", "array", "Matrix rows, each a list of numbers.", item_type="array"),),
          category="math"),
        # ------------------------------------------------------------------
        # statistics (4)
        # ------------------------------------------------------------------
        T("descriptive_statistics",
          "Compute mean, median, variance and standard deviation of a list of numbers.",
          (P("values", "array", "The numeric samples to summarise.", item_type="number"),),
          category="statistics"),
        T("linear_regression",
          "Fit a simple linear regression between two numeric series and return slope and intercept.",
          (P("x", "array", "Independent variable samples.", item_type="number"),
           P("y", "array", "Dependent variable samples.", item_type="number")),
          category="statistics"),
        T("probability_binomial",
          "Compute the binomial probability of observing k successes in n trials.",
          (P("trials", "integer", "Number of independent trials."),
           P("successes", "integer", "Number of successes of interest."),
           P("p", "number", "Per-trial success probability.")),
          category="statistics"),
        T("random_sample",
          "Draw a uniform random sample of a requested size from a numeric range.",
          (P("low", "number", "Lower bound of the range."),
           P("high", "number", "Upper bound of the range."),
           P("size", "integer", "Number of samples to draw.")),
          category="statistics"),
        # ------------------------------------------------------------------
        # geometry (3)
        # ------------------------------------------------------------------
        T("triangle_area",
          "Calculate the area of a triangle from its base and height.",
          (P("base", "number", "Triangle base length."),
           P("height", "number", "Triangle height.")),
          category="geometry"),
        T("circle_properties",
          "Compute the circumference and area of a circle from its radius.",
          (P("radius", "number", "Circle radius."),),
          category="geometry"),
        T("distance_between_points",
          "Compute the euclidean distance between two 2-D points.",
          (P("x1", "number", "First point x."), P("y1", "number", "First point y."),
           P("x2", "number", "Second point x."), P("y2", "number", "Second point y.")),
          category="geometry"),
        # ------------------------------------------------------------------
        # weather (4)
        # ------------------------------------------------------------------
        T("get_current_weather",
          "Get the current weather conditions, temperature and humidity for a city.",
          (P("city", "string", "City name to query."),
           P("units", "string", "Measurement units.", required=False,
             enum=("metric", "imperial"))),
          category="weather"),
        T("get_weather_forecast",
          "Retrieve the multi-day weather forecast for a location, including rain probability.",
          (P("city", "string", "City name to query."),
           P("days", "integer", "Forecast horizon in days.")),
          category="weather"),
        T("get_air_quality",
          "Fetch the current air quality index and main pollutant for a city.",
          (P("city", "string", "City name to query."),),
          category="weather"),
        T("get_sunrise_sunset",
          "Get today's sunrise and sunset times for a location.",
          (P("city", "string", "City name to query."),),
          category="weather"),
        # ------------------------------------------------------------------
        # time & calendar (5)
        # ------------------------------------------------------------------
        T("get_current_time",
          "Get the current local time in a given city or timezone.",
          (P("location", "string", "City or timezone identifier."),),
          category="time_calendar"),
        T("convert_timezone",
          "Convert a timestamp from one timezone to another.",
          (P("time", "string", "Timestamp to convert, e.g. '2024-03-01 14:00'."),
           P("from_zone", "string", "Source timezone."),
           P("to_zone", "string", "Target timezone.")),
          category="time_calendar"),
        T("create_calendar_event",
          "Create a calendar event with a title, date and time.",
          (P("title", "string", "Event title."),
           P("date", "string", "Event date, e.g. '2024-05-12'."),
           P("time", "string", "Event start time, e.g. '10:30'.")),
          category="time_calendar"),
        T("list_calendar_events",
          "List the calendar events scheduled on a given date.",
          (P("date", "string", "Date to inspect."),),
          category="time_calendar"),
        T("set_reminder",
          "Set a reminder that notifies the user at a specific time.",
          (P("message", "string", "Reminder message."),
           P("time", "string", "When to trigger, e.g. '07:00'.")),
          category="time_calendar"),
        # ------------------------------------------------------------------
        # finance (6)
        # ------------------------------------------------------------------
        T("get_stock_price",
          "Get the latest stock market price and daily change for a ticker symbol.",
          (P("ticker", "string", "Stock ticker symbol, e.g. 'AAPL'."),),
          category="finance"),
        T("convert_currency",
          "Convert an amount of money between two currencies at the latest exchange rate.",
          (P("amount", "number", "Amount to convert."),
           P("from_currency", "string", "Source currency code, e.g. 'USD'."),
           P("to_currency", "string", "Target currency code, e.g. 'EUR'.")),
          category="finance"),
        T("compute_loan_payment",
          "Compute the monthly payment of an amortized loan from principal, rate and term.",
          (P("principal", "number", "Loan principal amount."),
           P("annual_rate", "number", "Annual interest rate in percent."),
           P("years", "integer", "Loan term in years.")),
          category="finance"),
        T("compound_interest",
          "Compute the future value of an investment under compound interest.",
          (P("principal", "number", "Initial investment."),
           P("annual_rate", "number", "Annual interest rate in percent."),
           P("years", "integer", "Investment horizon in years.")),
          category="finance"),
        T("get_crypto_price",
          "Get the current price of a cryptocurrency in a fiat currency.",
          (P("symbol", "string", "Crypto symbol, e.g. 'BTC'."),
           P("fiat", "string", "Fiat currency code.", required=False)),
          category="finance"),
        T("estimate_tax",
          "Estimate the income tax owed for a yearly income and filing status.",
          (P("income", "number", "Gross yearly income."),
           P("status", "string", "Filing status.",
             enum=("single", "married", "head_of_household"))),
          category="finance"),
        # ------------------------------------------------------------------
        # text & language (5)
        # ------------------------------------------------------------------
        T("translate_text",
          "Translate text from one natural language into another.",
          (P("text", "string", "Text to translate."),
           P("target_language", "string", "Language to translate into."),
           P("source_language", "string", "Language of the input text.", required=False)),
          category="text_language"),
        T("summarize_text",
          "Summarize a passage of text into a shorter abstract of a requested length.",
          (P("text", "string", "Text to summarize."),
           P("max_sentences", "integer", "Maximum sentences in the summary.", required=False)),
          category="text_language"),
        T("check_grammar",
          "Proofread text and return grammar and spelling corrections.",
          (P("text", "string", "Text to proofread."),),
          category="text_language"),
        T("analyze_sentiment",
          "Analyze the sentiment polarity of a piece of text (positive, negative, neutral).",
          (P("text", "string", "Text to analyze."),),
          category="text_language"),
        T("extract_keywords",
          "Extract the most relevant keywords and key phrases from a document.",
          (P("text", "string", "Document text."),
           P("max_keywords", "integer", "Maximum number of keywords.", required=False)),
          category="text_language"),
        # ------------------------------------------------------------------
        # knowledge & search (5)
        # ------------------------------------------------------------------
        T("search_wikipedia",
          "Search Wikipedia and return a short encyclopedia summary of the topic.",
          (P("query", "string", "Topic to look up."),),
          category="knowledge"),
        T("web_search",
          "Run a general web search and return the top result snippets.",
          (P("query", "string", "Search query."),
           P("max_results", "integer", "Number of results.", required=False)),
          category="knowledge"),
        T("get_news_headlines",
          "Get the latest news headlines for a topic or category.",
          (P("topic", "string", "News topic or category."),),
          category="knowledge"),
        T("define_word",
          "Look up the dictionary definition of a word.",
          (P("word", "string", "Word to define."),),
          category="knowledge"),
        T("get_fun_fact",
          "Return a random fun fact about a subject.",
          (P("subject", "string", "Subject of interest.", required=False),),
          category="knowledge"),
        # ------------------------------------------------------------------
        # travel & local (5)
        # ------------------------------------------------------------------
        T("search_flights",
          "Search available flights between two airports on a date.",
          (P("origin", "string", "Origin airport or city."),
           P("destination", "string", "Destination airport or city."),
           P("date", "string", "Departure date.")),
          category="travel_local"),
        T("find_hotels",
          "Find hotels available in a city for a date range, sorted by rating.",
          (P("city", "string", "Destination city."),
           P("check_in", "string", "Check-in date."),
           P("nights", "integer", "Number of nights.")),
          category="travel_local"),
        T("find_restaurants",
          "Find restaurants near a location filtered by cuisine type.",
          (P("location", "string", "Neighbourhood or city."),
           P("cuisine", "string", "Cuisine type.", required=False)),
          category="travel_local"),
        T("get_directions",
          "Get turn-by-turn driving directions between two places.",
          (P("origin", "string", "Start location."),
           P("destination", "string", "End location."),
           P("mode", "string", "Travel mode.", required=False,
             enum=("driving", "walking", "transit", "bicycling"))),
          category="travel_local"),
        T("get_traffic_info",
          "Get current road traffic conditions for a route or area.",
          (P("area", "string", "Route or area to check."),),
          category="travel_local"),
        # ------------------------------------------------------------------
        # lifestyle & entertainment (7)
        # ------------------------------------------------------------------
        T("search_recipes",
          "Search cooking recipes that use the given ingredients or dish name.",
          (P("query", "string", "Dish name or ingredients."),
           P("max_results", "integer", "Number of recipes.", required=False)),
          category="lifestyle"),
        T("get_movie_details",
          "Get the synopsis, cast and rating of a movie by title.",
          (P("title", "string", "Movie title."),),
          category="lifestyle"),
        T("get_sports_scores",
          "Get the latest score and status of a sports team's most recent game.",
          (P("team", "string", "Team name."),
           P("league", "string", "Sports league.", required=False)),
          category="lifestyle"),
        T("recommend_books",
          "Recommend books similar to a title or within a genre.",
          (P("query", "string", "Seed title or genre."),),
          category="lifestyle"),
        T("get_song_lyrics",
          "Fetch the lyrics of a song by title and artist.",
          (P("title", "string", "Song title."),
           P("artist", "string", "Performing artist.", required=False)),
          category="lifestyle"),
        T("calculate_bmi",
          "Calculate the body mass index from weight and height.",
          (P("weight_kg", "number", "Body weight in kilograms."),
           P("height_cm", "number", "Height in centimeters.")),
          category="lifestyle"),
        T("count_calories",
          "Estimate the calories contained in a described meal.",
          (P("meal", "string", "Description of the meal."),),
          category="lifestyle"),
    ]
    return tuple(tools)


@register_catalog("bfcl")
def build_bfcl_catalog() -> ToolCatalog:
    """The 51-tool BFCL-like catalog (full variant)."""
    return ToolCatalog("bfcl", _bfcl_tools())


def build_bfcl_registry() -> ToolRegistry:
    """Legacy registry form of the BFCL catalog (same specs, same order)."""
    return ToolRegistry(_bfcl_tools())

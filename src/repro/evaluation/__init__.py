"""Evaluation harness: metrics, sweep runner and table/figure rendering."""

from repro.evaluation.export import dump_run, load_run
from repro.evaluation.metrics import MetricSummary, NormalizedMetrics, summarize
from repro.evaluation.reporting import render_metric_table, render_series
from repro.evaluation.runner import EvaluationRun, ExperimentRunner
from repro.evaluation.stats import (
    ConfidenceInterval,
    bootstrap_ci,
    compare_runs,
    success_rate_ci,
    two_proportion_z,
)

__all__ = [
    "ConfidenceInterval",
    "EvaluationRun",
    "ExperimentRunner",
    "MetricSummary",
    "NormalizedMetrics",
    "bootstrap_ci",
    "compare_runs",
    "dump_run",
    "load_run",
    "render_metric_table",
    "render_series",
    "success_rate_ci",
    "summarize",
    "two_proportion_z",
]

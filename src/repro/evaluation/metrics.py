"""Aggregation of episode results into the paper's four metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.episode import EpisodeResult


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate metrics over one evaluation batch (absolute units)."""

    n_episodes: int
    success_rate: float
    tool_accuracy: float
    mean_time_s: float
    mean_energy_j: float
    avg_power_w: float
    mean_tools_presented: float
    fallback_rate: float
    level_histogram: dict[int, int]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (f"success={self.success_rate:.1%} acc={self.tool_accuracy:.1%} "
                f"time={self.mean_time_s:.1f}s power={self.avg_power_w:.1f}W")


@dataclass(frozen=True)
class NormalizedMetrics:
    """Figure 2/3 row: success/accuracy absolute, time/power vs baseline."""

    success_rate: float
    tool_accuracy: float
    normalized_time: float
    normalized_power: float


def summarize(episodes: list[EpisodeResult]) -> MetricSummary:
    """Reduce a batch of episodes to a :class:`MetricSummary`.

    Average power is energy-weighted (total energy over total time),
    matching how a power meter attached to the board would average.
    """
    if not episodes:
        raise ValueError("cannot summarize an empty episode list")
    times = np.array([episode.time_s for episode in episodes])
    energies = np.array([episode.energy_j for episode in episodes])
    levels: dict[int, int] = {}
    for episode in episodes:
        if episode.selected_level is not None:
            levels[episode.selected_level] = levels.get(episode.selected_level, 0) + 1
    return MetricSummary(
        n_episodes=len(episodes),
        success_rate=float(np.mean([episode.success for episode in episodes])),
        tool_accuracy=float(np.mean([episode.tool_accuracy for episode in episodes])),
        mean_time_s=float(np.mean(times)),
        mean_energy_j=float(np.mean(energies)),
        avg_power_w=float(energies.sum() / times.sum()) if times.sum() else 0.0,
        mean_tools_presented=float(np.mean(
            [episode.mean_tools_presented for episode in episodes])),
        fallback_rate=float(np.mean([episode.fallback_used for episode in episodes])),
        level_histogram=levels,
    )


def normalize(candidate: MetricSummary, baseline: MetricSummary) -> NormalizedMetrics:
    """Express time/power relative to the baseline scheme (default=1.0)."""
    if baseline.mean_time_s <= 0 or baseline.avg_power_w <= 0:
        raise ValueError("baseline must have positive time and power")
    return NormalizedMetrics(
        success_rate=candidate.success_rate,
        tool_accuracy=candidate.tool_accuracy,
        normalized_time=candidate.mean_time_s / baseline.mean_time_s,
        normalized_power=candidate.avg_power_w / baseline.avg_power_w,
    )

"""Experiment runner: build agents, run batches, cache shared state."""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import repro.baselines  # noqa: F401 - registers the baseline schemes
import repro.core.pipeline  # noqa: F401 - registers the "lis" scheme
from repro.core.episode import EpisodeResult
from repro.core.levels import SearchLevelBuilder, SearchLevels
from repro.embedding.cache import CachedEmbedder, shared_embedder
from repro.evaluation.metrics import MetricSummary, summarize
from repro.registry import (
    GRID_BACKENDS,
    SchemeContext,
    build_scheme,
    register_grid_backend,
)
from repro.specs import EngineSpec
from repro.suites.base import BenchmarkSuite


@dataclass
class EvaluationRun:
    """One (scheme, model, quant) batch with its raw episodes."""

    scheme: str
    model: str
    quant: str
    episodes: list[EpisodeResult]
    summary: MetricSummary

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.scheme, self.model, self.quant)


@dataclass
class ExperimentRunner:
    """Runs evaluation batches over a suite with shared offline state.

    Search Levels are model-independent, so they are built once per
    runner and reused across the whole model x quant x scheme grid —
    exactly the paper's one-time offline step.

    ``engine`` (an :class:`~repro.specs.EngineSpec`, default ``None`` =
    the simulated engine) selects the LLM backend for every agent this
    runner builds.  It is plain picklable data: the runner snapshot
    carries it to process-pool workers, and each worker re-resolves the
    engine factory by registry name — live HTTP clients never cross the
    pool boundary.
    """

    suite: BenchmarkSuite
    embedder: CachedEmbedder = field(default_factory=shared_embedder)
    engine: EngineSpec | None = None
    _levels: SearchLevels | None = None

    @property
    def levels(self) -> SearchLevels:
        if self._levels is None:
            self._levels = SearchLevelBuilder(embedder=self.embedder).build(self.suite)
        return self._levels

    # ------------------------------------------------------------------
    # agent construction
    # ------------------------------------------------------------------
    def make_agent(self, scheme: str, model: str, quant: str, **kwargs):
        """Build an agent for one grid cell through the scheme registry.

        Built-in scheme names: ``default``, ``gorilla``, ``toolllm``,
        ``lis`` (alias ``lis-k3``), or any parameterized ``lis-k<N>``;
        schemes added via :func:`repro.registry.register_scheme` resolve
        identically.  The factory receives this runner's suite, shared
        embedder, lazily-built Search Levels and engine spec, so every
        cell of a grid reuses one offline index and one LLM backend
        selection.  ``engine`` overrides the runner's engine for this
        one agent (an :class:`~repro.specs.EngineSpec` or engine name).
        """
        engine = kwargs.pop("engine", None)
        if engine is None:
            engine = self.engine
        context = SchemeContext(suite=self.suite, embedder=self.embedder,
                                levels_fn=lambda: self.levels, engine=engine)
        return build_scheme(scheme, model, quant, context, **kwargs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, scheme: str, model: str, quant: str,
            n_queries: int | None = None, **kwargs) -> EvaluationRun:
        """Run one batch (default: every eval query in the suite)."""
        agent = self.make_agent(scheme, model, quant, **kwargs)
        queries = self.suite.queries if n_queries is None else self.suite.queries[:n_queries]
        episodes = [agent.run(query) for query in queries]
        return EvaluationRun(
            scheme=scheme, model=model, quant=quant,
            episodes=episodes, summary=summarize(episodes),
        )

    def run_grid(self, schemes: list[str], models: list[str], quants: list[str],
                 n_queries: int | None = None,
                 max_workers: int | None = None,
                 backend: str = "thread") -> dict[tuple[str, str, str], EvaluationRun]:
        """Run the full scheme x model x quant grid.

        Cells are independent (each builds its own agent/LLM), so they
        execute on a worker pool sized by ``max_workers`` (default: one
        worker per CPU, capped at the cell count; pass 1 to force the
        sequential path).  ``backend`` selects how workers run:

        ``"thread"`` (default)
            A :class:`ThreadPoolExecutor` over shared state.  Episodes
            are GIL-bound pure Python, so wall time barely improves, but
            there is no serialization cost — the right choice for small
            grids and cold caches.
        ``"process"``
            A :class:`ProcessPoolExecutor`: cells are split round-robin
            into one chunk per worker, the runner (suite, Search Levels,
            warm embedder snapshot) is pickled to each worker once, and
            each worker's embedder-cache delta is merged back into the
            parent afterwards.  This is the only backend that scales the
            pure-Python episode loop across cores.
        ``"sequential"``
            Explicit in-process serial execution (same as
            ``max_workers=1``).

        The model-independent offline state — Search Levels and the
        embedder cache warmed with the tool corpus — is built once
        *before* dispatch so every worker shares (or inherits a snapshot
        of) it; every episode draws from named RNG streams, so results
        are bitwise identical to a sequential run regardless of backend
        or scheduling.

        Backends are plugin-dispatched: anything added via
        :func:`repro.registry.register_grid_backend` is selectable here
        by name.
        """
        backend_fn = GRID_BACKENDS.get(backend)
        cells = [(scheme, model, quant)
                 for model in models for quant in quants for scheme in schemes]
        # shared offline state, built exactly once outside the pool
        _ = self.levels
        self.embedder.encode(self.suite.registry.descriptions())
        if max_workers is None:
            max_workers = min(len(cells), os.cpu_count() or 1)
        if max_workers <= 1 or len(cells) <= 1:
            # no parallelism to extract — every backend degenerates to
            # the in-process serial loop
            backend_fn = GRID_BACKENDS.get("sequential")
        runs = backend_fn(self, cells, n_queries, max_workers)
        return {run.key: run for run in runs}

    def _run_grid_process(self, cells, n_queries, max_workers) -> list[EvaluationRun]:
        """Fan grid cells out to worker processes, merge caches back.

        Cells are dealt round-robin into one chunk per worker (cheap
        static balancing: neighbouring cells share the scheme and have
        similar cost), so the ~1 MB runner snapshot is pickled once per
        worker, not once per cell.  Workers return their episode batches
        plus an :meth:`CachedEmbedder.export_cache` snapshot; merging the
        snapshots keeps the parent's cache as warm as a sequential run
        would have left it, so later phases don't pay re-encoding.
        """
        n_workers = min(max_workers, len(cells))
        chunks = [cells[start::n_workers] for start in range(n_workers)]
        by_cell: dict[tuple[str, str, str], EvaluationRun] = {}
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [pool.submit(_run_grid_chunk, self, chunk, n_queries)
                       for chunk in chunks]
            for future in futures:
                chunk_runs, cache_snapshot = future.result()
                self.embedder.merge_cache(cache_snapshot)
                for run in chunk_runs:
                    by_cell[run.key] = run
        # deterministic ordering regardless of which worker finished first
        return [by_cell[cell] for cell in cells]


@register_grid_backend("sequential")
def _grid_sequential(runner: ExperimentRunner, cells, n_queries,
                     max_workers) -> list[EvaluationRun]:
    """Explicit in-process serial execution."""
    return [runner.run(*cell, n_queries=n_queries) for cell in cells]


@register_grid_backend("thread")
def _grid_thread(runner: ExperimentRunner, cells, n_queries,
                 max_workers) -> list[EvaluationRun]:
    """Thread pool over shared state (no serialization cost)."""
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(
            lambda cell: runner.run(*cell, n_queries=n_queries), cells))


@register_grid_backend("process")
def _grid_process(runner: ExperimentRunner, cells, n_queries,
                  max_workers) -> list[EvaluationRun]:
    """Process pool — the only backend that scales the episode loop."""
    return runner._run_grid_process(cells, n_queries, max_workers)


def _run_grid_chunk(runner: ExperimentRunner, cells, n_queries):
    """Process-pool worker body: run a chunk of grid cells.

    Module-level so it pickles by reference; the runner argument arrives
    as a deep snapshot of the parent's (suite, levels, embedder) state.
    Only the cache entries this worker *adds* are shipped back — the
    inherited snapshot is already in the parent.
    """
    inherited = runner.embedder.cached_texts()
    runs = [runner.run(*cell, n_queries=n_queries) for cell in cells]
    return runs, runner.embedder.export_cache(exclude=inherited)

"""Experiment runner: build agents, run batches, cache shared state."""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.baselines import DefaultAgent, GorillaAgent
from repro.core.episode import EpisodeResult
from repro.core.levels import SearchLevelBuilder, SearchLevels
from repro.core.pipeline import LessIsMoreAgent
from repro.embedding.cache import CachedEmbedder, shared_embedder
from repro.evaluation.metrics import MetricSummary, summarize
from repro.llm import SimulatedLLM
from repro.suites.base import BenchmarkSuite


@dataclass
class EvaluationRun:
    """One (scheme, model, quant) batch with its raw episodes."""

    scheme: str
    model: str
    quant: str
    episodes: list[EpisodeResult]
    summary: MetricSummary

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.scheme, self.model, self.quant)


@dataclass
class ExperimentRunner:
    """Runs evaluation batches over a suite with shared offline state.

    Search Levels are model-independent, so they are built once per
    runner and reused across the whole model x quant x scheme grid —
    exactly the paper's one-time offline step.
    """

    suite: BenchmarkSuite
    embedder: CachedEmbedder = field(default_factory=shared_embedder)
    _levels: SearchLevels | None = None

    @property
    def levels(self) -> SearchLevels:
        if self._levels is None:
            self._levels = SearchLevelBuilder(embedder=self.embedder).build(self.suite)
        return self._levels

    # ------------------------------------------------------------------
    # agent construction
    # ------------------------------------------------------------------
    def make_agent(self, scheme: str, model: str, quant: str, **kwargs):
        """Build an agent for one grid cell.

        Scheme names: ``default``, ``gorilla``, ``lis`` (alias
        ``lis-k3``), ``lis-k5``, or any ``lis-k<N>``.
        """
        llm = SimulatedLLM.from_registry(model, quant)
        scheme = scheme.lower()
        if scheme == "default":
            return DefaultAgent(llm=llm, suite=self.suite, **kwargs)
        if scheme == "gorilla":
            return GorillaAgent(llm=llm, suite=self.suite,
                                embedder=self.embedder, **kwargs)
        if scheme.startswith("lis"):
            k = 3
            if "-k" in scheme:
                k = int(scheme.split("-k", 1)[1])
            return LessIsMoreAgent(llm=llm, suite=self.suite, levels=self.levels,
                                   k=k, embedder=self.embedder, **kwargs)
        raise ValueError(f"unknown scheme {scheme!r}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, scheme: str, model: str, quant: str,
            n_queries: int | None = None, **kwargs) -> EvaluationRun:
        """Run one batch (default: every eval query in the suite)."""
        agent = self.make_agent(scheme, model, quant, **kwargs)
        queries = self.suite.queries if n_queries is None else self.suite.queries[:n_queries]
        episodes = [agent.run(query) for query in queries]
        return EvaluationRun(
            scheme=scheme, model=model, quant=quant,
            episodes=episodes, summary=summarize(episodes),
        )

    def run_grid(self, schemes: list[str], models: list[str], quants: list[str],
                 n_queries: int | None = None,
                 max_workers: int | None = None) -> dict[tuple[str, str, str], EvaluationRun]:
        """Run the full scheme x model x quant grid.

        Cells are independent (each builds its own agent/LLM), so they
        execute on a thread pool sized by ``max_workers`` (default: one
        worker per CPU, capped at the cell count; pass 1 to force the
        sequential path).  The model-independent offline state — Search
        Levels and the embedder cache warmed with the tool corpus — is
        built once *before* dispatch so every worker shares it; the
        embedder cache and direction bank are lock-protected, and every
        episode draws from named RNG streams, so results are identical
        to a sequential run regardless of scheduling.
        """
        cells = [(scheme, model, quant)
                 for model in models for quant in quants for scheme in schemes]
        # shared offline state, built exactly once outside the pool
        _ = self.levels
        self.embedder.encode(self.suite.registry.descriptions())
        if max_workers is None:
            max_workers = min(len(cells), os.cpu_count() or 1)
        if max_workers <= 1 or len(cells) <= 1:
            runs = [self.run(*cell, n_queries=n_queries) for cell in cells]
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                runs = list(pool.map(
                    lambda cell: self.run(*cell, n_queries=n_queries), cells))
        return {run.key: run for run in runs}

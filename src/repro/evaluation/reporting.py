"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

from repro.evaluation.metrics import MetricSummary, NormalizedMetrics, normalize


def render_metric_table(rows: dict[str, MetricSummary], title: str = "") -> str:
    """Render absolute metrics, one row per configuration label."""
    header = (f"{'configuration':<34} {'success':>8} {'tool acc':>9} "
              f"{'time (s)':>9} {'power (W)':>10} {'#tools':>7}")
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for label, summary in rows.items():
        lines.append(
            f"{label:<34} {summary.success_rate:>7.1%} {summary.tool_accuracy:>8.1%} "
            f"{summary.mean_time_s:>9.2f} {summary.avg_power_w:>10.2f} "
            f"{summary.mean_tools_presented:>7.1f}"
        )
    return "\n".join(lines)


def render_series(rows: dict[str, NormalizedMetrics], title: str = "") -> str:
    """Render a Figure-2/3-style series: normalized time/power columns."""
    header = (f"{'configuration':<34} {'success':>8} {'tool acc':>9} "
              f"{'norm time':>10} {'norm power':>11}")
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for label, row in rows.items():
        lines.append(
            f"{label:<34} {row.success_rate:>7.1%} {row.tool_accuracy:>8.1%} "
            f"{row.normalized_time:>10.3f} {row.normalized_power:>11.3f}"
        )
    return "\n".join(lines)


def figure_series(runs: dict, model: str, quants: list[str],
                  schemes: list[str]) -> dict[str, NormalizedMetrics]:
    """Build one model's Figure-2/3 panel from a grid of runs.

    Normalization follows the paper: each (model, quant) cell is divided
    by the *default* scheme of the same (model, quant).
    """
    rows: dict[str, NormalizedMetrics] = {}
    for quant in quants:
        baseline = runs[("default", model, quant)].summary
        for scheme in schemes:
            summary = runs[(scheme, model, quant)].summary
            rows[f"{model}-{quant} {scheme}"] = normalize(summary, baseline)
    return rows

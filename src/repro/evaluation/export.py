"""JSON persistence for evaluation runs.

Sweeps over the full model x quant x scheme grid are expensive; this
module round-trips :class:`~repro.evaluation.runner.EvaluationRun`
batches to JSON so figures can be re-rendered (or compared across
calibrations) without re-running episodes.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.episode import EpisodeResult, StepRecord
from repro.evaluation.metrics import summarize
from repro.evaluation.runner import EvaluationRun


def episode_to_dict(episode: EpisodeResult) -> dict[str, Any]:
    """Flatten one episode to JSON-compatible primitives."""
    return {
        "qid": episode.qid,
        "scheme": episode.scheme,
        "model": episode.model,
        "quant": episode.quant,
        "selected_level": episode.selected_level,
        "fallback_used": episode.fallback_used,
        "time_s": episode.time_s,
        "energy_j": episode.energy_j,
        "avg_power_w": episode.avg_power_w,
        "peak_memory_gb": episode.peak_memory_gb,
        "n_llm_calls": episode.n_llm_calls,
        "prompt_tokens": episode.prompt_tokens,
        "completion_tokens": episode.completion_tokens,
        "steps": [
            {
                "step_index": step.step_index,
                "tool_called": step.tool_called,
                "correct_tool": step.correct_tool,
                "execution_ok": step.execution_ok,
                "n_tools_presented": step.n_tools_presented,
                "retried": step.retried,
            }
            for step in episode.steps
        ],
    }


def episode_from_dict(payload: dict[str, Any]) -> EpisodeResult:
    """Inverse of :func:`episode_to_dict`."""
    episode = EpisodeResult(
        qid=payload["qid"], scheme=payload["scheme"],
        model=payload["model"], quant=payload["quant"],
        selected_level=payload["selected_level"],
        fallback_used=payload["fallback_used"],
        time_s=payload["time_s"], energy_j=payload["energy_j"],
        avg_power_w=payload["avg_power_w"],
        peak_memory_gb=payload["peak_memory_gb"],
        n_llm_calls=payload["n_llm_calls"],
        prompt_tokens=payload["prompt_tokens"],
        completion_tokens=payload["completion_tokens"],
    )
    episode.steps = [StepRecord(**step) for step in payload["steps"]]
    return episode


def dump_run(run: EvaluationRun) -> str:
    """Serialize one evaluation batch (episodes carry all information)."""
    return json.dumps({
        "scheme": run.scheme,
        "model": run.model,
        "quant": run.quant,
        "episodes": [episode_to_dict(episode) for episode in run.episodes],
    })


def load_run(data: str) -> EvaluationRun:
    """Rebuild a batch; the summary is recomputed from the episodes."""
    payload = json.loads(data)
    episodes = [episode_from_dict(item) for item in payload["episodes"]]
    return EvaluationRun(
        scheme=payload["scheme"], model=payload["model"], quant=payload["quant"],
        episodes=episodes, summary=summarize(episodes),
    )

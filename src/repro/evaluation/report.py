"""Markdown report generation from evaluation grids.

Turns a :meth:`~repro.evaluation.runner.ExperimentRunner.run_grid` result
into a self-contained markdown document (the format EXPERIMENTS.md is
built from), with per-model panels, normalized columns and bootstrap
error bars.
"""

from __future__ import annotations

from repro.evaluation.metrics import normalize
from repro.evaluation.runner import EvaluationRun
from repro.evaluation.stats import success_rate_ci


def grid_report(
    runs: dict[tuple[str, str, str], EvaluationRun],
    models: list[str],
    quants: list[str],
    schemes: list[str],
    title: str = "Evaluation report",
    baseline_scheme: str = "default",
) -> str:
    """Render a full grid as markdown.

    Every (model, quant) cell is normalized against ``baseline_scheme``
    of the same cell, matching the paper's Figure 2/3 convention.
    """
    lines = [f"# {title}", ""]
    for model in models:
        lines.append(f"## {model}")
        lines.append("")
        lines.append("| quant | scheme | success (95% CI) | tool acc | "
                      "norm time | norm power | #tools |")
        lines.append("|---|---|---|---|---|---|---|")
        for quant in quants:
            baseline = runs[(baseline_scheme, model, quant)].summary
            for scheme in schemes:
                run = runs[(scheme, model, quant)]
                summary = run.summary
                norm = normalize(summary, baseline)
                ci = success_rate_ci(run.episodes)
                lines.append(
                    f"| {quant} | {scheme} | {summary.success_rate:.1%} "
                    f"[{ci.low:.1%}, {ci.high:.1%}] | {summary.tool_accuracy:.1%} "
                    f"| {norm.normalized_time:.2f} | {norm.normalized_power:.2f} "
                    f"| {summary.mean_tools_presented:.1f} |")
        lines.append("")
    return "\n".join(lines)


def comparison_paragraph(runs: dict[tuple[str, str, str], EvaluationRun],
                         model: str, quant: str,
                         scheme_a: str = "lis-k3",
                         scheme_b: str = "default") -> str:
    """One-sentence textual comparison with significance annotation."""
    from repro.evaluation.stats import two_proportion_z

    run_a = runs[(scheme_a, model, quant)]
    run_b = runs[(scheme_b, model, quant)]
    rate_a = run_a.summary.success_rate
    rate_b = run_b.summary.success_rate
    p_value = two_proportion_z(
        sum(episode.success for episode in run_a.episodes), len(run_a.episodes),
        sum(episode.success for episode in run_b.episodes), len(run_b.episodes),
    )
    verdict = "significant" if p_value < 0.05 else "not significant"
    direction = "improves on" if rate_a > rate_b else "trails"
    return (f"{scheme_a} {direction} {scheme_b} for {model}-{quant}: "
            f"{rate_a:.1%} vs {rate_b:.1%} success "
            f"(p={p_value:.3f}, {verdict} at alpha=0.05).")

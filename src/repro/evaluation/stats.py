"""Uncertainty quantification for evaluation batches.

The paper reports point estimates over 230-query mini-batches; this
module adds seeded bootstrap confidence intervals and a two-proportion
significance test so reproduced comparisons ("LiS beats default") can be
stated with error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.episode import EpisodeResult
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a bootstrap interval."""

    point: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.point:.3f} [{self.low:.3f}, {self.high:.3f}]"


def bootstrap_ci(
    values: list[float] | np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed_stream: str = "bootstrap",
) -> ConfidenceInterval:
    """Percentile-bootstrap CI of the mean (deterministic per stream)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.5 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0.5, 1), got {confidence}")
    rng = derive_rng(seed_stream, values.size, n_resamples)
    indices = rng.integers(0, values.size, size=(n_resamples, values.size))
    means = values[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        point=float(values.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def success_rate_ci(episodes: list[EpisodeResult], confidence: float = 0.95,
                    metric: str = "success") -> ConfidenceInterval:
    """Bootstrap CI over a batch's success (or tool-accuracy) indicator."""
    if metric == "success":
        values = [float(episode.success) for episode in episodes]
    elif metric == "tool_accuracy":
        values = [float(episode.tool_accuracy) for episode in episodes]
    else:
        raise ValueError(f"unknown metric {metric!r}")
    return bootstrap_ci(values, confidence=confidence,
                        seed_stream=f"ci-{metric}-{len(episodes)}")


def two_proportion_z(successes_a: int, n_a: int, successes_b: int, n_b: int) -> float:
    """Two-sided p-value for H0: rate_a == rate_b (pooled z-test).

    Used to flag whether a scheme comparison at the evaluated batch size
    is statistically meaningful rather than sampling noise.
    """
    if min(n_a, n_b) <= 0:
        raise ValueError("sample sizes must be positive")
    if not (0 <= successes_a <= n_a and 0 <= successes_b <= n_b):
        raise ValueError("successes out of range")
    p_a, p_b = successes_a / n_a, successes_b / n_b
    pooled = (successes_a + successes_b) / (n_a + n_b)
    variance = pooled * (1.0 - pooled) * (1.0 / n_a + 1.0 / n_b)
    if variance == 0.0:
        return 1.0
    z = (p_a - p_b) / math.sqrt(variance)
    # two-sided normal tail via erfc
    return float(math.erfc(abs(z) / math.sqrt(2.0)))


def compare_runs(episodes_a: list[EpisodeResult], episodes_b: list[EpisodeResult]) -> dict:
    """Summary comparison of two batches: rates, CIs and the p-value."""
    ci_a = success_rate_ci(episodes_a)
    ci_b = success_rate_ci(episodes_b)
    p_value = two_proportion_z(
        sum(episode.success for episode in episodes_a), len(episodes_a),
        sum(episode.success for episode in episodes_b), len(episodes_b),
    )
    return {
        "rate_a": ci_a,
        "rate_b": ci_b,
        "p_value": p_value,
        "significant_05": p_value < 0.05,
    }

"""OpenAI-compatible chat-completions engine over the stdlib HTTP client.

Drives any server speaking the ``POST /v1/chat/completions`` wire format
— llama.cpp's ``llama-server``, vLLM, Ollama's OpenAI shim — through
:class:`~repro.serving.http.client.HTTPConnection`, the same stdlib
``http.client`` wrapper the serving edge uses, so the engine adds no
dependency.  Requests carry the tool schemas
(:meth:`~repro.tools.schema.ToolSpec.to_json_schema` already emits the
OpenAI function-calling shape); replies are mined for tool calls first
from the native ``tool_calls`` channel, then from fenced JSON in the
message content (:func:`~repro.llm.chat.parse_tool_response`), which is
how llama.cpp models without grammar-constrained tool support answer.

Transport failures (connection refused, socket timeout, 5xx/429) retry
``spec.retries`` times with exponential backoff before raising an
:class:`~repro.engines.base.EngineError` that names the endpoint, the
attempt count and the last error.  Malformed *successful* replies raise
:class:`~repro.engines.base.EngineProtocolError` immediately — a
dialect mismatch is a configuration bug retries will never fix.

The engine and its agent-facing adapter hold only the picklable
:class:`~repro.specs.EngineSpec` plus model/quant specs; a fresh
connection is opened per request, so nothing socket-shaped ever crosses
the process-pool boundary.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

from repro.engines.base import EngineError, EngineProtocolError, EngineReply
from repro.llm.chat import parse_tool_response, render_agent_prompt, \
    render_recommender_prompt
from repro.llm.registry import get_model_spec, get_quant_spec
from repro.llm.responses import AgentTurn, RecommenderOutput, TokenUsage
from repro.llm.tokens import estimate_tokens
from repro.registry import register_engine
from repro.serving.http.client import HTTPConnection
from repro.tools.schema import ToolCall, ToolSpec

#: response statuses worth retrying: transient server trouble and
#: rate-limit pushback; any other 4xx is the client's bug and fails fast
RETRYABLE_STATUS = frozenset({429, 500, 502, 503, 504})


def _messages_from_transcript(transcript) -> list[dict]:
    """Flatten a :class:`~repro.llm.chat.ChatTranscript` to wire messages."""
    return [{"role": turn.role, "content": turn.content}
            for turn in transcript.turns]


class OpenAIHttpEngine:
    """Wire-level client for one OpenAI-compatible endpoint."""

    def __init__(self, spec, wire_model: str | None = None):
        split = urlsplit(spec.base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(
                f"openai_http supports plain http base URLs, got "
                f"{spec.base_url!r} (terminate TLS in front of the stdlib "
                f"client)")
        if not split.hostname:
            raise ValueError(
                f"EngineSpec.base_url must include a host, got "
                f"{spec.base_url!r}")
        self.spec = spec
        self.wire_model = wire_model or spec.wire_model or "default"
        self.host = split.hostname
        self.port = split.port if split.port is not None else 80
        self.prefix = split.path.rstrip("/")
        # injectable for tests: retry/backoff behavior without real sleeps
        self._sleep = time.sleep

    @property
    def endpoint(self) -> str:
        return (f"http://{self.host}:{self.port}"
                f"{self.prefix}/chat/completions")

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _post(self, payload: dict):
        """One request over a fresh connection (never pickled, never shared)."""
        headers = {}
        if self.spec.api_key:
            headers["Authorization"] = f"Bearer {self.spec.api_key}"
        with HTTPConnection(self.host, self.port,
                            timeout_s=self.spec.timeout_s) as conn:
            return conn.post(f"{self.prefix}/chat/completions", payload,
                             headers=headers)

    def _request(self, payload: dict) -> dict:
        """POST with the retry budget; return the decoded JSON body."""
        attempts = self.spec.retries + 1
        last_error: str | None = None
        for attempt in range(attempts):
            if attempt:
                self._sleep(self.spec.retry_backoff_ms / 1000.0
                            * 2.0 ** (attempt - 1))
            try:
                response = self._post(payload)
            except (OSError, http.client.HTTPException) as exc:
                # covers refused connections, socket timeouts
                # (TimeoutError is an OSError) and torn responses
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            if response.status in RETRYABLE_STATUS:
                last_error = f"HTTP {response.status}: {response.text[:200]}"
                continue
            if response.status != 200:
                raise EngineError(
                    f"{self.endpoint} answered HTTP {response.status} "
                    f"(not retryable): {response.text[:200]}")
            try:
                return response.json()
            except json.JSONDecodeError as exc:
                raise EngineProtocolError(
                    f"{self.endpoint} returned a non-JSON 200 body: "
                    f"{exc}") from None
        raise EngineError(
            f"engine at {self.endpoint} failed after {attempts} attempt(s) "
            f"(timeout_s={self.spec.timeout_s}, retries={self.spec.retries}); "
            f"last error: {last_error}")

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def generate(self, messages: list[dict],
                 tools: list[ToolSpec]) -> EngineReply:
        payload = {
            "model": self.wire_model,
            "messages": messages,
            "temperature": self.spec.temperature,
            "max_tokens": self.spec.max_tokens,
        }
        if tools:
            payload["tools"] = [tool.to_json_schema() for tool in tools]
            payload["tool_choice"] = "auto"
        body = self._request(payload)
        try:
            choice = body["choices"][0]
            message = choice["message"]
        except (KeyError, IndexError, TypeError):
            raise EngineProtocolError(
                f"{self.endpoint} 200 body has no choices[0].message; "
                f"got keys {sorted(body) if isinstance(body, dict) else type(body).__name__}"
            ) from None
        usage = _parse_usage(body.get("usage"))
        text = message.get("content") or ""
        calls = self.extract_tool_calls(message)
        error_signal = None
        if not calls and text:
            parsed = parse_tool_response(text)
            if parsed.call is not None:
                calls = (parsed.call,)
            elif parsed.is_error_signal:
                error_signal = parsed.error_message
        return EngineReply(
            text=text,
            tool_calls=calls,
            usage=usage,
            finish_reason=choice.get("finish_reason") or "stop",
            error_signal=error_signal,
        )

    def extract_tool_calls(self, message: dict) -> tuple[ToolCall, ...]:
        """Native ``tool_calls`` entries → :class:`ToolCall` tuples.

        Arguments arrive as a JSON-encoded string per the OpenAI wire
        format; a backend that emits undecodable argument text gets an
        :class:`EngineProtocolError` naming the offending snippet.
        """
        calls = []
        for entry in message.get("tool_calls") or ():
            function = entry.get("function") or {}
            name = function.get("name")
            raw_arguments = function.get("arguments", "{}")
            if isinstance(raw_arguments, dict):
                arguments = raw_arguments
            else:
                try:
                    arguments = json.loads(raw_arguments or "{}")
                except json.JSONDecodeError as exc:
                    raise EngineProtocolError(
                        f"{self.endpoint} sent tool_calls arguments that "
                        f"are not valid JSON ({exc}): {raw_arguments!r:.200}"
                    ) from None
            if not isinstance(name, str) or not isinstance(arguments, dict):
                raise EngineProtocolError(
                    f"{self.endpoint} sent a malformed tool_calls entry: "
                    f"{entry!r:.200}")
            calls.append(ToolCall(name, arguments))
        return tuple(calls)


def _parse_usage(raw) -> TokenUsage | None:
    if not isinstance(raw, dict):
        return None
    try:
        return TokenUsage(
            prompt_tokens=int(raw.get("prompt_tokens", 0)),
            completion_tokens=int(raw.get("completion_tokens", 0)),
        )
    except (TypeError, ValueError):
        return None


class ChatEngineLLM:
    """Agent-facing LLM over a wire-level engine.

    Exposes the :class:`~repro.llm.engine.SimulatedLLM` surface the
    agents and baselines consume — ``model``/``quant``/``name`` for
    accounting (``model`` stays a registry :class:`ModelSpec`, so
    latency/energy bookkeeping keeps working even though generation
    happens remotely), ``recommend_tools`` and ``execute_step``.

    ``correct_tool`` is judged against the query's gold call for the
    step — the same definition the simulator uses — so real-backend
    episodes score on the paper's metrics unchanged.
    """

    def __init__(self, spec, model: str, quant: str,
                 engine: OpenAIHttpEngine | None = None):
        self.spec = spec
        self.model = get_model_spec(model)
        self.quant = get_quant_spec(quant)
        self.engine = engine if engine is not None else OpenAIHttpEngine(
            spec, wire_model=spec.wire_model or model)

    @property
    def name(self) -> str:
        return f"{self.model.name}-{self.quant.name}"

    # live sockets never persist on the instance (one connection per
    # request), so default pickling works; keep the contract visible
    def __getstate__(self) -> dict:
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # recommender
    # ------------------------------------------------------------------
    def recommend_tools(self, query, registry=None,
                        corpus_descriptions=None) -> RecommenderOutput:
        transcript = render_recommender_prompt(query.text)
        reply = self.engine.generate(
            _messages_from_transcript(transcript), tools=[])
        descriptions = _parse_descriptions(reply.text)
        usage = reply.usage if reply.usage is not None else TokenUsage(
            prompt_tokens=transcript.prompt_tokens,
            completion_tokens=estimate_tokens(reply.text),
        )
        return RecommenderOutput(descriptions=tuple(descriptions), usage=usage)

    # ------------------------------------------------------------------
    # function-calling turn
    # ------------------------------------------------------------------
    def execute_step(self, query, step_index: int,
                     presented_tools: list[ToolSpec], context_window: int,
                     attempt: int = 0, skill_multiplier: float = 1.0,
                     arg_multiplier: float = 1.0) -> AgentTurn:
        if not presented_tools:
            raise ValueError("at least one tool must be presented")
        transcript = render_agent_prompt(query.text, presented_tools)
        reply = self.engine.generate(
            _messages_from_transcript(transcript), tools=presented_tools)
        usage = reply.usage if reply.usage is not None else TokenUsage(
            prompt_tokens=transcript.prompt_tokens,
            completion_tokens=estimate_tokens(reply.text),
        )
        tools_seen = tuple(tool.name for tool in presented_tools)
        if reply.error_signal is not None:
            return AgentTurn(call=None, usage=usage, signalled_error=True,
                             tools_seen=tools_seen)
        if not reply.tool_calls:
            # chatter with no parseable call: a failed turn, not a crash
            return AgentTurn(call=None, usage=usage, signalled_error=True,
                             tools_seen=tools_seen)
        call = reply.tool_calls[0]
        gold_call = query.gold_calls[min(step_index, query.n_steps - 1)]
        return AgentTurn(call=call, usage=usage,
                         correct_tool=call.tool == gold_call.tool,
                         tools_seen=tools_seen)


def _parse_descriptions(text: str) -> list[str]:
    """Recommender output → description list, tolerating prose replies."""
    text = text.strip()
    if not text:
        return []
    try:
        decoded = json.loads(text)
    except json.JSONDecodeError:
        decoded = None
    if isinstance(decoded, list):
        return [str(item) for item in decoded if str(item).strip()]
    lines = [line.strip(" -*\t") for line in text.splitlines()]
    return [line for line in lines if line]


@register_engine("openai_http")
def build_openai_http(spec, model: str, quant: str) -> ChatEngineLLM:
    """Build the agent-facing adapter for an OpenAI-compatible server."""
    return ChatEngineLLM(spec, model, quant)

"""The default engine: the deterministic in-process simulator.

The factory returns :class:`~repro.llm.engine.SimulatedLLM` itself —
not a wrapper — so episodes built through the engine registry are the
*same objects on the same code path* as the pre-boundary direct
construction, and bitwise identity with the legacy path is structural
rather than asserted (``tests/test_session_equivalence.py`` asserts it
anyway).
"""

from __future__ import annotations

from repro.llm.engine import SimulatedLLM
from repro.registry import register_engine


@register_engine("simulated")
def build_simulated(spec, model: str, quant: str) -> SimulatedLLM:
    """Build the simulated LLM; connection knobs on ``spec`` are unused."""
    return SimulatedLLM.from_registry(model, quant)

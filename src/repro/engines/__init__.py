"""Pluggable LLM engines behind the agents.

The agents consume one surface — ``model``/``quant``/``name``,
``recommend_tools``, ``execute_step`` — and this package supplies it
from interchangeable backends registered in
:data:`repro.registry.ENGINES`:

``simulated``
    The deterministic in-process behavioral simulator (the default;
    bitwise identical to the pre-engine-boundary code path).
``openai_http``
    Any OpenAI-compatible chat-completions server (llama.cpp
    ``llama-server``, vLLM, Ollama) over the stdlib HTTP client, with
    timeout/retry knobs and tool-call extraction from both the native
    ``tool_calls`` channel and fenced JSON content.

Select an engine declaratively through
:class:`~repro.specs.EngineSpec` on an ``AgentSpec``/``TenantSpec``
(or ``repro run --engine ...``); third-party engines plug in with
:func:`~repro.registry.register_engine`.
"""

from repro.engines import openai_http as _openai_http  # noqa: F401 - registers
from repro.engines import simulated as _simulated  # noqa: F401 - registers
from repro.engines.base import (
    Engine,
    EngineError,
    EngineHarness,
    EngineProtocolError,
    EngineReply,
    build_engine_llm,
)
from repro.engines.openai_http import ChatEngineLLM, OpenAIHttpEngine

__all__ = [
    "ChatEngineLLM",
    "Engine",
    "EngineError",
    "EngineHarness",
    "EngineProtocolError",
    "EngineReply",
    "OpenAIHttpEngine",
    "build_engine_llm",
]

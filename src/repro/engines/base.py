"""The engine boundary: what a pluggable LLM backend must provide.

An *engine* is the wire-level generation surface — ``generate(messages,
tools)`` returning an :class:`EngineReply` — per the ``BaseLLMEngine`` /
``PlannerLLM`` idiom: the caller hands over chat messages plus tool
schemas and gets back text, extracted tool calls and token usage.
Engines register through :data:`repro.registry.ENGINES` as factories
``f(spec, model, quant) -> llm`` returning the **agent-facing** LLM
object (the :class:`~repro.llm.engine.SimulatedLLM` surface the agents
consume: ``model``/``quant``/``name``, ``recommend_tools``,
``execute_step``) — the registry deals in agent-facing objects so the
default ``simulated`` engine stays exactly today's code path, while
wire-backed engines wrap an :class:`Engine` in an adapter.

Everything an engine needs to reconstruct itself lives in the picklable
:class:`~repro.specs.EngineSpec`; live clients are rebuilt from the spec
on each side of the process-pool boundary, never pickled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.llm.responses import TokenUsage
from repro.tools.schema import ToolCall, ToolSpec


class EngineError(RuntimeError):
    """An engine could not produce a reply (transport or server failure).

    Raised only after the configured retry budget is exhausted; the
    message names the endpoint, the attempt count and the last
    underlying error so the failure is actionable from a log line.
    """


class EngineProtocolError(EngineError):
    """The backend answered, but not in the wire format it promised.

    Distinct from :class:`EngineError` so callers can tell "the server
    is down" from "the server speaks a different dialect" — the latter
    is a configuration bug retries will never fix, so it is never
    retried.
    """


@dataclass(frozen=True)
class EngineReply:
    """One generation result at the wire level.

    ``tool_calls`` holds calls the backend emitted through the native
    ``tool_calls`` channel; adapters fall back to parsing fenced JSON
    out of ``text`` when it is empty.  ``usage`` is the backend's own
    token accounting when reported (``None`` means the adapter should
    estimate).
    """

    text: str = ""
    tool_calls: tuple[ToolCall, ...] = ()
    usage: TokenUsage | None = None
    finish_reason: str = "stop"
    error_signal: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "tool_calls", tuple(self.tool_calls))


@runtime_checkable
class Engine(Protocol):
    """Wire-level generation: messages + tool schemas in, reply out.

    ``messages`` is a list of ``{"role": ..., "content": ...}`` dicts
    (OpenAI chat shape); ``tools`` the :class:`ToolSpec` list to expose.
    ``extract_tool_calls`` is optional — adapters use it when present to
    re-parse a raw backend message dict; the default extraction path is
    the native ``tool_calls`` field, then fenced JSON in the content.
    """

    def generate(self, messages: list[dict],
                 tools: list[ToolSpec]) -> EngineReply: ...


@dataclass
class EngineHarness:
    """Optional scripted engine for tests: replays canned replies."""

    replies: list[EngineReply] = field(default_factory=list)
    calls: list[tuple[list[dict], tuple[str, ...]]] = field(default_factory=list)

    def generate(self, messages: list[dict],
                 tools: list[ToolSpec]) -> EngineReply:
        self.calls.append((messages, tuple(tool.name for tool in tools)))
        if not self.replies:
            return EngineReply(text="{}")
        return self.replies.pop(0)


def build_engine_llm(spec, model: str, quant: str):
    """Resolve ``spec`` through :data:`~repro.registry.ENGINES`.

    ``spec`` may be an :class:`~repro.specs.EngineSpec`, a bare engine
    name, or ``None`` (the simulated default).  Unknown engine names
    raise the registry's :class:`ValueError` listing every registered
    engine.
    """
    from repro.registry import ENGINES
    from repro.specs import EngineSpec

    if spec is None:
        spec = EngineSpec()
    elif isinstance(spec, str):
        spec = EngineSpec(spec)
    factory = ENGINES.get(spec.name)
    return factory(spec, model, quant)

"""A mock OpenAI-compatible server for engine tests — no network deps.

:class:`MockOpenAIApp` is a plain ASGI app answering ``POST
{prefix}/chat/completions`` with scripted replies; it records every
decoded request body so tests can assert on the wire traffic (messages,
tool schemas, auth headers).  :class:`MockOpenAIServer` hosts it on an
ephemeral localhost port through the same
:class:`~repro.serving.http.server.AsgiServer` the serving edge uses —
the ``openai_http`` adapter is exercised over real sockets without
anything beyond the stdlib.

Reply scripting: pass ``reply_fn(payload) -> dict`` returning either a
bare assistant *message* dict (wrapped into a completion body) or a
full response body (returned verbatim when it has ``choices``).  The
:func:`tool_call_message` / :func:`content_message` helpers build the
two message shapes the adapter must extract from.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Callable

from repro.serving.http.server import AsgiServer
from repro.serving.http.wire import read_body, send_json
from repro.specs import HttpSpec


def tool_call_message(name: str, arguments: dict, *,
                      malformed_arguments: bool = False) -> dict:
    """An assistant message using the native ``tool_calls`` channel."""
    raw = ("{not json" if malformed_arguments
           else json.dumps(arguments, sort_keys=True))
    return {
        "role": "assistant",
        "content": None,
        "tool_calls": [{
            "id": "call_0",
            "type": "function",
            "function": {"name": name, "arguments": raw},
        }],
    }


def content_message(text: str) -> dict:
    """An assistant message carrying plain content (fenced-JSON path)."""
    return {"role": "assistant", "content": text}


def fenced_call_message(name: str, arguments: dict) -> dict:
    """A content-only reply embedding the call as JSON in prose."""
    body = json.dumps({"name": name, "arguments": arguments}, sort_keys=True)
    return content_message(f"Sure — calling the tool now:\n{body}\nDone.")


class MockOpenAIApp:
    """Scripted OpenAI-compatible chat-completions endpoint (plain ASGI)."""

    def __init__(self, reply_fn: Callable[[dict], dict] | None = None,
                 prefix: str = "/v1", fail_first: int = 0,
                 fail_status: int = 500):
        self.reply_fn = reply_fn
        self.prefix = prefix
        self.fail_first = fail_first
        self.fail_status = fail_status
        self.requests: list[dict] = []
        self.headers: list[dict[str, str]] = []
        self._served = 0

    def _default_reply(self, payload: dict) -> dict:
        """Call the first advertised tool with empty arguments."""
        tools = payload.get("tools") or []
        if tools:
            name = tools[0]["function"]["name"]
            return tool_call_message(name, {})
        return content_message("[]")

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    await send({"type": "lifespan.shutdown.complete"})
                    return
            return
        if scope["type"] != "http":
            return
        path, method = scope["path"], scope["method"]
        if method != "POST" or path != f"{self.prefix}/chat/completions":
            await send_json(send, 404, {"error": {
                "message": f"no route for {method} {path}", "status": 404}})
            return
        payload = json.loads((await read_body(receive)) or b"{}")
        self.requests.append(payload)
        self.headers.append({
            key.decode("latin-1"): value.decode("latin-1")
            for key, value in scope.get("headers", [])})
        self._served += 1
        if self._served <= self.fail_first:
            await send_json(send, self.fail_status, {"error": {
                "message": "injected failure", "status": self.fail_status}})
            return
        reply = (self.reply_fn(payload) if self.reply_fn is not None
                 else self._default_reply(payload))
        if "choices" in reply:
            body = reply
        else:
            prompt_tokens = sum(
                len(str(message.get("content") or "")) // 4 + 4
                for message in payload.get("messages", ()))
            body = {
                "id": f"chatcmpl-{self._served}",
                "object": "chat.completion",
                "model": payload.get("model", "default"),
                "choices": [{"index": 0, "message": reply,
                             "finish_reason": ("tool_calls"
                                               if reply.get("tool_calls")
                                               else "stop")}],
                "usage": {"prompt_tokens": prompt_tokens,
                          "completion_tokens": 32,
                          "total_tokens": prompt_tokens + 32},
            }
        await send_json(send, 200, body)


class MockOpenAIServer:
    """Host a :class:`MockOpenAIApp` on an ephemeral localhost port.

    Context manager: entering starts a daemon thread running an
    asyncio loop with an :class:`AsgiServer`; ``base_url`` is the
    OpenAI-style root (``http://127.0.0.1:<port>/v1``) ready to drop
    into an :class:`~repro.specs.EngineSpec`.
    """

    def __init__(self, app: MockOpenAIApp | None = None):
        self.app = app if app is not None else MockOpenAIApp()
        self.port: int | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._error: BaseException | None = None

    @property
    def base_url(self) -> str:
        if self.port is None:
            raise RuntimeError("server is not started")
        return f"http://127.0.0.1:{self.port}{self.app.prefix}"

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        async with AsgiServer(self.app, http=HttpSpec(port=0)) as server:
            self.port = server.port
            self._ready.set()
            await self._stop.wait()

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # noqa: BLE001 - surfaced on enter/exit
            self._error = exc
            self._ready.set()

    def __enter__(self) -> "MockOpenAIServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="mock-openai-server")
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("mock OpenAI server did not bind within 30s")
        if self._error is not None:
            raise RuntimeError("mock OpenAI server failed to start") \
                from self._error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        if self._error is not None and exc_info[0] is None:
            raise RuntimeError("mock OpenAI server crashed") from self._error

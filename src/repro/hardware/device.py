"""Device profiles for the edge-inference model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceProfile:
    """First-order performance/power description of an edge board.

    Attributes
    ----------
    prefill_tokens_per_s_8b:
        Prefill throughput for an 8-billion-parameter 4-bit model at
        short context (tokens/second, compute-bound).
    membw_gbs:
        Peak DRAM bandwidth (GB/s).
    decode_efficiency:
        Fraction of peak bandwidth realised while streaming weights
        during decode.
    ctx_prefill_slowdown / ctx_decode_slowdown:
        Linear attention-cost coefficients: throughput is divided by
        ``1 + coeff * (live_context / 8192)``.
    window_slowdown:
        Memory-pressure slowdown from the *allocated* context window
        (KV cache residency): time multiplier
        ``1 + window_slowdown * (window / 32768)``.
    idle_power_w / prefill_power_w / decode_power_w:
        Idle board power and the *additional* dynamic power drawn during
        each phase at full utilisation.
    window_power_w:
        Extra dynamic power per 32K tokens of allocated window (DRAM
        refresh/occupancy pressure).
    memory_gb:
        Usable DRAM for weights + KV (the AGX Orin devkit has 32 GB,
        shared with the OS).
    """

    name: str
    prefill_tokens_per_s_8b: float
    membw_gbs: float
    decode_efficiency: float
    ctx_prefill_slowdown: float
    ctx_decode_slowdown: float
    window_slowdown: float
    idle_power_w: float
    prefill_power_w: float
    decode_power_w: float
    window_power_w: float
    memory_gb: float


#: NVIDIA Jetson AGX Orin 32 GB devkit, calibrated to paper Table II.
JETSON_AGX_ORIN = DeviceProfile(
    name="jetson-agx-orin",
    prefill_tokens_per_s_8b=800.0,
    membw_gbs=204.8,
    decode_efficiency=0.52,
    ctx_prefill_slowdown=0.55,
    ctx_decode_slowdown=0.35,
    window_slowdown=0.85,
    idle_power_w=7.0,
    prefill_power_w=26.0,
    decode_power_w=11.0,
    window_power_w=8.0,
    memory_gb=30.0,
)

"""Latency/energy model for one LLM invocation on the edge device."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import JETSON_AGX_ORIN, DeviceProfile
from repro.hardware.memory import kv_cache_gb, model_weights_gb
from repro.utils.rng import derive_rng

#: Reference model size for the prefill-throughput constant.
_REF_PARAMS_B = 8.0
_REF_BITS = 4.85  # q4_K_M


@dataclass(frozen=True)
class InferenceRequest:
    """One LLM call to be costed.

    ``kv_cached_tokens`` is the prompt prefix already resident in the KV
    cache from a previous turn (multi-step agents re-use the system/tool
    prefix, as Ollama does between chained calls).
    """

    params_b: float
    bits_per_weight: float
    prompt_tokens: int
    generated_tokens: int
    context_window: int
    kv_cached_tokens: int = 0
    jitter_stream: str = ""

    def __post_init__(self):
        if self.prompt_tokens < 0 or self.generated_tokens < 0:
            raise ValueError("token counts must be >= 0")
        if self.context_window <= 0:
            raise ValueError("context_window must be positive")
        if not 0 <= self.kv_cached_tokens <= self.prompt_tokens:
            raise ValueError("kv_cached_tokens must be within [0, prompt_tokens]")


@dataclass(frozen=True)
class InferenceTrace:
    """Costed result of one LLM call."""

    prefill_s: float
    decode_s: float
    energy_j: float
    peak_memory_gb: float

    @property
    def total_s(self) -> float:
        return self.prefill_s + self.decode_s

    @property
    def avg_power_w(self) -> float:
        if self.total_s == 0.0:
            return 0.0
        return self.energy_j / self.total_s


def simulate_inference(request: InferenceRequest,
                       device: DeviceProfile = JETSON_AGX_ORIN) -> InferenceTrace:
    """Cost one LLM call with the analytic edge model.

    Deterministic: the +-3% execution jitter is seeded from
    ``request.jitter_stream``.
    """
    live_ctx = min(request.prompt_tokens + request.generated_tokens,
                   request.context_window)
    window_factor = 1.0 + device.window_slowdown * (request.context_window / 32768.0)

    # ----- prefill: compute-bound ------------------------------------
    new_prompt_tokens = request.prompt_tokens - request.kv_cached_tokens
    prefill_rate = device.prefill_tokens_per_s_8b * (_REF_PARAMS_B / request.params_b)
    prefill_rate /= 1.0 + device.ctx_prefill_slowdown * (live_ctx / 8192.0)
    prefill_rate /= window_factor
    prefill_s = new_prompt_tokens / prefill_rate if new_prompt_tokens else 0.0

    # ----- decode: bandwidth-bound ------------------------------------
    weights_gb = model_weights_gb(request.params_b, request.bits_per_weight)
    decode_rate = device.membw_gbs * device.decode_efficiency / weights_gb
    decode_rate /= 1.0 + device.ctx_decode_slowdown * (live_ctx / 8192.0)
    decode_rate /= window_factor
    decode_s = request.generated_tokens / decode_rate if request.generated_tokens else 0.0

    # ----- deterministic execution jitter ------------------------------
    rng = derive_rng("hw-jitter", request.jitter_stream)
    scale = float(1.0 + 0.03 * rng.standard_normal())
    prefill_s *= max(scale, 0.9)
    decode_s *= max(scale, 0.9)

    # ----- energy -------------------------------------------------------
    window_power = device.window_power_w * (request.context_window / 32768.0)
    total_s = prefill_s + decode_s
    energy_j = (
        device.idle_power_w * total_s
        + (device.prefill_power_w + window_power) * prefill_s
        + (device.decode_power_w + window_power) * decode_s
    )

    peak_memory = weights_gb + kv_cache_gb(request.context_window, request.params_b)
    return InferenceTrace(
        prefill_s=prefill_s,
        decode_s=decode_s,
        energy_j=energy_j,
        peak_memory_gb=peak_memory,
    )

"""Jetson AGX Orin nvpmodel power modes.

The Orin devkit exposes capped power modes through ``nvpmodel`` (MAXN,
30 W, 15 W); deployments commonly run capped for thermal headroom.  The
paper measures MAXN; this module lets every experiment re-run under a cap
(used by ``benchmarks/bench_ablation_power_modes.py``): clocks scale with
the cap, so latency rises as power falls — the energy-per-query trade-off
an edge deployment actually tunes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.device import JETSON_AGX_ORIN, DeviceProfile


@dataclass(frozen=True)
class PowerMode:
    """One nvpmodel operating point.

    ``compute_scale`` multiplies prefill throughput (GPU clocks) and
    ``bandwidth_scale`` multiplies effective DRAM bandwidth (EMC clocks);
    ``power_scale`` multiplies the dynamic power terms.
    """

    name: str
    compute_scale: float
    bandwidth_scale: float
    power_scale: float

    def __post_init__(self):
        for field_name in ("compute_scale", "bandwidth_scale", "power_scale"):
            value = getattr(self, field_name)
            if not 0.05 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0.05, 1], got {value}")


#: Published nvpmodel presets for the AGX Orin devkit, approximated from
#: the MAXN / 30 W / 15 W clock tables.
POWER_MODES: dict[str, PowerMode] = {
    "MAXN": PowerMode("MAXN", 1.00, 1.00, 1.00),
    "30W": PowerMode("30W", 0.72, 0.85, 0.68),
    "15W": PowerMode("15W", 0.42, 0.55, 0.38),
}


def apply_power_mode(device: DeviceProfile, mode: str | PowerMode) -> DeviceProfile:
    """Return a new device profile running under the given power mode."""
    if isinstance(mode, str):
        try:
            mode = POWER_MODES[mode.upper()]
        except KeyError:
            raise ValueError(
                f"unknown power mode {mode!r}; choose from {sorted(POWER_MODES)}"
            ) from None
    return replace(
        device,
        name=f"{device.name}-{mode.name.lower()}",
        prefill_tokens_per_s_8b=device.prefill_tokens_per_s_8b * mode.compute_scale,
        membw_gbs=device.membw_gbs * mode.bandwidth_scale,
        prefill_power_w=device.prefill_power_w * mode.power_scale,
        decode_power_w=device.decode_power_w * mode.power_scale,
        window_power_w=device.window_power_w * mode.power_scale,
        # idle power barely moves with nvpmodel (always-on rails)
        idle_power_w=device.idle_power_w * (0.75 + 0.25 * mode.power_scale),
    )


def orin_in_mode(mode: str) -> DeviceProfile:
    """Convenience: the AGX Orin profile under an nvpmodel preset."""
    return apply_power_mode(JETSON_AGX_ORIN, mode)

"""Memory-footprint model: quantized weights plus fp16 KV cache."""

from __future__ import annotations

#: Runtime overhead multiplier over raw weight bytes (activations,
#: scratch buffers, tokenizer, graph).
_WEIGHT_OVERHEAD = 1.12

#: Llama-8B-class KV geometry used as the reference architecture:
#: 32 layers x 8 KV heads x 128 head-dim x (K + V) x fp16.
_KV_BYTES_PER_TOKEN_8B = 32 * 8 * 128 * 2 * 2


def model_weights_gb(params_b: float, bits_per_weight: float) -> float:
    """Resident size of the quantized weights in GB."""
    if params_b <= 0:
        raise ValueError(f"params_b must be positive, got {params_b}")
    if bits_per_weight <= 0:
        raise ValueError(f"bits_per_weight must be positive, got {bits_per_weight}")
    raw_gb = params_b * bits_per_weight / 8.0
    return raw_gb * _WEIGHT_OVERHEAD


def kv_cache_gb(context_window: int, params_b: float = 8.0) -> float:
    """KV-cache size for an allocated ``context_window``.

    KV geometry scales roughly with model width*depth; we scale the
    8B-class reference linearly in parameter count, which is accurate
    enough for the 1.5B-8B models the paper evaluates.
    """
    if context_window < 0:
        raise ValueError(f"context_window must be >= 0, got {context_window}")
    per_token = _KV_BYTES_PER_TOKEN_8B * (params_b / 8.0)
    return context_window * per_token / 1e9


def footprint_gb(params_b: float, bits_per_weight: float, context_window: int,
                 n_parallel_contexts: int = 1) -> float:
    """Total resident footprint; ``n_parallel_contexts`` models tree-search
    agents (ToolLLM) that keep several decoding branches alive."""
    if n_parallel_contexts < 1:
        raise ValueError("n_parallel_contexts must be >= 1")
    return (
        model_weights_gb(params_b, bits_per_weight)
        + n_parallel_contexts * kv_cache_gb(context_window, params_b)
    )


def fits_on_device(required_gb: float, memory_gb: float) -> bool:
    """Whether a footprint fits in the device's usable DRAM."""
    return required_gb <= memory_gb

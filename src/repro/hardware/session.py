"""Aggregation of per-call traces into episode-level measurements."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.device import JETSON_AGX_ORIN, DeviceProfile
from repro.hardware.inference import InferenceTrace


@dataclass
class MeasurementSession:
    """Accumulates LLM traces and API latencies for one agent episode.

    The paper reports per-query execution time and *average* power; the
    session integrates energy over LLM phases and treats API wait time as
    idle-power time (the board idles while the remote/tool call runs).
    """

    device: DeviceProfile = field(default_factory=lambda: JETSON_AGX_ORIN)
    traces: list[InferenceTrace] = field(default_factory=list)
    api_latency_s: float = 0.0
    overhead_s: float = 0.0

    def add_trace(self, trace: InferenceTrace) -> None:
        """Record one costed LLM call."""
        self.traces.append(trace)

    def add_api_latency(self, seconds: float) -> None:
        """Record simulated tool/API wait time."""
        if seconds < 0:
            raise ValueError("latency must be >= 0")
        self.api_latency_s += seconds

    def add_overhead(self, seconds: float) -> None:
        """Record host-side overhead (embedding, k-NN search, ...)."""
        if seconds < 0:
            raise ValueError("overhead must be >= 0")
        self.overhead_s += seconds

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def llm_time_s(self) -> float:
        return sum(trace.total_s for trace in self.traces)

    @property
    def total_time_s(self) -> float:
        return self.llm_time_s + self.api_latency_s + self.overhead_s

    @property
    def energy_j(self) -> float:
        llm_energy = sum(trace.energy_j for trace in self.traces)
        waiting = (self.api_latency_s + self.overhead_s) * self.device.idle_power_w
        return llm_energy + waiting

    @property
    def avg_power_w(self) -> float:
        if self.total_time_s == 0.0:
            return 0.0
        return self.energy_j / self.total_time_s

    @property
    def peak_memory_gb(self) -> float:
        return max((trace.peak_memory_gb for trace in self.traces), default=0.0)

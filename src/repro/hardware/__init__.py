"""Edge-device substrate: analytic NVIDIA Jetson AGX Orin model.

The paper measures execution time and power of LLM inference on a Jetson
AGX Orin.  This package replaces the physical board with a first-order
analytic model of on-device transformer inference:

* **prefill** is compute-bound — throughput scales inversely with model
  size and degrades with live context length (attention cost);
* **decode** is memory-bandwidth-bound — tokens/s is the effective
  bandwidth divided by the quantized model footprint;
* **power** integrates idle, prefill (high utilisation) and decode
  (bandwidth-bound, lower utilisation) phases, plus a context-window
  memory-pressure term;
* **memory** accounts for quantized weights and the fp16 KV cache.

Constants are calibrated against the paper's Table II anchor points
(Llama3.1-8b-q4_K_M: 16K/46 tools ≈ 30 s / 27 W → 8K/19 tools ≈ 17 s /
22 W); see ``tests/test_hardware_calibration.py``.
"""

from repro.hardware.device import JETSON_AGX_ORIN, DeviceProfile
from repro.hardware.inference import InferenceRequest, InferenceTrace, simulate_inference
from repro.hardware.memory import kv_cache_gb, model_weights_gb
from repro.hardware.power_modes import POWER_MODES, PowerMode, apply_power_mode, orin_in_mode
from repro.hardware.session import MeasurementSession

__all__ = [
    "JETSON_AGX_ORIN",
    "POWER_MODES",
    "DeviceProfile",
    "InferenceRequest",
    "InferenceTrace",
    "MeasurementSession",
    "PowerMode",
    "apply_power_mode",
    "kv_cache_gb",
    "model_weights_gb",
    "orin_in_mode",
    "simulate_inference",
]

"""Deterministic sentence-embedding substrate (MPNet substitute).

The paper embeds tool descriptions and LLM-recommended "ideal tool"
descriptions with a pretrained MPNet model into a 768-d latent space.
Offline reproduction cannot ship MPNet weights, so this package provides a
deterministic lexical-semantic embedder with the one property Less-is-More
actually relies on: *semantically similar text maps to nearby vectors*.

Three feature families are combined:

* **concept features** — a curated synonym lexicon collapses domain terms
  ("weather", "forecast", "temperature") onto shared concept ids, giving
  true synonym-level similarity for the tool/query domains;
* **token features** — hashed stemmed unigrams and bigrams, providing
  graceful degradation for text outside the lexicon;
* **character trigrams** — robustness against morphological variation.

Each feature id is mapped to a fixed pseudo-random Gaussian direction in
R^768 (seeded by a stable hash), features are summed with family weights
and the result is L2-normalised — i.e. a random-projection bag-of-features
model, fully deterministic across processes and platforms.
"""

from repro.embedding.directions import DirectionBank
from repro.embedding.lexicon import ConceptLexicon, default_lexicon
from repro.embedding.sentence import SentenceEmbedder, cosine_similarity
from repro.embedding.tokenizer import Tokenizer

__all__ = [
    "ConceptLexicon",
    "DirectionBank",
    "SentenceEmbedder",
    "Tokenizer",
    "cosine_similarity",
    "default_lexicon",
]

#: Dimensionality used throughout the paper (Section III-A).
EMBEDDING_DIM = 768

"""Persistent feature-direction matrix backing the sentence embedder.

The embedder maps every feature id (a ``(family, feature)`` pair) to a
fixed pseudo-random unit direction in R^dim.  The seed implementation
kept these in a plain dict and re-derived a fresh
``np.random.default_rng`` inside the per-document accumulation loop; the
:class:`DirectionBank` instead interns features into rows of one growing
matrix so that document embeddings become a single weighted gather +
matmul over the bank.

Direction *values* are unchanged from the original implementation: row
``(family, feature)`` is ``default_rng(stable_hash64(namespace, dim,
family, feature)).standard_normal(dim)`` normalized to unit length, so
every embedding produced on top of the bank is numerically equivalent to
the historical per-feature loop.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.utils.hashing import stable_hash64

#: Feature key: ``(family, feature)``, e.g. ``("token", "weather")``.
FeatureKey = tuple[str, str]

_INITIAL_CAPACITY = 256


class DirectionBank:
    """Grow-only matrix of per-feature unit directions with stable seeds.

    Thread-safe for concurrent :meth:`intern` calls (a lock serializes
    growth); reads through :attr:`matrix` snapshot the current storage,
    which is never mutated in place for already-interned rows.
    """

    def __init__(self, dim: int, namespace: str):
        self.dim = int(dim)
        self.namespace = namespace
        self._lock = threading.Lock()
        self._row_of: dict[FeatureKey, int] = {}
        self._keys: list[FeatureKey] = []
        self._storage = np.empty((_INITIAL_CAPACITY, self.dim))
        self._size = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: FeatureKey) -> bool:
        return key in self._row_of

    @property
    def matrix(self) -> np.ndarray:
        """View of the interned direction rows (do not mutate)."""
        return self._storage[: self._size]

    @property
    def keys(self) -> list[FeatureKey]:
        """Interned feature keys, indexed by row id (do not mutate)."""
        return self._keys

    @property
    def nbytes(self) -> int:
        """Resident bytes of the interned direction rows."""
        return self._size * self.dim * self._storage.itemsize

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def row(self, key: FeatureKey) -> int:
        """Return the row id for one feature, interning it if new."""
        existing = self._row_of.get(key)
        if existing is not None:
            return existing
        return self.intern([key])[0]

    def intern(self, keys: list[FeatureKey]) -> list[int]:
        """Intern ``keys`` (generating all missing directions in one pass)
        and return their row ids in input order."""
        missing = list(dict.fromkeys(key for key in keys if key not in self._row_of))
        if missing:
            with self._lock:
                missing = [key for key in missing if key not in self._row_of]
                if missing:
                    self._grow_to(self._size + len(missing))
                    for key in missing:
                        vec = self._generate(key)
                        self._storage[self._size] = vec
                        self._keys.append(key)
                        # publish the row id last: readers outside the lock
                        # only ever see fully-written rows
                        self._row_of[key] = self._size
                        self._size += 1
        row_of = self._row_of
        return [row_of[key] for key in keys]

    def direction(self, key: FeatureKey) -> np.ndarray:
        """The unit direction for one feature (interning it if new)."""
        return self._storage[self.row(key)]

    def clear(self) -> None:
        """Drop every interned direction (memory released)."""
        with self._lock:
            self._row_of = {}
            self._keys = []
            self._storage = np.empty((_INITIAL_CAPACITY, self.dim))
            self._size = 0

    # ------------------------------------------------------------------
    # pickling (process-pool workers receive a snapshot of the bank)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Ship keys only: direction values are pure functions of
        ``(namespace, dim, key)``, so regenerating them on the receiving
        side is bitwise identical and ~10x smaller on the wire than the
        float64 matrix (the dominant cost of pickling a warm embedder)."""
        state = self.__dict__.copy()
        del state["_lock"]
        del state["_storage"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._storage = np.empty((max(_INITIAL_CAPACITY, self._size), self.dim))
        for row, key in enumerate(self._keys):
            self._storage[row] = self._generate(key)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _generate(self, key: FeatureKey) -> np.ndarray:
        family, feature = key
        seed = stable_hash64(self.namespace, self.dim, family, feature)
        vec = np.random.default_rng(seed).standard_normal(self.dim)
        return vec / np.linalg.norm(vec)

    def _grow_to(self, capacity: int) -> None:
        if capacity <= self._storage.shape[0]:
            return
        new_capacity = max(capacity, 2 * self._storage.shape[0])
        storage = np.empty((new_capacity, self.dim))
        storage[: self._size] = self._storage[: self._size]
        self._storage = storage

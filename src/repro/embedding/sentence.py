"""Sentence embedder: weighted bag-of-features under a random projection.

The embedding model is unchanged from the original implementation —
every ``(family, feature)`` id maps to a fixed seeded unit direction,
features are summed with family/log-count weights and the result is
L2-normalized — but the execution is vectorized: feature directions live
in a persistent :class:`~repro.embedding.directions.DirectionBank`
matrix, per-word feature sets are memoized as interned row ids, and a
document embedding is one ``weights @ directions[rows]`` matmul instead
of a per-feature Python accumulation loop.

``encode()`` is the primary entry point; ``encode_one`` is a batch of
one, so batched and one-at-a-time encoding are bitwise identical.  The
historical per-feature loop survives as :meth:`encode_one_reference` for
equivalence tests and the perf-tracking benchmarks.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.embedding.directions import DirectionBank, FeatureKey
from repro.embedding.lexicon import ConceptLexicon, default_lexicon
from repro.embedding.tokenizer import STOPWORDS, Tokenizer, stem
from repro.utils.vectorops import normalize_rows

#: Relative weight of each feature family in the summed embedding.
FAMILY_WEIGHTS = {
    "concept": 3.0,
    "token": 1.0,
    "bigram": 0.8,
    "trigram": 0.25,
}


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 when either is all-zero)."""
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


class SentenceEmbedder:
    """Deterministic 768-d sentence embedder (MPNet substitute).

    Parameters
    ----------
    dim:
        Output dimensionality.  The paper uses 768 (Section III-A; the
        text also mentions "728" once — we treat that as a typo).
    lexicon:
        Synonym→concept table; defaults to the shared domain lexicon.
    seed_namespace:
        Distinct namespaces produce statistically independent projections,
        used by ablations that re-roll the projection matrix.

    Notes
    -----
    The per-document computation depends only on the document's own
    feature set, so ``encode(texts)`` is bitwise equal to stacking
    ``encode_one`` calls on the same embedder at any batch size.  Across
    embedders that interned their vocabularies in different orders,
    values agree to float addition order (~1e-15).
    """

    def __init__(
        self,
        dim: int = 768,
        lexicon: ConceptLexicon | None = None,
        seed_namespace: str = "mpnet-substitute",
    ):
        if dim < 8:
            raise ValueError(f"embedding dim must be >= 8, got {dim}")
        self.dim = int(dim)
        self.lexicon = lexicon if lexicon is not None else default_lexicon()
        self.seed_namespace = seed_namespace
        self._tokenizer = Tokenizer()
        self._bank = DirectionBank(self.dim, seed_namespace)
        #: per-row family weight, kept parallel to the bank rows
        self._row_weights = np.empty(0)
        # word-level memos over interned direction rows:
        #   raw word -> (stem | None, token+concept row ids, trigram row ids)
        #   stemmed bigram phrase -> bigram+concept row ids
        self._word_memo: dict[str, tuple[str | None, tuple[int, ...], tuple[int, ...]]] = {}
        self._bigram_memo: dict[str, tuple[int, ...]] = {}
        #: bumped whenever the projection changes identity (reseed);
        #: wrappers that cache vectors key their validity on this
        self._projection_generation = 0

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    @property
    def projection_generation(self) -> int:
        """Monotonic id of the current projection; changes on :meth:`reseed`.

        Vectors produced under different generations are not comparable
        (different random directions), so caches layered on top of the
        embedder must discard entries from older generations.
        """
        return self._projection_generation
    @property
    def direction_count(self) -> int:
        """Number of feature directions currently interned."""
        return len(self._bank)

    @property
    def cache_nbytes(self) -> int:
        """Resident bytes of the interned direction matrix."""
        return self._bank.nbytes

    def clear_cache(self) -> None:
        """Drop all interned directions and word-level feature memos.

        Bounds memory for long-lived embedders that sweep many corpora
        or namespaces (the direction matrix otherwise grows with every
        distinct feature ever seen).
        """
        self._bank.clear()
        self._row_weights = np.empty(0)
        self._word_memo = {}
        self._bigram_memo = {}

    def reseed(self, seed_namespace: str) -> None:
        """Re-roll the projection under a new namespace, releasing the old
        direction matrix (used by projection-ablation sweeps)."""
        self.seed_namespace = seed_namespace
        self._bank = DirectionBank(self.dim, seed_namespace)
        self._row_weights = np.empty(0)
        self._word_memo = {}
        self._bigram_memo = {}
        self._projection_generation += 1

    # ------------------------------------------------------------------
    # feature extraction
    # ------------------------------------------------------------------
    def features(self, text: str) -> Counter:
        """Return the weighted feature multiset for ``text``.

        Keys are ``(family, feature)`` tuples; values are raw counts.
        """
        words = self._tokenizer.words(text)
        try:
            rows = self._document_rows(words)
        except KeyError:
            self._warm_memos([words])
            rows = self._document_rows(words)
        keys = self._bank.keys
        return Counter(keys[row] for row in rows)

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, texts: list[str] | tuple[str, ...]) -> np.ndarray:
        """Embed a batch of strings into an ``(n, dim)`` float array."""
        if isinstance(texts, str):
            raise TypeError("encode() expects a sequence of strings; use encode_one()")
        texts = list(texts)
        if not texts:
            return np.zeros((0, self.dim))
        word_lists = [self._tokenizer.words(text) for text in texts]
        flats: list[list[int] | None] = [None] * len(texts)
        cold: list[int] = []
        for i, words in enumerate(word_lists):
            try:
                flats[i] = self._document_rows(words)
            except KeyError:
                cold.append(i)
        if cold:
            # one direction-generation pass for the batch's new vocabulary
            self._warm_memos([word_lists[i] for i in cold])
            for i in cold:
                flats[i] = self._document_rows(word_lists[i])
        weights_of_row = self._sync_row_weights()
        directions = self._bank.matrix
        # bincount is the faster unique-with-counts for compact row ids,
        # but zeroes an array as large as the bank — fall back to
        # np.unique (identical sorted output) for very large vocabularies
        small_bank = len(self._bank) <= 65536
        out = np.zeros((len(texts), self.dim))
        for i, flat in enumerate(flats):
            if not flat:
                continue
            # canonical per-document computation: sorted unique rows, one
            # weighted matmul — independent of batch composition, so the
            # same text embeds bitwise-identically at any batch size
            occurrences = np.fromiter(flat, dtype=np.intp, count=len(flat))
            if small_bank:
                by_row = np.bincount(occurrences)
                row_ids = np.flatnonzero(by_row)
                counts = by_row[row_ids]
            else:
                row_ids, counts = np.unique(occurrences, return_counts=True)
            weights = weights_of_row[row_ids] * (1.0 + np.log(counts))
            out[i] = weights @ directions[row_ids]
        return normalize_rows(out)

    def encode_one(self, text: str) -> np.ndarray:
        """Embed a single string into a unit-norm ``dim``-vector."""
        return self.encode([text])[0]

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity between the embeddings of two strings."""
        vectors = self.encode([text_a, text_b])
        return cosine_similarity(vectors[0], vectors[1])

    # ------------------------------------------------------------------
    # reference implementation (pre-vectorization)
    # ------------------------------------------------------------------
    def _direction(self, family: str, feature: str) -> np.ndarray:
        """Fixed pseudo-random unit direction for one feature id."""
        return self._bank.direction((family, feature))

    def features_reference(self, text: str) -> Counter:
        """The historical feature-extraction loop (no word memos)."""
        tokens = self._tokenizer.tokenize(text)
        counts: Counter = Counter()
        for token in tokens:
            counts[("token", token)] += 1
            for concept in self.lexicon.lookup(token):
                counts[("concept", concept)] += 1
        for first, second in zip(tokens, tokens[1:]):
            counts[("bigram", f"{first} {second}")] += 1
            for concept in self.lexicon.lookup_phrase(f"{first} {second}"):
                counts[("concept", concept)] += 1
        for trigram in self._tokenizer.char_trigrams(text):
            counts[("trigram", trigram)] += 1
        return counts

    def encode_one_reference(self, text: str) -> np.ndarray:
        """The historical per-feature accumulation loop.

        Kept verbatim as the numerical reference for the vectorized
        engine: equivalence tests assert ``encode`` matches it to float
        precision, and the perf benchmarks measure the batched speedup
        against it.
        """
        counts = self.features_reference(text)
        vec = np.zeros(self.dim)
        for (family, feature), count in counts.items():
            weight = FAMILY_WEIGHTS[family] * (1.0 + np.log(count))
            vec += weight * self._direction(family, feature)
        norm = float(np.linalg.norm(vec))
        if norm > 0.0:
            vec /= norm
        return vec

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _document_rows(self, words: list[str]) -> list[int]:
        """Flat direction-row ids (with multiplicity) for one document.

        Raises ``KeyError`` when a word or bigram is not memoized yet;
        callers fall back to :meth:`_warm_memos`.
        """
        flat: list[int] = []
        trigram_rows: list[int] = []
        stems: list[str] = []
        word_memo = self._word_memo
        for word in words:
            stemmed, rows, tri = word_memo[word]
            if stemmed is not None:
                stems.append(stemmed)
                flat += rows
            trigram_rows += tri
        bigram_memo = self._bigram_memo
        for first, second in zip(stems, stems[1:]):
            flat += bigram_memo[f"{first} {second}"]
        flat += trigram_rows
        return flat

    def _warm_memos(self, word_lists: list[list[str]]) -> None:
        """Memoize every word/bigram of a batch, generating new feature
        directions in one :meth:`DirectionBank.intern` pass."""
        word_memo = self._word_memo
        new_keys: list[FeatureKey] = []
        word_plans: dict[str, tuple[str | None, list[FeatureKey], list[FeatureKey]]] = {}
        remove_stop = self._tokenizer.remove_stopwords
        apply_stem = self._tokenizer.apply_stem
        for words in word_lists:
            for word in words:
                if word in word_memo or word in word_plans:
                    continue
                if remove_stop and word in STOPWORDS:
                    stemmed, keys = None, []
                else:
                    stemmed = stem(word) if apply_stem else word
                    keys = [("token", stemmed)]
                    keys.extend(("concept", c) for c in self.lexicon.lookup(stemmed))
                padded = f"#{word}#"
                tri_keys = [("trigram", padded[i:i + 3])
                            for i in range(len(padded) - 2)]
                word_plans[word] = (stemmed, keys, tri_keys)
                new_keys.extend(keys)
                new_keys.extend(tri_keys)

        def stem_of(word: str) -> str | None:
            memo = word_memo.get(word)
            return memo[0] if memo is not None else word_plans[word][0]

        # bigrams need the stems, which are now all known
        bigram_memo = self._bigram_memo
        bigram_plans: dict[str, list[FeatureKey]] = {}
        for words in word_lists:
            stems = [s for s in map(stem_of, words) if s is not None]
            for first, second in zip(stems, stems[1:]):
                phrase = f"{first} {second}"
                if phrase in bigram_memo or phrase in bigram_plans:
                    continue
                keys = [("bigram", phrase)]
                keys.extend(("concept", c) for c in self.lexicon.lookup_phrase(phrase))
                bigram_plans[phrase] = keys
                new_keys.extend(keys)

        if new_keys:
            self._bank.intern(list(dict.fromkeys(new_keys)))
        resolve = self._bank.intern
        for word, (stemmed, keys, tri_keys) in word_plans.items():
            word_memo[word] = (stemmed, tuple(resolve(keys)), tuple(resolve(tri_keys)))
        for phrase, keys in bigram_plans.items():
            bigram_memo[phrase] = tuple(resolve(keys))

    def _sync_row_weights(self) -> np.ndarray:
        """Extend the per-row family-weight array to cover all bank rows."""
        weights = self._row_weights
        n_rows = len(self._bank)
        if len(weights) < n_rows:
            keys = self._bank.keys
            fresh = np.fromiter(
                (FAMILY_WEIGHTS[keys[row][0]] for row in range(len(weights), n_rows)),
                dtype=float, count=n_rows - len(weights),
            )
            weights = np.concatenate([weights, fresh])
            self._row_weights = weights
        return weights

"""Sentence embedder: weighted bag-of-features under a random projection."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.embedding.lexicon import ConceptLexicon, default_lexicon
from repro.embedding.tokenizer import Tokenizer
from repro.utils.hashing import stable_hash64

#: Relative weight of each feature family in the summed embedding.
FAMILY_WEIGHTS = {
    "concept": 3.0,
    "token": 1.0,
    "bigram": 0.8,
    "trigram": 0.25,
}


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 when either is all-zero)."""
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


class SentenceEmbedder:
    """Deterministic 768-d sentence embedder (MPNet substitute).

    Parameters
    ----------
    dim:
        Output dimensionality.  The paper uses 768 (Section III-A; the
        text also mentions "728" once — we treat that as a typo).
    lexicon:
        Synonym→concept table; defaults to the shared domain lexicon.
    seed_namespace:
        Distinct namespaces produce statistically independent projections,
        used by ablations that re-roll the projection matrix.
    """

    def __init__(
        self,
        dim: int = 768,
        lexicon: ConceptLexicon | None = None,
        seed_namespace: str = "mpnet-substitute",
    ):
        if dim < 8:
            raise ValueError(f"embedding dim must be >= 8, got {dim}")
        self.dim = int(dim)
        self.lexicon = lexicon if lexicon is not None else default_lexicon()
        self.seed_namespace = seed_namespace
        self._tokenizer = Tokenizer()
        self._direction_cache: dict[tuple[str, str], np.ndarray] = {}

    # ------------------------------------------------------------------
    # feature extraction
    # ------------------------------------------------------------------
    def features(self, text: str) -> Counter:
        """Return the weighted feature multiset for ``text``.

        Keys are ``(family, feature)`` tuples; values are raw counts.
        """
        tokens = self._tokenizer.tokenize(text)
        counts: Counter = Counter()
        for token in tokens:
            counts[("token", token)] += 1
            for concept in self.lexicon.lookup(token):
                counts[("concept", concept)] += 1
        for first, second in zip(tokens, tokens[1:]):
            counts[("bigram", f"{first} {second}")] += 1
            for concept in self.lexicon.lookup_phrase(f"{first} {second}"):
                counts[("concept", concept)] += 1
        for trigram in self._tokenizer.char_trigrams(text):
            counts[("trigram", trigram)] += 1
        return counts

    # ------------------------------------------------------------------
    # projection
    # ------------------------------------------------------------------
    def _direction(self, family: str, feature: str) -> np.ndarray:
        """Fixed pseudo-random unit direction for one feature id."""
        key = (family, feature)
        cached = self._direction_cache.get(key)
        if cached is not None:
            return cached
        seed = stable_hash64(self.seed_namespace, self.dim, family, feature)
        rng = np.random.default_rng(seed)
        vec = rng.standard_normal(self.dim)
        vec /= np.linalg.norm(vec)
        self._direction_cache[key] = vec
        return vec

    def encode_one(self, text: str) -> np.ndarray:
        """Embed a single string into a unit-norm ``dim``-vector."""
        counts = self.features(text)
        vec = np.zeros(self.dim)
        for (family, feature), count in counts.items():
            weight = FAMILY_WEIGHTS[family] * (1.0 + np.log(count))
            vec += weight * self._direction(family, feature)
        norm = float(np.linalg.norm(vec))
        if norm > 0.0:
            vec /= norm
        return vec

    def encode(self, texts: list[str] | tuple[str, ...]) -> np.ndarray:
        """Embed a batch of strings into an ``(n, dim)`` float array."""
        if isinstance(texts, str):
            raise TypeError("encode() expects a sequence of strings; use encode_one()")
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.encode_one(text) for text in texts])

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity between the embeddings of two strings."""
        return cosine_similarity(self.encode_one(text_a), self.encode_one(text_b))

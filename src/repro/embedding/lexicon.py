"""Curated synonym→concept lexicon backing the embedding substrate.

MPNet's value for Less-is-More is that paraphrases of a tool description
("fetch the forecast" vs "get current weather conditions") land close in
latent space.  We reproduce that property explicitly: a hand-curated
lexicon maps domain synonyms onto shared *concept ids*, and the vectorizer
gives concept features a large weight.  The table below was written to
cover the vocabulary of the two tool catalogs shipped with this package
(:mod:`repro.suites.bfcl_catalog`, :mod:`repro.suites.geoengine_catalog`)
plus general agent phrasing, but it is plain data — users can extend it
with :meth:`ConceptLexicon.extended`.
"""

from __future__ import annotations

from repro.embedding.tokenizer import Tokenizer, stem

#: concept id -> synonym terms (single words or two-word phrases).
DEFAULT_CONCEPTS: dict[str, tuple[str, ...]] = {
    # ------------------------------------------------------------------
    # General agent / API vocabulary
    # ------------------------------------------------------------------
    "retrieve": ("get", "fetch", "retrieve", "obtain", "lookup", "look", "find",
                 "query", "request", "pull", "read", "access", "show", "give"),
    "compute": ("compute", "calculate", "evaluate", "determine", "solve",
                "derive", "figure", "work"),
    "create": ("create", "generate", "make", "build", "produce", "compose",
               "construct", "new", "add"),
    "update": ("update", "modify", "change", "edit", "set", "adjust",
               "revise", "alter"),
    "delete": ("delete", "remove", "erase", "clear", "discard", "drop",
               "cancel"),
    "list": ("list", "enumerate", "all", "available", "browse", "catalog"),
    "send": ("send", "dispatch", "transmit", "deliver", "forward", "share",
             "post", "publish"),
    "convert": ("convert", "transform", "translate", "change", "turn",
                "conversion"),
    "information": ("information", "info", "details", "data", "facts",
                    "description", "summary", "metadata"),
    "tool": ("tool", "function", "api", "method", "capability", "utility",
             "service", "endpoint"),
    # ------------------------------------------------------------------
    # Weather
    # ------------------------------------------------------------------
    "weather": ("weather", "forecast", "meteorological", "climate",
                "conditions", "meteorology"),
    "temperature": ("temperature", "celsius", "fahrenheit", "degrees",
                    "warm", "cold", "heat", "thermal"),
    "precipitation": ("rain", "snow", "precipitation", "rainfall",
                      "drizzle", "storm", "shower"),
    "wind": ("wind", "breeze", "gust", "windspeed"),
    "humidity": ("humidity", "humid", "moisture", "dew"),
    # ------------------------------------------------------------------
    # Language / translation / text
    # ------------------------------------------------------------------
    "language": ("language", "french", "spanish", "german", "english",
                 "italian", "japanese", "chinese", "korean", "portuguese",
                 "multilingual", "lingual"),
    "translate": ("translate", "translation", "translator", "localize"),
    "summarize": ("summarize", "summary", "condense", "abstract", "brief",
                  "digest", "shorten", "tldr"),
    "text": ("text", "string", "sentence", "paragraph", "words", "phrase",
             "passage", "content"),
    "grammar": ("grammar", "spelling", "proofread", "grammatical",
                "punctuation", "typo"),
    "sentiment": ("sentiment", "emotion", "tone", "polarity", "mood",
                  "opinion"),
    # ------------------------------------------------------------------
    # Math / statistics
    # ------------------------------------------------------------------
    "math": ("math", "mathematical", "arithmetic", "algebra", "expression",
             "equation", "formula"),
    "statistics": ("statistics", "statistical", "mean", "median", "variance",
                   "deviation", "average", "percentile", "distribution"),
    "geometry": ("geometry", "triangle", "circle", "polygon", "rectangle",
                 "hypotenuse", "radius", "perimeter"),
    "calculus": ("calculus", "derivative", "integral", "differentiate",
                 "integrate", "gradient", "limit"),
    "probability": ("probability", "chance", "likelihood", "odds", "random",
                    "dice", "coin"),
    "number": ("number", "numeric", "integer", "decimal", "digit", "value",
               "factorial", "prime", "root"),
    "matrix": ("matrix", "vector", "linear", "determinant", "eigenvalue"),
    # ------------------------------------------------------------------
    # Time / scheduling
    # ------------------------------------------------------------------
    "time": ("time", "clock", "hour", "minute", "second", "oclock"),
    "date": ("date", "day", "month", "year", "today", "tomorrow",
             "yesterday", "weekday"),
    "timezone": ("timezone", "utc", "gmt", "offset", "zone"),
    "calendar": ("calendar", "schedule", "appointment", "meeting", "event",
                 "agenda", "booking"),
    "reminder": ("reminder", "alarm", "alert", "notify", "notification",
                 "remind"),
    "duration": ("duration", "interval", "elapsed", "period", "span",
                 "countdown", "timer"),
    "season": ("season", "spring", "summer", "fall", "autumn", "winter",
               "quarter"),
    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    "email": ("email", "mail", "inbox", "gmail", "outlook", "compose"),
    "message": ("message", "sms", "chat", "messenger", "dm", "texting"),
    "contact": ("contact", "phone", "address", "directory", "people",
                "person", "recipient"),
    "call": ("call", "dial", "telephone", "ring", "voip"),
    # ------------------------------------------------------------------
    # Finance
    # ------------------------------------------------------------------
    "finance": ("finance", "financial", "money", "payment", "bank",
                "banking", "account"),
    "stock": ("stock", "share", "equity", "ticker", "nasdaq", "dow",
              "market", "portfolio"),
    "currency": ("currency", "dollar", "euro", "yen", "pound", "exchange",
                 "forex", "usd", "eur", "gbp"),
    "loan": ("loan", "mortgage", "interest", "amortization", "principal",
             "credit", "debt"),
    "tax": ("tax", "taxes", "income", "deduction", "irs", "vat"),
    "invest": ("invest", "investment", "return", "yield", "dividend",
               "compound"),
    "price": ("price", "cost", "quote", "worth", "valuation", "expensive",
              "cheap", "fee"),
    # ------------------------------------------------------------------
    # Units / measurement
    # ------------------------------------------------------------------
    "unit": ("unit", "measurement", "metric", "imperial", "measure"),
    "length": ("length", "meter", "kilometer", "mile", "feet", "foot",
               "inch", "centimeter", "yard"),
    "weight": ("weight", "mass", "kilogram", "pound", "gram", "ounce",
               "ton"),
    "volume": ("volume", "liter", "gallon", "cup", "milliliter", "quart"),
    "speed": ("speed", "velocity", "mph", "kph", "knots", "pace"),
    # ------------------------------------------------------------------
    # Places / navigation
    # ------------------------------------------------------------------
    "location": ("location", "place", "position", "where", "site", "spot",
                 "venue", "locality"),
    "city": ("city", "town", "york", "london", "paris", "tokyo", "chicago",
             "berlin", "madrid", "urban", "metropolis"),
    "country": ("country", "nation", "usa", "uk", "france", "germany",
                "japan", "china", "india", "kingdom", "states", "national"),
    "map": ("map", "atlas", "cartography", "mapping", "basemap", "tiles"),
    "route": ("route", "directions", "navigate", "navigation", "path",
              "itinerary", "way"),
    "distance": ("distance", "far", "near", "proximity", "kilometers",
                 "miles", "how far"),
    "geocode": ("geocode", "geocoding", "coordinates", "latitude",
                "longitude", "lat", "lon", "latlon"),
    "traffic": ("traffic", "congestion", "commute", "rush"),
    # ------------------------------------------------------------------
    # Knowledge / search / media
    # ------------------------------------------------------------------
    "search": ("search", "web", "google", "internet", "browse", "engine"),
    "wiki": ("wiki", "wikipedia", "encyclopedia", "article", "knowledge"),
    "news": ("news", "headline", "journalism", "breaking", "press",
             "newspaper"),
    "movie": ("movie", "film", "cinema", "imdb", "actor", "director",
              "showtime"),
    "music": ("music", "song", "artist", "album", "playlist", "lyrics",
              "spotify", "track"),
    "book": ("book", "novel", "author", "isbn", "literature", "reading"),
    "sports": ("sports", "score", "game", "match", "team", "league",
               "football", "basketball", "soccer", "baseball"),
    "recipe": ("recipe", "cook", "cooking", "ingredient", "dish", "meal",
               "cuisine", "kitchen", "bake"),
    "trivia": ("trivia", "fact", "quiz", "question", "answer"),
    # ------------------------------------------------------------------
    # Health / fitness
    # ------------------------------------------------------------------
    "health": ("health", "medical", "doctor", "symptom", "wellness",
               "medicine"),
    "fitness": ("fitness", "exercise", "workout", "bmi", "calorie",
                "calories", "diet", "steps", "gym"),
    # ------------------------------------------------------------------
    # Travel / shopping
    # ------------------------------------------------------------------
    "travel": ("travel", "trip", "vacation", "tourism", "journey",
               "destination"),
    "flight": ("flight", "airline", "airport", "plane", "airfare",
               "aviation", "boarding"),
    "hotel": ("hotel", "lodging", "accommodation", "hostel", "resort",
              "room", "stay"),
    "restaurant": ("restaurant", "dining", "eat", "reservation", "cafe",
                   "bistro", "food"),
    "shopping": ("shopping", "shop", "buy", "purchase", "order", "cart",
                 "product", "store", "amazon", "retail"),
    "delivery": ("delivery", "shipping", "ship", "package", "parcel",
                 "tracking", "courier"),
    # ------------------------------------------------------------------
    # Device / files / OS
    # ------------------------------------------------------------------
    "file": ("file", "document", "pdf", "folder", "directory", "filename",
             "doc", "docx"),
    "open": ("open", "launch", "start", "run", "execute", "view"),
    "print": ("print", "printer", "printout", "hardcopy"),
    "browser": ("browser", "chrome", "firefox", "safari", "tab", "url",
                "website", "webpage", "link"),
    "note": ("note", "memo", "jot", "notebook", "notes"),
    "todo": ("todo", "task", "checklist", "chore", "item"),
    "device": ("device", "phone", "laptop", "computer", "tablet",
               "hardware", "machine"),
    "settings": ("settings", "configuration", "preference", "option",
                 "setup", "config"),
    "battery": ("battery", "charge", "power", "energy"),
    "light": ("light", "lamp", "brightness", "dim", "bulb", "led"),
    "thermostat": ("thermostat", "hvac", "heating", "cooling", "ac"),
    "lock": ("lock", "unlock", "secure", "door", "deadbolt"),
    "camera": ("camera", "photo", "picture", "snapshot", "image",
               "photograph"),
    "audio": ("audio", "sound", "volume", "speaker", "mute"),
    # ------------------------------------------------------------------
    # Geospatial / remote sensing (GeoEngine domain)
    # ------------------------------------------------------------------
    "satellite": ("satellite", "sentinel", "landsat", "orbital", "spaceborne",
                  "modis"),
    "imagery": ("imagery", "image", "raster", "scene", "tile", "frame",
                "patch", "picture"),
    "dataset": ("dataset", "catalog", "collection", "corpus", "archive",
                "fmow", "xview", "benchmark"),
    "aerial": ("aerial", "drone", "uav", "overhead", "airborne"),
    "region": ("region", "area", "zone", "extent", "boundary", "bbox",
               "bounding", "aoi", "territory"),
    "detect": ("detect", "detection", "detector", "find", "locate",
               "identify", "spot", "recognize"),
    "object": ("object", "target", "building", "vehicle", "ship", "aircraft",
               "car", "truck", "airplane", "boat"),
    "classify": ("classify", "classification", "categorize", "label",
                 "class", "category"),
    "segment": ("segment", "segmentation", "mask", "delineate", "outline",
                "footprint"),
    "caption": ("caption", "describe", "description", "vqa", "annotate",
                "annotation", "narrate"),
    "plot": ("plot", "chart", "graph", "visualize", "visualization",
             "render", "draw", "figure", "histogram", "heatmap",
             "display"),
    "count": ("count", "tally", "quantity", "how many", "number of",
              "enumerate"),
    "filter": ("filter", "subset", "select", "restrict", "narrow", "match",
               "criteria", "within"),
    "change": ("change", "difference", "temporal", "before", "after",
               "delta", "compare", "comparison"),
    "cloud": ("cloud", "cloudy", "overcast", "cloudcover"),
    "vegetation": ("vegetation", "ndvi", "forest", "crop", "greenery",
                   "agriculture", "farmland", "plant"),
    "water": ("water", "river", "lake", "flood", "ocean", "sea",
              "coastline", "wetland"),
    "urban_feature": ("road", "highway", "bridge", "runway", "port",
                      "harbor", "airstrip", "parking"),
    "population": ("population", "census", "demographic", "inhabitants",
                   "density"),
    "landuse": ("landuse", "land use", "landcover", "land cover", "zoning",
                "terrain"),
    "elevation": ("elevation", "altitude", "dem", "topography", "height",
                  "slope"),
    "disaster": ("disaster", "earthquake", "wildfire", "hurricane",
                 "damage", "emergency", "tornado"),
    "export": ("export", "save", "download", "write", "persist", "store",
               "dump"),
    "report": ("report", "pdf report", "summary report", "document",
               "briefing"),
    "crop_image": ("crop", "resize", "clip", "cut", "trim", "rescale"),
    "resolution": ("resolution", "zoom", "scale", "gsd", "sharpness"),
    "band": ("band", "spectral", "infrared", "multispectral", "rgb",
             "wavelength", "nir"),
    "geojson": ("geojson", "shapefile", "kml", "geopackage", "wkt"),
}


class ConceptLexicon:
    """Mapping from stemmed tokens (and two-word phrases) to concept ids.

    The lexicon is immutable after construction; :meth:`extended` returns a
    new lexicon with extra concepts merged in.
    """

    def __init__(self, concepts: dict[str, tuple[str, ...]] | None = None):
        concepts = DEFAULT_CONCEPTS if concepts is None else concepts
        self._concepts = {name: tuple(terms) for name, terms in concepts.items()}
        self._token_map: dict[str, list[str]] = {}
        self._phrase_map: dict[str, list[str]] = {}
        tokenizer = Tokenizer(remove_stopwords=False, apply_stem=False)
        for concept, terms in self._concepts.items():
            for term in terms:
                words = tokenizer.words(term)
                if not words:
                    continue
                if len(words) == 1:
                    key = stem(words[0])
                    self._token_map.setdefault(key, [])
                    if concept not in self._token_map[key]:
                        self._token_map[key].append(concept)
                else:
                    key = " ".join(stem(word) for word in words[:2])
                    self._phrase_map.setdefault(key, [])
                    if concept not in self._phrase_map[key]:
                        self._phrase_map[key].append(concept)

    @property
    def concepts(self) -> dict[str, tuple[str, ...]]:
        """The concept table this lexicon was built from."""
        return dict(self._concepts)

    def __len__(self) -> int:
        return len(self._concepts)

    def lookup(self, stemmed_token: str) -> list[str]:
        """Return concept ids for a stemmed token ([] when unknown)."""
        return list(self._token_map.get(stemmed_token, ()))

    def lookup_phrase(self, stemmed_bigram: str) -> list[str]:
        """Return concept ids for a stemmed two-word phrase."""
        return list(self._phrase_map.get(stemmed_bigram, ()))

    def extended(self, extra: dict[str, tuple[str, ...]]) -> "ConceptLexicon":
        """Return a new lexicon with ``extra`` concepts merged in."""
        merged = dict(self._concepts)
        for name, terms in extra.items():
            merged[name] = tuple(dict.fromkeys(merged.get(name, ()) + tuple(terms)))
        return ConceptLexicon(merged)


_DEFAULT: ConceptLexicon | None = None


def default_lexicon() -> ConceptLexicon:
    """Return the shared default lexicon instance (built once)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ConceptLexicon()
    return _DEFAULT

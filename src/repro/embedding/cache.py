"""Memoizing wrapper around a sentence embedder.

Tool descriptions and benchmark queries are embedded many times across
schemes and models during an evaluation sweep; a shared cache keeps the
whole Figure-2 grid tractable without changing any semantics (the
embedder is deterministic).
"""

from __future__ import annotations

import numpy as np

from repro.embedding.sentence import SentenceEmbedder


class CachedEmbedder:
    """Deterministic embedder with an unbounded text -> vector cache."""

    def __init__(self, embedder: SentenceEmbedder | None = None):
        self.embedder = embedder if embedder is not None else SentenceEmbedder()
        self._cache: dict[str, np.ndarray] = {}

    @property
    def dim(self) -> int:
        return self.embedder.dim

    def encode_one(self, text: str) -> np.ndarray:
        """Embed one string, reusing the cached vector when available."""
        vec = self._cache.get(text)
        if vec is None:
            vec = self.embedder.encode_one(text)
            self._cache[text] = vec
        return vec

    def encode(self, texts: list[str] | tuple[str, ...]) -> np.ndarray:
        """Embed a batch through the cache."""
        if isinstance(texts, str):
            raise TypeError("encode() expects a sequence of strings")
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.encode_one(text) for text in texts])

    def __len__(self) -> int:
        return len(self._cache)


_SHARED: CachedEmbedder | None = None


def shared_embedder() -> CachedEmbedder:
    """Process-wide cached embedder (the default for agents/pipelines)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = CachedEmbedder()
    return _SHARED

"""Memoizing wrapper around a sentence embedder.

Tool descriptions and benchmark queries are embedded many times across
schemes and models during an evaluation sweep; a shared cache keeps the
whole Figure-2 grid tractable without changing any semantics (the
embedder is deterministic).

The cache is batch-aware: one pass partitions a batch into hits and
misses, the misses are embedded in a single vectorized
:meth:`SentenceEmbedder.encode` call, and the results are merged back in
order.  An optional ``max_entries`` bound turns the cache into an LRU so
long-lived services cannot grow without limit.  All cache mutation is
lock-protected, so one embedder can be shared by a parallel experiment
grid.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.embedding.sentence import SentenceEmbedder


class CachedEmbedder:
    """Deterministic embedder with a text -> vector cache.

    Parameters
    ----------
    embedder:
        The underlying :class:`SentenceEmbedder` (a default instance is
        created when omitted).
    max_entries:
        When set, the cache evicts least-recently-used entries beyond
        this bound; ``None`` (the default) keeps every vector.
    """

    def __init__(self, embedder: SentenceEmbedder | None = None,
                 max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.embedder = embedder if embedder is not None else SentenceEmbedder()
        self.max_entries = max_entries
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        # serializes underlying-embedder compute against reseed(): a
        # projection swap mid-encode would otherwise tear vectors (rows
        # summed from two different direction banks) or let a vector
        # computed under the old projection land in the new-generation
        # cache
        self._compute_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._generation = getattr(self.embedder, "projection_generation", 0)

    @property
    def dim(self) -> int:
        return self.embedder.dim

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode_one(self, text: str) -> np.ndarray:
        """Embed one string, reusing the cached vector when available."""
        with self._lock:
            self._check_generation()
            vec = self._lookup(text)
        if vec is not None:
            return vec
        return self.encode([text])[0]

    def encode(self, texts: list[str] | tuple[str, ...]) -> np.ndarray:
        """Embed a batch through the cache.

        Cache hits are collected in a single partitioning pass; the
        unique misses are embedded with one batched call under
        ``_compute_lock``, so a concurrent :meth:`reseed` cannot swap the
        projection mid-batch (torn vectors).  Both phases are pinned to
        one projection generation: if a reseed lands anywhere between
        the hit lookup and the store, the whole partition is discarded
        and redone, so the returned matrix never mixes vectors from two
        projections and nothing stale is stored into the fresh cache.
        """
        if isinstance(texts, str):
            raise TypeError("encode() expects a sequence of strings")
        texts = list(texts)
        if not texts:
            return np.zeros((0, self.dim))
        while True:
            out: list[np.ndarray | None] = [None] * len(texts)
            miss_positions: dict[str, list[int]] = {}
            with self._lock:
                self._check_generation()
                generation = self._generation
                for i, text in enumerate(texts):
                    vec = self._lookup(text)
                    if vec is None:
                        miss_positions.setdefault(text, []).append(i)
                    else:
                        out[i] = vec
            if not miss_positions:
                return np.stack(out)
            unique_misses = list(miss_positions)
            with self._compute_lock:
                compute_generation = getattr(self.embedder, "projection_generation", 0)
                fresh = self.embedder.encode(unique_misses)
            with self._lock:
                self._check_generation()
                if not (self._generation == generation == compute_generation):
                    continue  # reseed() raced the lookup/compute; redo everything
                for text, vec in zip(unique_misses, fresh):
                    stored = self._store(text, vec)
                    for i in miss_positions[text]:
                        out[i] = stored
            return np.stack(out)

    # ------------------------------------------------------------------
    # cache introspection / management
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cache)

    def cache_info(self) -> dict[str, int | None]:
        """Hit/miss/eviction counters plus current and maximum size."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "size": len(self._cache),
            "max_entries": self.max_entries,
        }

    def clear(self) -> None:
        """Drop every cached vector (counters are kept)."""
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # cross-process cache transfer
    # ------------------------------------------------------------------
    def cached_texts(self) -> frozenset[str]:
        """The texts currently cached (a snapshot, cheap to take).

        Process-pool workers record this before running their chunk so
        :meth:`export_cache` can ship only the entries they added.
        """
        with self._lock:
            self._check_generation()
            return frozenset(self._cache)

    def export_cache(self, exclude: frozenset[str] | set[str] = frozenset()) -> dict:
        """Snapshot the cache for transfer to another embedder.

        Returns a plain picklable dict: the projection generation the
        vectors were computed under plus a text -> vector mapping.  Used
        by process-pool grid workers to ship their warmed entries back to
        the parent (see :meth:`merge_cache`); passing the
        :meth:`cached_texts` snapshot taken *before* the work as
        ``exclude`` turns the export into a true delta, so inherited
        entries are not re-serialized just for the parent to skip them.
        """
        with self._lock:
            self._check_generation()
            return {
                "generation": self._generation,
                "entries": {text: vec for text, vec in self._cache.items()
                            if text not in exclude},
            }

    def merge_cache(self, exported: dict) -> int:
        """Merge an :meth:`export_cache` snapshot into this cache.

        Entries whose text is already cached are skipped (the embedder is
        deterministic, so both sides hold the same vector), and snapshots
        from a different projection generation are ignored wholesale —
        their vectors are incomparable with the current projection.
        Returns the number of entries actually added; the LRU bound, when
        set, applies as usual.
        """
        generation = exported["generation"]
        entries = exported["entries"]
        merged = 0
        with self._lock:
            self._check_generation()
            if generation != self._generation:
                return 0
            for text, vec in entries.items():
                if text not in self._cache:
                    self._store(text, np.asarray(vec))
                    merged += 1
        return merged

    # ------------------------------------------------------------------
    # pickling (process-pool workers receive a warm snapshot)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        del state["_compute_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._compute_lock = threading.Lock()

    def reseed(self, seed_namespace: str) -> None:
        """Re-roll the underlying projection, coherently with the cache.

        Calling ``embedder.reseed`` directly still works (the generation
        check invalidates the cache lazily), but going through this
        method additionally excludes in-flight encode computes, so
        concurrent callers can never observe a vector torn across two
        projections.
        """
        with self._compute_lock:
            self.embedder.reseed(seed_namespace)
        with self._lock:
            self._check_generation()

    # ------------------------------------------------------------------
    # internals (callers hold the lock)
    # ------------------------------------------------------------------
    def _check_generation(self) -> None:
        """Drop cached vectors produced under an older projection.

        :meth:`SentenceEmbedder.reseed` re-rolls the random directions,
        making previously cached vectors incomparable with new ones;
        tracking the embedder's projection generation keeps the cache
        coherent without an explicit invalidation call."""
        generation = getattr(self.embedder, "projection_generation", 0)
        if generation != self._generation:
            self._cache.clear()
            self._generation = generation

    def _lookup(self, text: str) -> np.ndarray | None:
        vec = self._cache.get(text)
        if vec is None:
            self._misses += 1
            return None
        self._hits += 1
        if self.max_entries is not None:
            self._cache.move_to_end(text)
        return vec

    def _store(self, text: str, vec: np.ndarray) -> np.ndarray:
        kept = self._cache.get(text)
        if kept is not None:
            # another thread computed the same text first; keep its copy
            # so every caller observes one canonical vector per text
            return kept
        # own the storage: a row view of the batch result would keep the
        # whole (n, dim) base array alive, defeating the LRU memory bound
        if vec.base is not None:
            vec = vec.copy()
        self._cache[text] = vec
        if self.max_entries is not None and len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
            self._evictions += 1
        return vec


_SHARED: CachedEmbedder | None = None


def shared_embedder() -> CachedEmbedder:
    """Process-wide cached embedder (the default for agents/pipelines)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = CachedEmbedder()
    return _SHARED

"""Word tokenizer with stopword removal and light suffix stemming."""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Compact english stopword list; enough to keep tool/query tokens clean.
STOPWORDS = frozenset(
    """
    a an and are as at be been but by can could did do does for from had has
    have he her his how i if in into is it its me my no nor not of on or our
    she should so some such than that the their them then there these they
    this those to us was we were what when where which who whom why will with
    would you your please kindly
    """.split()
)

_SUFFIXES = ("ingly", "edly", "ings", "ing", "edly", "ied", "ies", "ed", "es", "s", "ly")
_KEEP_SHORT = frozenset({"gas", "bus", "gps", "les", "las", "pas"})


def stem(word: str) -> str:
    """Light deterministic suffix-stripping stemmer.

    Much weaker than Porter but stable and predictable: it only strips a
    suffix when the remaining stem keeps at least three characters, so the
    lexicon can rely on the mapping ("plotting" -> "plott" is avoided by
    de-doubling the final consonant).
    """
    if word in _KEEP_SHORT or len(word) <= 3:
        return word
    for suffix in _SUFFIXES:
        if word.endswith(suffix) and len(word) - len(suffix) >= 3:
            stemmed = word[: -len(suffix)]
            if suffix in ("ied", "ies"):
                stemmed += "y"
            # de-double trailing consonant: "plott" -> "plot"
            if len(stemmed) >= 4 and stemmed[-1] == stemmed[-2] and stemmed[-1] not in "aeiouls":
                stemmed = stemmed[:-1]
            return stemmed
    return word


class Tokenizer:
    """Lowercasing word tokenizer with optional stopword removal/stemming."""

    def __init__(self, remove_stopwords: bool = True, apply_stem: bool = True):
        self.remove_stopwords = remove_stopwords
        self.apply_stem = apply_stem

    def words(self, text: str) -> list[str]:
        """Return raw lowercase word tokens (no stopword removal)."""
        return _TOKEN_RE.findall(text.lower())

    def tokenize(self, text: str) -> list[str]:
        """Return normalised tokens ready for feature extraction."""
        tokens = self.words(text)
        if self.remove_stopwords:
            tokens = [token for token in tokens if token not in STOPWORDS]
        if self.apply_stem:
            tokens = [stem(token) for token in tokens]
        return tokens

    def char_trigrams(self, text: str) -> list[str]:
        """Return padded character trigrams of each raw word."""
        trigrams: list[str] = []
        for word in self.words(text):
            padded = f"#{word}#"
            if len(padded) < 3:
                continue
            trigrams.extend(padded[i : i + 3] for i in range(len(padded) - 2))
        return trigrams

"""Silhouette coefficient for validating cluster quality."""

from __future__ import annotations

import numpy as np

from repro.clustering.distances import pairwise_distances


def silhouette_score(vectors: np.ndarray, labels: np.ndarray, metric: str = "euclidean") -> float:
    """Mean silhouette coefficient over all samples.

    Returns 0.0 when every point is in one cluster or every point is its
    own cluster (the coefficient is undefined there; 0 is the neutral
    convention).
    """
    vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
    labels = np.asarray(labels)
    if vectors.shape[0] != labels.shape[0]:
        raise ValueError("vectors and labels length mismatch")
    unique = np.unique(labels)
    n = vectors.shape[0]
    if len(unique) < 2 or len(unique) >= n:
        return 0.0
    dist = pairwise_distances(vectors, metric=metric)
    scores = np.zeros(n)
    for i in range(n):
        same = labels == labels[i]
        same[i] = False
        if not np.any(same):
            scores[i] = 0.0
            continue
        a = float(np.mean(dist[i, same]))
        b = min(
            float(np.mean(dist[i, labels == other]))
            for other in unique
            if other != labels[i]
        )
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0.0 else (b - a) / denom
    return float(np.mean(scores))

"""Pairwise distance computations for clustering."""

from __future__ import annotations

import numpy as np

from repro.utils.vectorops import normalize_rows


def pairwise_distances(vectors: np.ndarray, metric: str = "euclidean") -> np.ndarray:
    """Return the symmetric ``(n, n)`` distance matrix.

    Supported metrics: ``euclidean`` and ``cosine`` (1 - cosine
    similarity, the natural choice for unit-norm sentence embeddings).
    """
    vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
    if metric == "euclidean":
        sq = np.sum(vectors**2, axis=1)
        dists = sq[:, None] - 2.0 * (vectors @ vectors.T) + sq[None, :]
        np.maximum(dists, 0.0, out=dists)
        matrix = np.sqrt(dists)
    elif metric == "cosine":
        unit = normalize_rows(vectors)
        matrix = 1.0 - unit @ unit.T
        np.clip(matrix, 0.0, 2.0, out=matrix)
    else:
        raise ValueError(f"unknown metric {metric!r}; use 'euclidean' or 'cosine'")
    np.fill_diagonal(matrix, 0.0)
    return matrix

"""Cluster-count selection for Level-2 construction.

The paper does not publish its cluster count; ``SearchLevelBuilder``
defaults to a pool-size heuristic.  This module provides a principled
alternative — silhouette-scanning over a candidate range — exposed via
``SearchLevelBuilder(n_clusters="auto")`` and exercised by the Level-2
ablation tests.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.agglomerative import AgglomerativeClustering
from repro.clustering.silhouette import silhouette_score


def select_n_clusters(
    vectors: np.ndarray,
    k_min: int = 4,
    k_max: int | None = None,
    linkage: str = "ward",
    metric: str = "euclidean",
) -> tuple[int, dict[int, float]]:
    """Pick the cluster count maximising the silhouette coefficient.

    Returns ``(best_k, {k: score})``.  A single dendrogram is built and
    cut at every candidate ``k`` (agglomerative clustering's free lunch),
    so the scan costs one clustering run plus cheap cuts.
    """
    vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
    n = vectors.shape[0]
    if n < 3:
        return max(1, n), {max(1, n): 0.0}
    k_max = min(k_max if k_max is not None else n // 2, n - 1)
    k_min = max(2, min(k_min, k_max))

    model = AgglomerativeClustering(n_clusters=k_min, linkage=linkage, metric=metric)
    dendrogram = model.build_dendrogram(vectors)

    scores: dict[int, float] = {}
    for k in range(k_min, k_max + 1):
        labels = dendrogram.cut(n_clusters=k)
        scores[k] = silhouette_score(vectors, labels, metric=metric)
    best_k = max(scores, key=lambda k: (scores[k], -k))
    return best_k, scores

"""Agglomerative clustering via the Lance-Williams recurrence.

Starts from singleton clusters and repeatedly merges the closest pair,
updating inter-cluster distances with the Lance-Williams formula so all
four classic linkages share one O(n^2)-memory implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering.distances import pairwise_distances

_LINKAGES = ("single", "complete", "average", "ward")


@dataclass(frozen=True)
class Merge:
    """One dendrogram merge: clusters ``left`` and ``right`` at ``distance``."""

    left: int
    right: int
    distance: float
    size: int


@dataclass
class Dendrogram:
    """Full merge history over ``n_points`` leaves.

    Cluster ids follow scipy convention: leaves are ``0..n-1``, the merge
    recorded at position ``i`` creates cluster ``n + i``.
    """

    n_points: int
    merges: list[Merge] = field(default_factory=list)

    def cut(self, n_clusters: int | None = None, distance_threshold: float | None = None) -> np.ndarray:
        """Return flat labels, cutting by cluster count or distance.

        Exactly one of ``n_clusters`` / ``distance_threshold`` must be
        given.  Labels are relabelled to ``0..k-1`` in order of first
        appearance.
        """
        if (n_clusters is None) == (distance_threshold is None):
            raise ValueError("specify exactly one of n_clusters or distance_threshold")
        if n_clusters is not None:
            if not 1 <= n_clusters <= self.n_points:
                raise ValueError(f"n_clusters must be in [1, {self.n_points}], got {n_clusters}")
            n_merges = self.n_points - n_clusters
        else:
            n_merges = sum(1 for merge in self.merges if merge.distance <= distance_threshold)

        parent = list(range(self.n_points + len(self.merges)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i, merge in enumerate(self.merges[:n_merges]):
            new_id = self.n_points + i
            parent[find(merge.left)] = new_id
            parent[find(merge.right)] = new_id

        roots: dict[int, int] = {}
        labels = np.zeros(self.n_points, dtype=np.int64)
        for point in range(self.n_points):
            root = find(point)
            if root not in roots:
                roots[root] = len(roots)
            labels[point] = roots[root]
        return labels


def _lance_williams(linkage: str, d_ik: np.ndarray, d_jk: np.ndarray,
                    d_ij: float, n_i: int, n_j: int, n_k: np.ndarray) -> np.ndarray:
    """Distance from merged cluster (i∪j) to every other cluster k."""
    if linkage == "single":
        return np.minimum(d_ik, d_jk)
    if linkage == "complete":
        return np.maximum(d_ik, d_jk)
    if linkage == "average":
        total = n_i + n_j
        return (n_i * d_ik + n_j * d_jk) / total
    # ward (on squared euclidean distances, sqrt applied by caller)
    total = n_i + n_j + n_k
    return np.sqrt(
        ((n_i + n_k) * d_ik**2 + (n_j + n_k) * d_jk**2 - n_k * d_ij**2) / total
    )


class AgglomerativeClustering:
    """Bottom-up hierarchical clustering.

    Parameters
    ----------
    n_clusters:
        Number of flat clusters to cut (mutually exclusive with
        ``distance_threshold``).
    linkage:
        ``single`` | ``complete`` | ``average`` | ``ward``.  Ward requires
        the euclidean metric (as in scikit-learn).
    metric:
        ``euclidean`` or ``cosine`` (see :func:`pairwise_distances`).
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        distance_threshold: float | None = None,
        linkage: str = "average",
        metric: str = "euclidean",
    ):
        if linkage not in _LINKAGES:
            raise ValueError(f"unknown linkage {linkage!r}; choose from {_LINKAGES}")
        if linkage == "ward" and metric != "euclidean":
            raise ValueError("ward linkage requires the euclidean metric")
        if (n_clusters is None) == (distance_threshold is None):
            raise ValueError("specify exactly one of n_clusters or distance_threshold")
        self.n_clusters = n_clusters
        self.distance_threshold = distance_threshold
        self.linkage = linkage
        self.metric = metric
        self.dendrogram_: Dendrogram | None = None
        self.labels_: np.ndarray | None = None

    def build_dendrogram(self, vectors: np.ndarray) -> Dendrogram:
        """Run the full merge sequence and return the dendrogram."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        n = vectors.shape[0]
        if n == 0:
            raise ValueError("cannot cluster an empty dataset")
        dist = pairwise_distances(vectors, metric=self.metric)
        dendrogram = Dendrogram(n_points=n)
        active: dict[int, int] = {i: 1 for i in range(n)}  # cluster id -> size
        # distance matrix indexed by *current row slots*; slot -> cluster id
        slot_of: dict[int, int] = {i: i for i in range(n)}
        np.fill_diagonal(dist, np.inf)

        next_id = n
        for _ in range(n - 1):
            flat = np.argmin(dist)
            row, col = np.unravel_index(flat, dist.shape)
            if row > col:
                row, col = col, row
            d_ij = float(dist[row, col])
            left_id, right_id = slot_of[row], slot_of[col]
            n_i, n_j = active[left_id], active[right_id]

            others = [slot for slot in range(dist.shape[0])
                      if slot not in (row, col) and slot in slot_of]
            if others:
                other_idx = np.asarray(others)
                n_k = np.asarray([active[slot_of[slot]] for slot in others], dtype=float)
                merged = _lance_williams(
                    self.linkage, dist[row, other_idx], dist[col, other_idx],
                    d_ij, n_i, n_j, n_k,
                )
                dist[row, other_idx] = merged
                dist[other_idx, row] = merged
            # retire slot `col`
            dist[col, :] = np.inf
            dist[:, col] = np.inf
            dist[row, row] = np.inf
            del slot_of[col]
            del active[left_id]
            del active[right_id]
            slot_of[row] = next_id
            active[next_id] = n_i + n_j
            dendrogram.merges.append(Merge(left_id, right_id, d_ij, n_i + n_j))
            next_id += 1
        return dendrogram

    def fit(self, vectors: np.ndarray) -> "AgglomerativeClustering":
        """Cluster ``vectors``; labels land in :attr:`labels_`."""
        self.dendrogram_ = self.build_dendrogram(vectors)
        n = self.dendrogram_.n_points
        if self.n_clusters is not None:
            self.labels_ = self.dendrogram_.cut(n_clusters=min(self.n_clusters, n))
        else:
            self.labels_ = self.dendrogram_.cut(distance_threshold=self.distance_threshold)
        return self

    def fit_predict(self, vectors: np.ndarray) -> np.ndarray:
        """Cluster ``vectors`` and return the flat labels."""
        self.fit(vectors)
        assert self.labels_ is not None
        return self.labels_

"""Hierarchical clustering substrate (scikit-learn substitute).

Search Level 2 groups the augmented query latent space with agglomerative
clustering (paper Section III-A).  This package implements the algorithm
from scratch: pairwise distances, Lance-Williams linkage updates
(single/complete/average/ward), dendrogram cuts by cluster count or
distance threshold, and silhouette validation.
"""

from repro.clustering.agglomerative import AgglomerativeClustering, Dendrogram, Merge
from repro.clustering.distances import pairwise_distances
from repro.clustering.silhouette import silhouette_score

__all__ = [
    "AgglomerativeClustering",
    "Dendrogram",
    "Merge",
    "pairwise_distances",
    "silhouette_score",
]

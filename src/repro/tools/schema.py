"""Tool schema objects (OpenAI function-calling style)."""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any

#: JSON-schema-ish parameter types supported by the catalogs.
PARAMETER_TYPES = ("string", "integer", "number", "boolean", "array")

#: Description variants a catalog can present (paper Section III: fewer
#: tools *and* shorter descriptions fit the edge context budget).
DESCRIPTION_VARIANTS = ("full", "compressed", "minimal")

_SENTENCE_BREAK = re.compile(r"(?<=[.!?])\s")
_TRAILING_EXAMPLE = re.compile(r",\s*(?:like|such as|e\.g\.)\s[^.]*", re.IGNORECASE)


def derive_description(text: str, variant: str) -> str:
    """Deterministically shrink a full description to a variant.

    ``compressed`` keeps the first sentence and drops trailing example
    clauses (", like Fall 2009"); ``minimal`` keeps the first six words.
    Both are pure functions of the input text, so a catalog rebuilt from
    the same specs always produces the same variant corpus (and the same
    content hash).  Explicit per-tool overrides on :class:`ToolSpec`
    take precedence over this derivation.
    """
    if variant == "full":
        return text
    if variant not in DESCRIPTION_VARIANTS:
        raise ValueError(
            f"unknown description variant {variant!r}; "
            f"expected one of {', '.join(DESCRIPTION_VARIANTS)}")
    match = _SENTENCE_BREAK.search(text)
    sentence = text[:match.start()] if match else text
    compressed = _TRAILING_EXAMPLE.sub("", sentence).strip()
    if compressed and compressed[-1] not in ".!?":
        compressed += "."
    if variant == "compressed":
        return compressed or text
    words = compressed.split()[:6]
    minimal = " ".join(words).rstrip(".,;:!?")
    return minimal or compressed or text


@dataclass(frozen=True)
class ToolParameter:
    """One named parameter of a tool.

    ``enum`` restricts string parameters to a closed set; ``item_type``
    gives the element type for ``array`` parameters.
    """

    name: str
    type: str
    description: str = ""
    required: bool = True
    enum: tuple[str, ...] | None = None
    item_type: str = "string"

    def __post_init__(self):
        if self.type not in PARAMETER_TYPES:
            raise ValueError(f"parameter {self.name!r}: unknown type {self.type!r}")
        if self.enum is not None and self.type != "string":
            raise ValueError(f"parameter {self.name!r}: enum requires type 'string'")

    def accepts(self, value: Any) -> bool:
        """Whether ``value`` satisfies this parameter's type constraint.

        Array values must be ``list``s, as decoded JSON arrays are.
        Tuples are rejected on purpose: Python-side coercion turns a
        string into a tuple of its characters (``tuple("abc")``), which
        used to slip through array-of-string checks, and the same
        coercion produced fake matrix rows for ``item_type="array"``.
        """
        if self.type == "string":
            if not isinstance(value, str):
                return False
            return self.enum is None or value in self.enum
        if self.type == "integer":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.type == "number":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.type == "boolean":
            return isinstance(value, bool)
        # array
        if not isinstance(value, list):
            return False
        if self.item_type == "array":
            # one level of nesting is enough for the catalogs (matrix rows);
            # inner element types are not constrained further, but a row
            # must itself be a real JSON array, never a string-as-sequence
            return all(isinstance(item, list) for item in value)
        element = ToolParameter(name=f"{self.name}[]", type=self.item_type)
        return all(element.accepts(item) for item in value)

    def to_json_schema(self) -> dict[str, Any]:
        """Render the parameter as a JSON-schema property."""
        schema: dict[str, Any] = {"type": self.type, "description": self.description}
        if self.enum is not None:
            schema["enum"] = list(self.enum)
        if self.type == "array":
            schema["items"] = {"type": self.item_type}
        return schema

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; :meth:`from_dict` reconstructs an equal parameter."""
        return {
            "name": self.name,
            "type": self.type,
            "description": self.description,
            "required": self.required,
            "enum": list(self.enum) if self.enum is not None else None,
            "item_type": self.item_type,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ToolParameter":
        """Rebuild a parameter from :meth:`to_dict` output."""
        data = dict(data)
        if data.get("enum") is not None:
            data["enum"] = tuple(data["enum"])
        return cls(**data)


@dataclass(frozen=True)
class ValidationIssue:
    """A single argument-validation failure."""

    parameter: str
    reason: str

    def __str__(self) -> str:
        return f"{self.parameter}: {self.reason}"


@dataclass(frozen=True)
class ToolSpec:
    """A callable API tool: name, natural-language description, parameters.

    ``compressed_description`` / ``minimal_description`` are optional
    authored overrides for the catalog description variants; when left
    ``None`` the variant text is derived deterministically from the full
    description (:func:`derive_description`).
    """

    name: str
    description: str
    parameters: tuple[ToolParameter, ...] = ()
    category: str = "general"
    returns: str = "result payload"
    compressed_description: str | None = None
    minimal_description: str | None = None

    def __post_init__(self):
        names = [parameter.name for parameter in self.parameters]
        if len(names) != len(set(names)):
            raise ValueError(f"tool {self.name!r}: duplicate parameter names")

    @property
    def required_parameters(self) -> tuple[ToolParameter, ...]:
        return tuple(parameter for parameter in self.parameters if parameter.required)

    def parameter(self, name: str) -> ToolParameter | None:
        """Return the parameter called ``name`` (None when absent)."""
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        return None

    def validate_arguments(self, arguments: dict[str, Any]) -> list[ValidationIssue]:
        """Validate a call's arguments; empty list means the call is well-formed."""
        issues: list[ValidationIssue] = []
        for parameter in self.required_parameters:
            if parameter.name not in arguments:
                issues.append(ValidationIssue(parameter.name, "missing required argument"))
        for name, value in arguments.items():
            parameter = self.parameter(name)
            if parameter is None:
                issues.append(ValidationIssue(name, "unexpected argument"))
            elif not parameter.accepts(value):
                issues.append(ValidationIssue(
                    name, f"expected {parameter.type}, got {type(value).__name__}"
                ))
        return issues

    def describe(self, variant: str = "full") -> str:
        """The description presented under ``variant``.

        Authored overrides win; otherwise the text is derived from the
        full description.
        """
        if variant == "compressed" and self.compressed_description is not None:
            return self.compressed_description
        if variant == "minimal" and self.minimal_description is not None:
            return self.minimal_description
        return derive_description(self.description, variant)

    def at_variant(self, variant: str) -> "ToolSpec":
        """This tool as presented under ``variant``.

        ``full`` returns ``self`` unchanged (same object, so memoized
        JSON/token caches keep working — the bitwise-identity guarantee
        of the default path).  Both shrunken variants drop parameter
        descriptions (argument names and types stay, and validation is
        unchanged); ``compressed`` keeps the description's retrieval-
        bearing first sentence while ``minimal`` truncates it to a terse
        label.  Every step strictly reduces the tool's prompt cost.
        """
        if variant == "full":
            return self
        parameters = tuple(
            ToolParameter(name=p.name, type=p.type, description="",
                          required=p.required, enum=p.enum,
                          item_type=p.item_type)
            for p in self.parameters)
        return ToolSpec(
            name=self.name, description=self.describe(variant),
            parameters=parameters,
            category=self.category, returns=self.returns,
            compressed_description=self.compressed_description,
            minimal_description=self.minimal_description,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; :meth:`from_dict` reconstructs an equal spec."""
        return {
            "name": self.name,
            "description": self.description,
            "parameters": [parameter.to_dict() for parameter in self.parameters],
            "category": self.category,
            "returns": self.returns,
            "compressed_description": self.compressed_description,
            "minimal_description": self.minimal_description,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ToolSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(data)
        data["parameters"] = tuple(
            ToolParameter.from_dict(p) if isinstance(p, dict) else p
            for p in data.get("parameters", ()))
        return cls(**data)

    def to_json_schema(self) -> dict[str, Any]:
        """OpenAI-style function schema (what gets appended to prompts)."""
        return {
            "type": "function",
            "function": {
                "name": self.name,
                "description": self.description,
                "parameters": {
                    "type": "object",
                    "properties": {
                        parameter.name: parameter.to_json_schema()
                        for parameter in self.parameters
                    },
                    "required": [parameter.name for parameter in self.required_parameters],
                },
            },
        }

    def json_text(self) -> str:
        """The JSON string form included in the LLM prompt.

        Memoized on the (frozen) instance: the schema is serialized for
        every presented tool on every LLM turn, which makes this one of
        the hottest strings in a serving workload.
        """
        cached = self.__dict__.get("_json_text")
        if cached is None:
            cached = json.dumps(self.to_json_schema(), separators=(",", ":"))
            object.__setattr__(self, "_json_text", cached)
        return cached


@dataclass(frozen=True)
class ToolCall:
    """A concrete invocation: tool name plus JSON-compatible arguments."""

    tool: str
    arguments: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        # dataclass is frozen but the dict is shared; freeze a private copy
        object.__setattr__(self, "arguments", dict(self.arguments))

    def matches_tool(self, other: "ToolCall") -> bool:
        """Whether both calls target the same tool (ignoring arguments)."""
        return self.tool == other.tool

    def to_json(self) -> str:
        # memoized: the executor serializes the call several times per
        # execution (RNG stream naming + result fabrication)
        cached = self.__dict__.get("_to_json")
        if cached is None:
            cached = json.dumps({"name": self.tool, "arguments": self.arguments},
                                separators=(",", ":"), sort_keys=True)
            object.__setattr__(self, "_to_json", cached)
        return cached

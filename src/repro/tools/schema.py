"""Tool schema objects (OpenAI function-calling style)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: JSON-schema-ish parameter types supported by the catalogs.
PARAMETER_TYPES = ("string", "integer", "number", "boolean", "array")


@dataclass(frozen=True)
class ToolParameter:
    """One named parameter of a tool.

    ``enum`` restricts string parameters to a closed set; ``item_type``
    gives the element type for ``array`` parameters.
    """

    name: str
    type: str
    description: str = ""
    required: bool = True
    enum: tuple[str, ...] | None = None
    item_type: str = "string"

    def __post_init__(self):
        if self.type not in PARAMETER_TYPES:
            raise ValueError(f"parameter {self.name!r}: unknown type {self.type!r}")
        if self.enum is not None and self.type != "string":
            raise ValueError(f"parameter {self.name!r}: enum requires type 'string'")

    def accepts(self, value: Any) -> bool:
        """Whether ``value`` satisfies this parameter's type constraint."""
        if self.type == "string":
            if not isinstance(value, str):
                return False
            return self.enum is None or value in self.enum
        if self.type == "integer":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.type == "number":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.type == "boolean":
            return isinstance(value, bool)
        # array
        if not isinstance(value, (list, tuple)):
            return False
        if self.item_type == "array":
            # one level of nesting is enough for the catalogs (matrix rows);
            # inner element types are not constrained further
            return all(isinstance(item, (list, tuple)) for item in value)
        element = ToolParameter(name=f"{self.name}[]", type=self.item_type)
        return all(element.accepts(item) for item in value)

    def to_json_schema(self) -> dict[str, Any]:
        """Render the parameter as a JSON-schema property."""
        schema: dict[str, Any] = {"type": self.type, "description": self.description}
        if self.enum is not None:
            schema["enum"] = list(self.enum)
        if self.type == "array":
            schema["items"] = {"type": self.item_type}
        return schema


@dataclass(frozen=True)
class ValidationIssue:
    """A single argument-validation failure."""

    parameter: str
    reason: str

    def __str__(self) -> str:
        return f"{self.parameter}: {self.reason}"


@dataclass(frozen=True)
class ToolSpec:
    """A callable API tool: name, natural-language description, parameters."""

    name: str
    description: str
    parameters: tuple[ToolParameter, ...] = ()
    category: str = "general"
    returns: str = "result payload"

    def __post_init__(self):
        names = [parameter.name for parameter in self.parameters]
        if len(names) != len(set(names)):
            raise ValueError(f"tool {self.name!r}: duplicate parameter names")

    @property
    def required_parameters(self) -> tuple[ToolParameter, ...]:
        return tuple(parameter for parameter in self.parameters if parameter.required)

    def parameter(self, name: str) -> ToolParameter | None:
        """Return the parameter called ``name`` (None when absent)."""
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        return None

    def validate_arguments(self, arguments: dict[str, Any]) -> list[ValidationIssue]:
        """Validate a call's arguments; empty list means the call is well-formed."""
        issues: list[ValidationIssue] = []
        for parameter in self.required_parameters:
            if parameter.name not in arguments:
                issues.append(ValidationIssue(parameter.name, "missing required argument"))
        for name, value in arguments.items():
            parameter = self.parameter(name)
            if parameter is None:
                issues.append(ValidationIssue(name, "unexpected argument"))
            elif not parameter.accepts(value):
                issues.append(ValidationIssue(
                    name, f"expected {parameter.type}, got {type(value).__name__}"
                ))
        return issues

    def to_json_schema(self) -> dict[str, Any]:
        """OpenAI-style function schema (what gets appended to prompts)."""
        return {
            "type": "function",
            "function": {
                "name": self.name,
                "description": self.description,
                "parameters": {
                    "type": "object",
                    "properties": {
                        parameter.name: parameter.to_json_schema()
                        for parameter in self.parameters
                    },
                    "required": [parameter.name for parameter in self.required_parameters],
                },
            },
        }

    def json_text(self) -> str:
        """The JSON string form included in the LLM prompt.

        Memoized on the (frozen) instance: the schema is serialized for
        every presented tool on every LLM turn, which makes this one of
        the hottest strings in a serving workload.
        """
        cached = self.__dict__.get("_json_text")
        if cached is None:
            cached = json.dumps(self.to_json_schema(), separators=(",", ":"))
            object.__setattr__(self, "_json_text", cached)
        return cached


@dataclass(frozen=True)
class ToolCall:
    """A concrete invocation: tool name plus JSON-compatible arguments."""

    tool: str
    arguments: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        # dataclass is frozen but the dict is shared; freeze a private copy
        object.__setattr__(self, "arguments", dict(self.arguments))

    def matches_tool(self, other: "ToolCall") -> bool:
        """Whether both calls target the same tool (ignoring arguments)."""
        return self.tool == other.tool

    def to_json(self) -> str:
        # memoized: the executor serializes the call several times per
        # execution (RNG stream naming + result fabrication)
        cached = self.__dict__.get("_to_json")
        if cached is None:
            cached = json.dumps({"name": self.tool, "arguments": self.arguments},
                                separators=(",", ":"), sort_keys=True)
            object.__setattr__(self, "_to_json", cached)
        return cached

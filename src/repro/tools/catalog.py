"""First-class tool catalogs: named, versioned, variant-aware tool pools.

A :class:`ToolCatalog` is the unit the paper's method actually operates
on — the pool of JSON-described tools a deployment presents to the LLM.
It is frozen (safe to share across tenants, threads and process-pool
workers), content-hash **versioned** (two catalogs with the same tools
in the same order under the same variant have the same ``version``; any
edit changes it, which is what lets the serving gateway's plan cache
invalidate itself on hot-swap), and **variant-aware**: every tool
carries ``full`` / ``compressed`` / ``minimal`` description variants
(:data:`~repro.tools.schema.DESCRIPTION_VARIANTS`), and
:meth:`ToolCatalog.at` re-presents the whole pool under a shorter
variant — the paper's "less is more" lever for description length,
orthogonal to the dynamic tool-*count* selection in ``repro.core``.

Catalogs register by name through :data:`repro.registry.CATALOGS`::

    from repro.registry import register_catalog
    from repro.tools import ToolCatalog

    @register_catalog("my-tools")
    def build_my_catalog() -> ToolCatalog:
        return ToolCatalog("my-tools", (spec_a, spec_b))

and load anywhere via :func:`load_catalog` — the CLI
(``repro catalog list|show|diff``), suite builders, ``CatalogSpec`` and
``Gateway.update_catalog`` all resolve names through the same registry.

Iteration order is registration order everywhere (``subset``/``merge``
included): prompt layouts and embedding-index row ids depend on it.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.tools.schema import DESCRIPTION_VARIANTS, ToolSpec
from repro.utils.hashing import stable_hash_bytes


def suggest_names(name: str, known: Iterable[str]) -> str:
    """An actionable tail for unknown-name errors: near-misses + the list."""
    known = list(known)
    matches = difflib.get_close_matches(name, known, n=3, cutoff=0.5)
    hint = f" (did you mean {', '.join(repr(m) for m in matches)}?)" if matches else ""
    return f"{hint}; known names: {', '.join(known) or '(none)'}"


@dataclass(frozen=True)
class CatalogDiff:
    """Structured difference between two catalogs (``old.diff(new)``)."""

    added: tuple[str, ...]
    removed: tuple[str, ...]
    changed: tuple[str, ...]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def summary(self) -> str:
        if self.is_empty:
            return "identical"
        parts = []
        for label, names in (("added", self.added), ("removed", self.removed),
                             ("changed", self.changed)):
            if names:
                parts.append(f"{label}: {', '.join(names)}")
        return "; ".join(parts)


@dataclass(frozen=True)
class ToolCatalog:
    """A frozen, named, versioned collection of :class:`ToolSpec` tools.

    Supports the whole read API agents need (lookup, iteration,
    category views, description corpus, prompt text) plus the algebra
    the serving layer builds on: :meth:`subset`, :meth:`merge`,
    :meth:`diff`, :meth:`at` (variant selection) and
    ``to_dict``/``from_dict`` round-tripping in the style of
    :mod:`repro.specs`.

    One deliberate departure from the legacy
    :class:`~repro.tools.registry.ToolRegistry` surface: ``subset``
    returns a *catalog in registration order*, not a list in the given
    order — rank-ordered plan assembly moved to :meth:`select`.  Code
    that built plans from ``suite.registry.subset(ranked_names)`` must
    switch to ``suite.catalog.select(ranked_names)`` (see the README
    migration table).

    ``variant`` records which description variant the held specs embody;
    freshly built catalogs are ``full``.  The :attr:`version` content
    hash covers name, variant, tool order and every spec field.
    """

    name: str
    tools: tuple[ToolSpec, ...] = ()
    variant: str = "full"

    def __post_init__(self):
        if not self.name:
            raise ValueError("ToolCatalog.name must be a non-empty string")
        if self.variant not in DESCRIPTION_VARIANTS:
            raise ValueError(
                f"unknown catalog variant {self.variant!r}; expected one of "
                f"{', '.join(DESCRIPTION_VARIANTS)}")
        object.__setattr__(self, "tools", tuple(self.tools))
        names = [tool.name for tool in self.tools]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(
                f"catalog {self.name!r}: duplicate tool names "
                f"{', '.join(duplicates)}")

    # ------------------------------------------------------------------
    # lookup (the ToolRegistry read API, kept call-compatible)
    # ------------------------------------------------------------------
    @property
    def _by_name(self) -> dict[str, ToolSpec]:
        index = self.__dict__.get("_by_name_cache")
        if index is None:
            index = {tool.name: tool for tool in self.tools}
            object.__setattr__(self, "_by_name_cache", index)
        return index

    def __len__(self) -> int:
        return len(self.tools)

    def __iter__(self) -> Iterator[ToolSpec]:
        return iter(self.tools)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> ToolSpec:
        """Return the tool called ``name`` (KeyError with suggestions)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"catalog {self.name!r} has no tool {name!r}"
                f"{suggest_names(name, self._by_name)}") from None

    @property
    def names(self) -> list[str]:
        """Tool names in registration order."""
        return [tool.name for tool in self.tools]

    @property
    def categories(self) -> list[str]:
        """Distinct tool categories, in first-appearance order."""
        seen: dict[str, None] = {}
        for tool in self.tools:
            seen.setdefault(tool.category, None)
        return list(seen)

    def by_category(self, category: str) -> list[ToolSpec]:
        """All tools tagged with ``category``."""
        return [tool for tool in self.tools if tool.category == category]

    def select(self, names: Iterable[str]) -> list[ToolSpec]:
        """Resolve ``names`` to specs, preserving the *given* order.

        This is the plan-assembly primitive (an agent's retrieval stage
        ranks tools, and rank order matters in the prompt); use
        :meth:`subset` for a catalog-shaped slice in registration order.
        """
        return [self.get(name) for name in names]

    def descriptions(self) -> list[str]:
        """Description corpus in registration order (for embedding)."""
        return [tool.description for tool in self.tools]

    def prompt_text(self, names: Iterable[str] | None = None) -> str:
        """Concatenated JSON schemas as they appear in an LLM prompt."""
        tools = self.tools if names is None else self.select(names)
        return "\n".join(tool.json_text() for tool in tools)

    # ------------------------------------------------------------------
    # catalog algebra
    # ------------------------------------------------------------------
    def subset(self, names: Iterable[str], name: str | None = None) -> "ToolCatalog":
        """A catalog holding only ``names``, in *registration* order.

        Registration order (not the order of ``names``) is preserved so
        prompt layouts and embedding-index ids stay stable no matter how
        the subset was expressed.  Unknown names raise the same
        suggestion-bearing KeyError as :meth:`get`.
        """
        wanted = set()
        for requested in names:
            self.get(requested)  # unknown names fail with suggestions
            wanted.add(requested)
        return ToolCatalog(
            name=name if name is not None else self.name,
            tools=tuple(tool for tool in self.tools if tool.name in wanted),
            variant=self.variant,
        )

    def merge(self, other: "ToolCatalog", name: str | None = None) -> "ToolCatalog":
        """This catalog plus ``other``'s tools, registration order kept.

        ``self``'s tools come first, then ``other``'s new ones.  A name
        present in both with an *identical* spec is deduplicated (first
        position wins); conflicting specs under one name are an error —
        silently picking one would change prompts behind the caller's
        back.
        """
        if self.variant != other.variant:
            raise ValueError(
                f"cannot merge catalog {other.name!r} ({other.variant}) into "
                f"{self.name!r} ({self.variant}): variants differ — reload "
                f"both full catalogs (load_catalog(name)) and apply one "
                f".at(...) variant to the merged result")
        conflicts = [tool.name for tool in other.tools
                     if tool.name in self and self.get(tool.name) != tool]
        if conflicts:
            raise ValueError(
                f"cannot merge catalog {other.name!r} into {self.name!r}: "
                f"conflicting specs for {', '.join(sorted(conflicts))}")
        extra = tuple(tool for tool in other.tools if tool.name not in self)
        return ToolCatalog(
            name=name if name is not None else f"{self.name}+{other.name}",
            tools=self.tools + extra,
            variant=self.variant,
        )

    def diff(self, other: "ToolCatalog") -> CatalogDiff:
        """What changes going from ``self`` to ``other``.

        Names appear in the owning catalog's registration order;
        ``changed`` lists tools present in both whose specs differ
        (description variants included).
        """
        return CatalogDiff(
            added=tuple(t.name for t in other.tools if t.name not in self),
            removed=tuple(t.name for t in self.tools if t.name not in other),
            changed=tuple(t.name for t in self.tools
                          if t.name in other and other.get(t.name) != t),
        )

    def at(self, variant: str) -> "ToolCatalog":
        """The same pool presented under ``variant``.

        ``at("full")`` on a full catalog returns ``self`` (identity —
        the bitwise-identical default path).  Variants are derived from
        the full descriptions, so a compressed/minimal catalog cannot be
        re-expanded; reload the full catalog instead.
        """
        if variant == self.variant:
            return self
        if self.variant != "full":
            raise ValueError(
                f"catalog {self.name!r} is already the {self.variant!r} "
                f"variant; variants derive from full descriptions — reload "
                f"the full catalog (e.g. load_catalog({self.name!r})) and "
                f"call .at({variant!r}) on that")
        return ToolCatalog(
            name=self.name,
            tools=tuple(tool.at_variant(variant) for tool in self.tools),
            variant=variant,
        )

    # ------------------------------------------------------------------
    # identity / serialization
    # ------------------------------------------------------------------
    @property
    def version(self) -> str:
        """Content-hash version: stable across processes, sensitive to
        any change in name, variant, tool order or tool content."""
        cached = self.__dict__.get("_version_cache")
        if cached is None:
            canonical = json.dumps(self.to_dict(), sort_keys=True,
                                   separators=(",", ":"))
            cached = stable_hash_bytes("tool-catalog", canonical).hex()
            object.__setattr__(self, "_version_cache", cached)
        return cached

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (tools become nested dicts)."""
        return {
            "name": self.name,
            "variant": self.variant,
            "tools": [tool.to_dict() for tool in self.tools],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ToolCatalog":
        """Rebuild a catalog equal to the :meth:`to_dict` source."""
        data = dict(data)
        data["tools"] = tuple(
            ToolSpec.from_dict(t) if isinstance(t, dict) else t
            for t in data.get("tools", ()))
        return cls(**data)

    def registry(self):
        """A legacy :class:`~repro.tools.registry.ToolRegistry` view."""
        from repro.tools.registry import ToolRegistry

        return ToolRegistry(self.tools)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ToolCatalog({self.name!r}, tools={len(self.tools)}, "
                f"variant={self.variant!r}, version={self.version[:12]!r})")


def load_catalog(name: str, variant: str = "full",
                 include: Iterable[str] | None = None) -> ToolCatalog:
    """Build a registered catalog by name, optionally sliced and shrunk.

    ``include`` subsets to the given tool names (registration order is
    preserved); ``variant`` then re-presents the descriptions.  Unknown
    catalog names raise the registry's actionable :class:`ValueError`.
    """
    from repro.registry import CATALOGS

    catalog = CATALOGS.get(name)()
    if not isinstance(catalog, ToolCatalog):
        raise TypeError(
            f"catalog builder {name!r} returned "
            f"{type(catalog).__name__}, expected ToolCatalog")
    if include is not None:
        catalog = catalog.subset(include)
    return catalog.at(variant)


__all__ = [
    "CatalogDiff",
    "ToolCatalog",
    "load_catalog",
    "suggest_names",
]

"""Tool/API substrate: schemas, registry and a simulated executor.

Both benchmarks hand the LLM a pool of JSON-described API tools.  This
package defines the schema objects (:class:`ToolSpec`,
:class:`ToolParameter`), a :class:`ToolRegistry` for pools, and a
:class:`SimulatedToolExecutor` that validates call arguments against the
schema exactly like a real API gateway would — argument-type mistakes made
by the simulated LLM surface here as failed executions, which is what
separates the paper's *Success Rate* metric from *Tool Accuracy*.
"""

from repro.tools.catalog import CatalogDiff, ToolCatalog, load_catalog
from repro.tools.executor import ExecutionOutcome, SimulatedToolExecutor
from repro.tools.registry import ToolRegistry
from repro.tools.schema import (
    DESCRIPTION_VARIANTS,
    ToolCall,
    ToolParameter,
    ToolSpec,
    ValidationIssue,
    derive_description,
)

__all__ = [
    "CatalogDiff",
    "DESCRIPTION_VARIANTS",
    "ExecutionOutcome",
    "SimulatedToolExecutor",
    "ToolCall",
    "ToolCatalog",
    "ToolParameter",
    "ToolRegistry",
    "ToolSpec",
    "ValidationIssue",
    "derive_description",
    "load_catalog",
]

"""Simulated tool execution: schema validation + deterministic results.

The executor stands in for the benchmark's API backends.  It enforces the
same contract a real gateway would — required arguments present, types
correct, enums respected — and then fabricates a deterministic result
payload.  A call that references a tool outside the presented pool, or
passes malformed arguments, fails here; this is the boundary that turns
the simulated LLM's argument mistakes into the paper's success-rate gap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.tools.registry import ToolRegistry
from repro.tools.schema import ToolCall, ValidationIssue
from repro.utils.hashing import stable_hash64
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class ExecutionOutcome:
    """Result of executing one tool call."""

    call: ToolCall
    ok: bool
    value: Any = None
    issues: tuple[ValidationIssue, ...] = ()
    error: str = ""
    #: simulated wall-clock cost of the API itself, seconds
    api_latency_s: float = 0.0


@dataclass
class SimulatedToolExecutor:
    """Validates and "executes" tool calls against a registry.

    Parameters
    ----------
    registry:
        The full tool pool (calls to unknown tools fail).
    api_latency_mean_s:
        Mean of the simulated per-call API latency (lognormal-ish jitter,
        deterministic per call).  The paper's execution-time metric is
        dominated by LLM inference; API latency is kept small but nonzero
        so the hardware traces stay realistic.
    log_calls:
        Whether to append every outcome to :attr:`executed`.  The log is
        handy for single-episode debugging but grows without bound, so
        long-lived serving workers sharing one executor switch it off.
        Appends are lock-protected either way, making one executor safe
        to share across concurrent episodes.
    """

    registry: ToolRegistry
    api_latency_mean_s: float = 0.15
    executed: list[ExecutionOutcome] = field(default_factory=list)
    log_calls: bool = True

    def __post_init__(self):
        self._log_lock = threading.Lock()

    # executors ride along when agents/runners are pickled to process-pool
    # workers; the log lock is recreated on the other side
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_log_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._log_lock = threading.Lock()

    def _record(self, outcome: ExecutionOutcome) -> ExecutionOutcome:
        if self.log_calls:
            with self._log_lock:
                self.executed.append(outcome)
        return outcome

    def new_episode_state(self):
        """Fresh per-episode tool state, or ``None`` for stateless suites.

        Agents create one state object at the start of every episode and
        thread it through each :meth:`execute` call, so stateful
        executors (the browser suite's) carry tool effects across the
        chain — and across conversation turns — of one episode without
        leaking between episodes or concurrent users.
        """
        return None

    def execute(self, call: ToolCall, allowed: set[str] | None = None,
                state=None) -> ExecutionOutcome:
        """Validate and run one call.

        ``allowed`` restricts the callable set to the tools actually
        presented to the LLM (calling a hallucinated or non-presented tool
        fails, exactly as it would through a constrained decoder).
        ``state`` is the per-episode object from
        :meth:`new_episode_state`; the base executor ignores it.
        """
        if allowed is not None and call.tool not in allowed:
            return self._record(ExecutionOutcome(
                call=call, ok=False,
                error=f"tool {call.tool!r} was not offered to the agent",
            ))
        if call.tool not in self.registry:
            return self._record(ExecutionOutcome(
                call=call, ok=False, error=f"unknown tool {call.tool!r}"))

        spec = self.registry.get(call.tool)
        issues = spec.validate_arguments(call.arguments)
        if issues:
            return self._record(ExecutionOutcome(
                call=call, ok=False, issues=tuple(issues),
                error="; ".join(str(issue) for issue in issues),
            ))

        state_error = self._state_error(call, state)
        if state_error:
            return self._record(ExecutionOutcome(
                call=call, ok=False, error=state_error))

        rng = derive_rng("tool-exec", call.to_json())
        latency = float(self.api_latency_mean_s * rng.lognormal(mean=0.0, sigma=0.35))
        return self._record(ExecutionOutcome(
            call=call, ok=True,
            value=self._fabricate_result(call, state),
            api_latency_s=latency,
        ))

    def _state_error(self, call: ToolCall, state) -> str | None:
        """Hook: reject a call the current episode state cannot support.

        Stateful executors return an error string (e.g. "no page is
        open") to fail the call *after* schema validation but before
        result fabrication; the base executor accepts everything.
        """
        return None

    def _fabricate_result(self, call: ToolCall, state=None) -> dict[str, Any]:
        """Deterministic, schema-shaped stand-in for the real API payload.

        Stateful executors override this to read *and mutate* ``state``
        so later calls of the episode observe earlier effects.
        """
        token = stable_hash64("result", call.to_json()) % 10_000
        return {
            "tool": call.tool,
            "status": "ok",
            "ref": f"{call.tool}#{token:04d}",
        }

    def reset(self) -> None:
        """Clear the execution log."""
        with self._log_lock:
            self.executed.clear()

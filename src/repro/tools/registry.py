"""Legacy mutable tool pool — a thin shim over :class:`ToolCatalog`.

.. deprecated::
    :class:`ToolRegistry` predates the first-class catalog API
    (:mod:`repro.tools.catalog`).  New code should build a frozen
    :class:`~repro.tools.catalog.ToolCatalog` (and register it with
    :func:`repro.registry.register_catalog`); a registry is now just a
    mutable builder whose reads delegate to the same helpers, kept so
    hand-rolled suites keep working.  Convert with
    :meth:`ToolRegistry.to_catalog`.  Note that a registry handed to
    :class:`~repro.suites.base.BenchmarkSuite` is frozen into a catalog,
    whose ``subset`` returns a catalog in registration order — callers
    that relied on ``suite.registry.subset`` returning a list in the
    given order must use ``suite.catalog.select`` instead.

Iteration order is registration order, which keeps prompt layouts and
embedding-index ids stable across runs — the same contract the catalog
guarantees.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.tools.catalog import ToolCatalog, suggest_names
from repro.tools.schema import ToolSpec


class ToolRegistry:
    """An ordered, name-addressed, *mutable* pool of :class:`ToolSpec`.

    Deprecated in favor of :class:`~repro.tools.catalog.ToolCatalog`
    (see the module docstring); everywhere a suite is concerned the
    registry is converted to a catalog on construction.
    """

    def __init__(self, tools: Iterable[ToolSpec] = ()):
        self._tools: dict[str, ToolSpec] = {}
        for tool in tools:
            self.register(tool)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def register(self, tool: ToolSpec) -> None:
        """Add a tool; duplicate names are an actionable error."""
        if tool.name in self._tools:
            raise ValueError(
                f"tool {tool.name!r} already registered; registered tools: "
                f"{', '.join(self._tools)}")
        self._tools[tool.name] = tool

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tools)

    def __iter__(self) -> Iterator[ToolSpec]:
        return iter(self._tools.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tools

    def get(self, name: str) -> ToolSpec:
        """Return the tool called ``name`` (KeyError with suggestions)."""
        try:
            return self._tools[name]
        except KeyError:
            raise KeyError(
                f"unknown tool {name!r}"
                f"{suggest_names(name, self._tools)}") from None

    @property
    def names(self) -> list[str]:
        """Tool names in registration order."""
        return list(self._tools)

    @property
    def categories(self) -> list[str]:
        """Distinct tool categories, in first-appearance order."""
        seen: dict[str, None] = {}
        for tool in self:
            seen.setdefault(tool.category, None)
        return list(seen)

    def by_category(self, category: str) -> list[ToolSpec]:
        """All tools tagged with ``category``."""
        return [tool for tool in self if tool.category == category]

    def subset(self, names: Iterable[str]) -> list[ToolSpec]:
        """Resolve ``names`` to specs, preserving the given order."""
        return [self.get(name) for name in names]

    #: the catalog's name for the same operation, so registry and catalog
    #: stay drop-in interchangeable at agent call sites
    select = subset

    def descriptions(self) -> list[str]:
        """Description corpus in registration order (for embedding)."""
        return [tool.description for tool in self]

    def prompt_text(self, names: Iterable[str] | None = None) -> str:
        """Concatenated JSON schemas as they appear in an LLM prompt."""
        tools = list(self) if names is None else self.subset(names)
        return "\n".join(tool.json_text() for tool in tools)

    def to_catalog(self, name: str = "custom") -> ToolCatalog:
        """Freeze this registry into a named, versioned catalog."""
        return ToolCatalog(name=name, tools=tuple(self))

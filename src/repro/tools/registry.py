"""Registry holding a named pool of tools."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.tools.schema import ToolSpec


class ToolRegistry:
    """An ordered, name-addressed pool of :class:`ToolSpec` objects.

    Iteration order is registration order, which keeps prompt layouts and
    embedding-index ids stable across runs.
    """

    def __init__(self, tools: Iterable[ToolSpec] = ()):
        self._tools: dict[str, ToolSpec] = {}
        for tool in tools:
            self.register(tool)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def register(self, tool: ToolSpec) -> None:
        """Add a tool; duplicate names are an error."""
        if tool.name in self._tools:
            raise ValueError(f"tool {tool.name!r} already registered")
        self._tools[tool.name] = tool

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tools)

    def __iter__(self) -> Iterator[ToolSpec]:
        return iter(self._tools.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tools

    def get(self, name: str) -> ToolSpec:
        """Return the tool called ``name`` (KeyError when absent)."""
        try:
            return self._tools[name]
        except KeyError:
            raise KeyError(f"unknown tool {name!r}") from None

    @property
    def names(self) -> list[str]:
        """Tool names in registration order."""
        return list(self._tools)

    @property
    def categories(self) -> list[str]:
        """Distinct tool categories, in first-appearance order."""
        seen: dict[str, None] = {}
        for tool in self:
            seen.setdefault(tool.category, None)
        return list(seen)

    def by_category(self, category: str) -> list[ToolSpec]:
        """All tools tagged with ``category``."""
        return [tool for tool in self if tool.category == category]

    def subset(self, names: Iterable[str]) -> list[ToolSpec]:
        """Resolve ``names`` to specs, preserving the given order."""
        return [self.get(name) for name in names]

    def descriptions(self) -> list[str]:
        """Description corpus in registration order (for embedding)."""
        return [tool.description for tool in self]

    def prompt_text(self, names: Iterable[str] | None = None) -> str:
        """Concatenated JSON schemas as they appear in an LLM prompt."""
        tools = list(self) if names is None else self.subset(names)
        return "\n".join(tool.json_text() for tool in tools)

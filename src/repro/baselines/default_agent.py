"""Vanilla function calling: every tool, default 16K context window."""

from __future__ import annotations

from repro.core.agent_base import DEFAULT_CONTEXT_WINDOW, FunctionCallingAgent, ToolPlan
from repro.suites.base import Query


class DefaultAgent(FunctionCallingAgent):
    """The paper's "default" scheme: the LLM receives the full tool pool.

    The 16K window is the minimum that fits all tools plus chat
    scaffolding for both catalogs (the paper verified larger windows add
    time without accuracy, Section IV).
    """

    scheme = "default"

    def __init__(self, llm, suite, context_window: int = DEFAULT_CONTEXT_WINDOW,
                 **kwargs):
        super().__init__(llm=llm, suite=suite, **kwargs)
        self.context_window = context_window

    def plan(self, query: Query) -> ToolPlan:
        return ToolPlan(
            tools=list(self.suite.registry),
            context_window=self.context_window,
            level=None,
        )

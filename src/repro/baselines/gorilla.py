"""Gorilla-style baseline: query-embedding retrieval over all tools.

Gorilla (Patil et al., 2023) retrieves the most likely APIs by
similarity between the *user query* and the tool corpus, then generates
the call from the retrieved API documentation.  Two properties
distinguish it from Less-is-More and drive the paper's comparison:

* retrieval uses the raw query, not LLM-authored "ideal tool"
  descriptions — so it searches only the individual-tool space (the
  paper notes this "closely resembles running only Level 1");
* the call is generated docs-to-call rather than through the model's
  native function-calling template, which costs weakly-reasoning
  models disproportionately (paper: "Gorilla was the worst [for
  Mistral] mainly due to the limited capabilities of compressed
  Mistral").
"""

from __future__ import annotations

from repro.core.agent_base import (
    EMBEDDING_OVERHEAD_S,
    KNN_OVERHEAD_S,
    REDUCED_CONTEXT_WINDOW,
    FunctionCallingAgent,
    ToolPlan,
)
from repro.embedding.cache import CachedEmbedder, shared_embedder
from repro.suites.base import Query
from repro.vectorstore import FlatIndex

#: Exponent shaping the docs-to-call penalty: generating a call from
#: retrieved documentation (instead of a native FC template) degrades
#: weak reasoners much more than strong ones.
_DOCS_PENALTY_EXPONENT = 0.75


class GorillaAgent(FunctionCallingAgent):
    """Similarity-based retrieval baseline (Level-1-only search)."""

    scheme = "gorilla"

    def __init__(self, llm, suite, k: int = 3,
                 context_window: int = REDUCED_CONTEXT_WINDOW,
                 embedder: CachedEmbedder | None = None, **kwargs):
        penalty = llm.model.reasoning ** _DOCS_PENALTY_EXPONENT
        super().__init__(llm=llm, suite=suite,
                         skill_multiplier=penalty, arg_multiplier=penalty,
                         **kwargs)
        self.k = k
        self.context_window = context_window
        self.embedder = embedder if embedder is not None else shared_embedder()
        self._index = FlatIndex(dim=self.embedder.dim, metric="cosine")
        self._index.add(self.embedder.encode(suite.registry.descriptions()))
        self._names = suite.registry.names

    def _k_for(self, query: Query) -> int:
        """Sequential tasks need a wider net: a chain references many
        tools while the retriever only sees one query string."""
        return 2 * self.k + 4 if query.sequential else self.k

    def plan(self, query: Query) -> ToolPlan:
        return ToolPlan(
            tools=self._retrieve(query.text, self._k_for(query)),
            context_window=self.context_window,
            level=1,
            overhead_s=EMBEDDING_OVERHEAD_S + KNN_OVERHEAD_S,
        )

    def tools_for_step(self, query: Query, step_index: int, current_tools,
                       called_tools: list[str]):
        """Re-retrieve each turn using the query plus the latest results.

        Gorilla's retriever sees only surface text; chained tasks whose
        next step is implied by an intermediate *result* (not by the
        query wording) frequently miss the needed tool — the paper's
        explanation for Gorilla's weak GeoEngine numbers.
        """
        if step_index == 0 or not called_tools:
            return current_tools, 0.0
        context_parts = [query.text, "Progress so far:"]
        for name in called_tools[-2:]:
            if name in self.suite.registry:
                context_parts.append(self.suite.registry.get(name).description)
        tools = self._retrieve(" ".join(context_parts), self._k_for(query))
        return tools, EMBEDDING_OVERHEAD_S + KNN_OVERHEAD_S

    def _retrieve(self, text: str, k: int | None = None):
        query_vec = self.embedder.encode_one(text)
        result = self._index.search_one(query_vec, k or self.k)
        tools = [self._names[int(tool_id)] for tool_id in result.ids]
        return self.suite.catalog.select(tools)

"""ToolLLM-style baseline: DFSDT tree search over the tool hierarchy.

ToolLLM (Qin et al., 2024) navigates a tool-category tree with
depth-first search, issuing an LLM call per expansion to decide which
branch holds the needed API.  The paper tried to compare against it and
reports it "could not fit on the board": the search keeps multiple
decoding branches (and their KV caches) alive simultaneously.

This implementation reproduces both facets:

* :meth:`memory_requirement_gb` gives the footprint of the configured
  search (weights + one KV allocation per live branch), and
  :meth:`fits_device` checks it against the board;
* :meth:`run` raises :class:`ToolLLMMemoryError` when the footprint
  exceeds the device budget (the paper's outcome on the 32 GB Orin with
  the default branching), or executes the tree search when a reduced
  configuration fits — used by the ablation benchmarks.

The tree itself is built offline by agglomerative clustering of tool
descriptions, mirroring ToolLLM's category/tool hierarchy.
"""

from __future__ import annotations

import math

import numpy as np

from repro.clustering import AgglomerativeClustering
from repro.core.agent_base import (
    DEFAULT_CONTEXT_WINDOW,
    FunctionCallingAgent,
    ToolPlan,
)
from repro.embedding.cache import CachedEmbedder, shared_embedder
from repro.hardware.memory import fits_on_device, footprint_gb
from repro.suites.base import Query


class ToolLLMMemoryError(RuntimeError):
    """The configured tree search does not fit in device memory."""


class ToolLLMAgent(FunctionCallingAgent):
    """Tree-search baseline with an explicit device-memory gate."""

    scheme = "toolllm"

    def __init__(self, llm, suite, n_branches: int = 12,
                 context_window: int = DEFAULT_CONTEXT_WINDOW,
                 group_size: int = 6,
                 embedder: CachedEmbedder | None = None,
                 enforce_memory: bool = True, **kwargs):
        super().__init__(llm=llm, suite=suite, **kwargs)
        self.n_branches = n_branches
        self.context_window = context_window
        self.group_size = group_size
        self.enforce_memory = enforce_memory
        self.embedder = embedder if embedder is not None else shared_embedder()
        self._groups = self._build_tree()

    # ------------------------------------------------------------------
    # memory gate
    # ------------------------------------------------------------------
    def memory_requirement_gb(self) -> float:
        """Weights + one KV cache per live search branch."""
        return footprint_gb(
            self.llm.model.params_b,
            self.llm.quant.bits_per_weight,
            self.context_window,
            n_parallel_contexts=self.n_branches,
        )

    def fits_device(self) -> bool:
        """Whether the configured search fits the device DRAM."""
        return fits_on_device(self.memory_requirement_gb(), self.device.memory_gb)

    # ------------------------------------------------------------------
    # offline tool tree
    # ------------------------------------------------------------------
    def _build_tree(self) -> list[tuple[str, ...]]:
        """Cluster tools into leaf groups of ~``group_size``."""
        descriptions = self.suite.registry.descriptions()
        vectors = self.embedder.encode(descriptions)
        n_groups = max(2, math.ceil(len(descriptions) / self.group_size))
        labels = AgglomerativeClustering(
            n_clusters=n_groups, linkage="average", metric="cosine",
        ).fit_predict(vectors)
        names = self.suite.registry.names
        groups: list[tuple[str, ...]] = []
        for group_id in range(int(labels.max()) + 1):
            members = tuple(names[i] for i in np.nonzero(labels == group_id)[0])
            if members:
                groups.append(members)
        return groups

    # ------------------------------------------------------------------
    # agent interface
    # ------------------------------------------------------------------
    def run(self, query: Query):
        if self.enforce_memory and not self.fits_device():
            raise ToolLLMMemoryError(
                f"DFSDT with {self.n_branches} branches at "
                f"{self.context_window}-token windows needs "
                f"{self.memory_requirement_gb():.1f} GB "
                f"> {self.device.memory_gb:.1f} GB on {self.device.name}"
            )
        return super().run(query)

    def plan(self, query: Query) -> ToolPlan:
        """DFS the tool tree: score each leaf group, expand the best.

        Every group evaluation is an extra LLM call (the expense the
        paper highlights); the final function call then runs over the
        selected group's tools.
        """
        query_vec = self.embedder.encode_one(query.text)
        scores = []
        pre_usages = []
        for group in self._groups:
            group_text = " ".join(
                self.suite.registry.get(name).description for name in group
            )
            group_vec = self.embedder.encode_one(group_text)
            scores.append(float(np.dot(query_vec, group_vec)))
            # one short LLM call per expanded node
            from repro.llm.responses import TokenUsage
            from repro.llm.tokens import estimate_tokens

            pre_usages.append(TokenUsage(
                prompt_tokens=220 + estimate_tokens(group_text) // 2,
                completion_tokens=24,
            ))
        order = np.argsort(scores)[::-1]
        chosen: list[str] = []
        for group_id in order[: max(1, self.n_branches // 4)]:
            chosen.extend(self._groups[int(group_id)])
        return ToolPlan(
            tools=self.suite.catalog.select(dict.fromkeys(chosen)),
            context_window=self.context_window,
            level=None,
            overhead_s=0.02,
            pre_usages=pre_usages,
        )

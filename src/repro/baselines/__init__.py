"""Baselines the paper compares against.

* :class:`DefaultAgent` — vanilla function calling: all tools, 16K
  window (the "default execution" in Figures 2/3 and Table I);
* :class:`GorillaAgent` — query-embedding similarity retrieval against
  the full tool ontology (Level-1-only search), docs-style call
  generation at an 8K window;
* :class:`ToolLLMAgent` — DFSDT-style tree search over the tool set;
  included for completeness — the paper could not fit it on the board,
  and :meth:`ToolLLMAgent.memory_requirement_gb` reproduces why.
"""

from repro.baselines.default_agent import DefaultAgent
from repro.baselines.gorilla import GorillaAgent
from repro.baselines.toolllm import ToolLLMAgent, ToolLLMMemoryError
from repro.registry import SchemeContext, register_scheme


@register_scheme("default")
def _build_default(model: str, quant: str, context: SchemeContext, **kwargs):
    llm = context.build_llm(model, quant)
    return DefaultAgent(llm=llm, suite=context.suite, **kwargs)


@register_scheme("gorilla")
def _build_gorilla(model: str, quant: str, context: SchemeContext, **kwargs):
    llm = context.build_llm(model, quant)
    return GorillaAgent(llm=llm, suite=context.suite,
                        embedder=context.embedder, **kwargs)


@register_scheme("toolllm")
def _build_toolllm(model: str, quant: str, context: SchemeContext, **kwargs):
    llm = context.build_llm(model, quant)
    return ToolLLMAgent(llm=llm, suite=context.suite,
                        embedder=context.embedder, **kwargs)


def build_baseline(scheme: str, model: str, quant: str, suite, **kwargs):
    """Construct a baseline agent by scheme name (registry-dispatched)."""
    from repro.registry import build_scheme

    return build_scheme(scheme, model, quant, SchemeContext(suite=suite), **kwargs)


__all__ = [
    "DefaultAgent",
    "GorillaAgent",
    "ToolLLMAgent",
    "ToolLLMMemoryError",
    "build_baseline",
]

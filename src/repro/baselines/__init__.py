"""Baselines the paper compares against.

* :class:`DefaultAgent` — vanilla function calling: all tools, 16K
  window (the "default execution" in Figures 2/3 and Table I);
* :class:`GorillaAgent` — query-embedding similarity retrieval against
  the full tool ontology (Level-1-only search), docs-style call
  generation at an 8K window;
* :class:`ToolLLMAgent` — DFSDT-style tree search over the tool set;
  included for completeness — the paper could not fit it on the board,
  and :meth:`ToolLLMAgent.memory_requirement_gb` reproduces why.
"""

from repro.baselines.default_agent import DefaultAgent
from repro.baselines.gorilla import GorillaAgent
from repro.baselines.toolllm import ToolLLMAgent, ToolLLMMemoryError


def build_baseline(scheme: str, model: str, quant: str, suite, **kwargs):
    """Construct a baseline agent by scheme name."""
    from repro.llm import SimulatedLLM

    agents = {
        "default": DefaultAgent,
        "gorilla": GorillaAgent,
        "toolllm": ToolLLMAgent,
    }
    try:
        cls = agents[scheme.lower()]
    except KeyError:
        raise ValueError(f"unknown scheme {scheme!r}; choose from {sorted(agents)}") from None
    llm = SimulatedLLM.from_registry(model, quant)
    return cls(llm=llm, suite=suite, **kwargs)


__all__ = [
    "DefaultAgent",
    "GorillaAgent",
    "ToolLLMAgent",
    "ToolLLMMemoryError",
    "build_baseline",
]

"""Span-based request tracing for the serving runtime.

One served request becomes one **trace**: a tree of timed spans —

* ``request`` (root) — admission to reply, with ``admit``/``reply``
  events and the final status;
* ``queue`` — time spent waiting in the micro-batch scheduler;
* ``plan`` — the request's share of the group's vectorized planning
  pass (cache hits are attributed);
* ``execute`` — the episode run, with ``backend="inline"`` or
  ``"worker"``;
* ``worker-slice`` / ``inline-slice`` — where the episode actually ran
  when the process backend is active (created *inside* the worker
  process and pickled back, so the two are always distinguishable).

Trace ids are **deterministic**: derived with the repo's stable BLAKE2
hash from ``(tenant, qid, repeat)`` where ``repeat`` counts prior
requests for the same key — the same workload produces the same set of
trace ids on every run, so a failing load test names the exact traces to
look at.  Sampling decisions derive from the trace id itself, so a
sample rate keeps a reproducible subset.

Context crosses the batcher's thread boundary and the process pool's
pickle boundary as an explicit frozen :class:`TraceContext` attached to
the request payload — no thread-locals, nothing ambient.  Span
timestamps use ``time.monotonic()`` (the asyncio event loop's clock), so
queue spans can be synthesized from the scheduler's own enqueue/dequeue
stamps.

Tracing never perturbs results: episodes are planned and executed by
the exact same code paths, spans only observe — the bitwise-determinism
contract (see ROADMAP.md) holds with tracing enabled.

Events recorded against a trace between span boundaries (retries,
fallbacks, quarantines, injected faults) are buffered and attached to
the *next span of that trace to finish* — the span that owns the moment
— with anything left over draining into the root span at reply time.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.utils.hashing import stable_hash64

#: bound on traces with buffered-but-undrained events (leak guard)
MAX_PENDING_TRACES = 4096


def hex_id(*parts: str | int | float) -> str:
    """A stable 16-hex-digit id derived from ``parts``."""
    return f"{stable_hash64(*parts):016x}"


def request_trace_id(tenant: str, qid: str, repeat: int) -> str:
    """The deterministic trace id of one served request.

    A pure function of ``(tenant, qid, repeat)`` — the n-th request for
    the same tenant/qid pair gets the same id on every run, independent
    of global interleaving.  The gateway assigns ids through this even
    when tracing is disabled, so every HTTP response (and error) can
    carry an ``X-Trace-Id`` the operator can later enable tracing
    against and re-find.
    """
    return f"{stable_hash64('trace', tenant, qid, repeat):016x}"


@dataclass(frozen=True)
class TraceContext:
    """The propagation handle: all a downstream stage needs to attach
    spans to a request's trace.

    Frozen and made of two strings, so it pickles across the process
    boundary untouched and rides in frozen payload dataclasses.
    ``span_id`` names the span a downstream stage should parent to.
    """

    trace_id: str
    span_id: str = ""

    def child(self, span_id: str) -> "TraceContext":
        """The context downstream stages see under a new parent span."""
        return TraceContext(self.trace_id, span_id)


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation on a span (retry, fault, quarantine)."""

    name: str
    time_s: float
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "time_s": self.time_s,
                "attributes": dict(self.attributes)}


@dataclass
class Span:
    """One timed operation within a trace."""

    trace_id: str
    span_id: str
    name: str
    parent_id: str = ""
    start_s: float = 0.0
    end_s: float = 0.0
    status: str = "ok"
    attributes: dict = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    @property
    def duration_ms(self) -> float:
        return max(0.0, self.end_s - self.start_s) * 1e3

    def add_event(self, name: str, attributes: dict | None = None,
                  time_s: float | None = None) -> None:
        self.events.append(SpanEvent(
            name=name,
            time_s=time_s if time_s is not None else time.monotonic(),
            attributes=dict(attributes or {})))

    def to_dict(self) -> dict:
        """JSON-able form (what the JSONL sink writes, one per line)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
        }


def worker_slice_span(ctx: TraceContext, qid: str, start_s: float,
                      end_s: float, inline: bool = False) -> Span:
    """Build the span for one episode executed in a worker slice.

    Called inside pool workers (and by the supervised executor's inline
    fallback with ``inline=True``); the span object pickles back to the
    parent, which emits it through the gateway's tracer.  The name alone
    distinguishes where the episode ran.
    """
    name = "inline-slice" if inline else "worker-slice"
    return Span(
        trace_id=ctx.trace_id,
        span_id=hex_id(ctx.trace_id, name, qid, start_s),
        parent_id=ctx.span_id,
        name=name,
        start_s=start_s,
        end_s=end_s,
        attributes={"qid": qid, "pid": os.getpid()},
    )


class Tracer:
    """Creates spans, buffers cross-stage events, writes to one sink.

    Thread-safe: spans are started on the event loop (``submit``), ended
    on the batch worker, and events fire from retry/respawn threads.
    The tracer itself holds no per-request state beyond the pending
    event buffer — span objects travel with the request.
    """

    def __init__(self, sink, sample_rate: float = 1.0,
                 slow_span_ms: float | None = None):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        if slow_span_ms is not None and slow_span_ms <= 0.0:
            raise ValueError(
                f"slow_span_ms must be > 0 (or None), got {slow_span_ms}")
        self.sink = sink
        self.sample_rate = sample_rate
        self.slow_span_ms = slow_span_ms
        self._lock = threading.Lock()
        self._repeats: dict[tuple[str, str], int] = {}
        self._span_seq = 0
        self._pending: dict[str, list[SpanEvent]] = {}

    # ------------------------------------------------------------------
    # trace lifecycle
    # ------------------------------------------------------------------
    def begin(self, tenant: str, qid: str) -> TraceContext | None:
        """Start (or skip, per sampling) the trace for one request.

        The trace id is a pure function of ``(tenant, qid, repeat)``:
        the n-th request for the same tenant/qid pair gets the same id
        on every run, independent of global interleaving.  Returns
        ``None`` for unsampled requests — every downstream tracing call
        is guarded by that, so an unsampled request costs one branch.
        """
        key = (tenant, qid)
        with self._lock:
            repeat = self._repeats.get(key, 0)
            self._repeats[key] = repeat + 1
        return self.sampled(request_trace_id(tenant, qid, repeat))

    def sampled(self, trace_id: str) -> TraceContext | None:
        """The :class:`TraceContext` for a pre-assigned trace id, or
        ``None`` when sampling skips it.

        The id's own high bits decide — deterministic and unbiased, so a
        sample rate keeps a reproducible subset.  Callers that count
        repeats themselves (the gateway stamps ids on every response,
        traced or not) pair :func:`request_trace_id` with this instead
        of :meth:`begin`.
        """
        if self.sample_rate <= 0.0:
            return None
        if self.sample_rate < 1.0:
            digest = int(trace_id, 16)
            if (digest >> 11) / float(1 << 53) >= self.sample_rate:
                return None
        return TraceContext(trace_id=trace_id)

    def start_span(self, ctx: TraceContext, name: str,
                   parent_id: str | None = None,
                   start_s: float | None = None,
                   attributes: dict | None = None) -> Span:
        with self._lock:
            seq = self._span_seq
            self._span_seq += 1
        return Span(
            trace_id=ctx.trace_id,
            span_id=hex_id(ctx.trace_id, name, seq),
            parent_id=parent_id if parent_id is not None else ctx.span_id,
            name=name,
            start_s=start_s if start_s is not None else time.monotonic(),
            attributes=dict(attributes or {}),
        )

    def end_span(self, span: Span, end_s: float | None = None,
                 status: str | None = None) -> None:
        """Close a span, attach its buffered events, emit it.

        The root ``request`` span drains *all* remaining buffered events
        for its trace; other spans drain whatever fired since the last
        span of the trace finished — the moment they own.
        """
        span.end_s = end_s if end_s is not None else time.monotonic()
        if status is not None:
            span.status = status
        with self._lock:
            pending = self._pending.pop(span.trace_id, None)
        if pending:
            span.events.extend(pending)
        self.emit(span)

    def emit(self, span: Span) -> None:
        """Write a finished span to the sink (slow-span marking applied)."""
        if (self.slow_span_ms is not None
                and span.duration_ms >= self.slow_span_ms):
            span.attributes.setdefault("slow", True)
        self.sink.emit(span)

    # ------------------------------------------------------------------
    # events and markers
    # ------------------------------------------------------------------
    def event(self, ctx: TraceContext | None, name: str,
              attributes: dict | None = None) -> None:
        """Record an event against ``ctx``'s trace, owned by the next
        span of that trace to finish (no-op for unsampled requests)."""
        if ctx is None:
            return
        event = SpanEvent(name=name, time_s=time.monotonic(),
                          attributes=dict(attributes or {}))
        with self._lock:
            if (ctx.trace_id not in self._pending
                    and len(self._pending) >= MAX_PENDING_TRACES):
                # leak guard: drop the oldest buffered trace's events
                self._pending.pop(next(iter(self._pending)))
            self._pending.setdefault(ctx.trace_id, []).append(event)

    def marker(self, name: str, attributes: dict | None = None) -> None:
        """Emit a standalone zero-duration span for a control-plane event
        not owned by any request (e.g. a degradation transition)."""
        with self._lock:
            seq = self._span_seq
            self._span_seq += 1
        now = time.monotonic()
        trace_id = hex_id("marker", name, seq)
        self.sink.emit(Span(
            trace_id=trace_id,
            span_id=hex_id(trace_id, name, seq),
            name=name,
            start_s=now,
            end_s=now,
            attributes=dict(attributes or {}),
        ))


def build_tracer(obs) -> Tracer | None:
    """Construct the tracer an :class:`~repro.specs.ObsSpec` describes.

    ``None`` (observability not configured) builds no tracer, so the
    serving hot path carries a single ``is None`` check.
    """
    if obs is None:
        return None
    from repro.registry import TRACE_SINKS

    sink = TRACE_SINKS.get(obs.sink)(obs)
    return Tracer(sink, sample_rate=obs.sample_rate,
                  slow_span_ms=obs.slow_span_ms)

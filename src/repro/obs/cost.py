"""Per-tenant token/cost accounting for the serving runtime.

The paper's thesis is that *smaller prompts win on the edge* — the
:class:`CostLedger` makes that a measured, per-request quantity instead
of a static catalog ratio.  For every served request it records:

* ``tool_prompt_tokens`` — the prompt weight of the tools the plan
  selected (via the same cached estimator catalogs use), which is the
  quantity catalog-variant degradation actually shrinks;
* ``prompt_tokens`` / ``completion_tokens`` / ``llm_calls`` — the
  episode's own LLM traffic.

Entries are keyed by tenant **and** the tenant's catalog variant at
execution time, so a degradation downshift (``full`` → ``compressed`` →
``minimal``) shows up as a drop in mean tool tokens per request in the
``by_variant`` breakdown — the "less is more" savings, quantified.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class _Bucket:
    """Accumulated token counts for one (tenant, variant) cell."""

    requests: int = 0
    tool_prompt_tokens: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    llm_calls: int = 0

    def add(self, tool_prompt_tokens: int, prompt_tokens: int,
            completion_tokens: int, llm_calls: int) -> None:
        self.requests += 1
        self.tool_prompt_tokens += int(tool_prompt_tokens)
        self.prompt_tokens += int(prompt_tokens)
        self.completion_tokens += int(completion_tokens)
        self.llm_calls += int(llm_calls)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "tool_prompt_tokens": self.tool_prompt_tokens,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "total_tokens": self.prompt_tokens + self.completion_tokens,
            "llm_calls": self.llm_calls,
            "mean_tool_prompt_tokens": (
                self.tool_prompt_tokens / self.requests
                if self.requests else 0.0),
        }


@dataclass(frozen=True)
class CostRecord:
    """One request's accounted cost (what ``CostLedger.record`` takes)."""

    tenant: str
    variant: str
    tool_prompt_tokens: int
    prompt_tokens: int = 0
    completion_tokens: int = 0
    llm_calls: int = 0
    catalog_version: str = ""


class CostLedger:
    """Thread-safe per-tenant, per-catalog-variant token accounting.

    Recording happens on the gateway's batch worker; snapshots are read
    from bench/CLI threads — everything is lock-protected.  The snapshot
    is plain JSON-able dicts, written into ``BENCH_perf.json`` by the
    serving bench.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._by_tenant: dict[str, _Bucket] = {}
        self._by_cell: dict[tuple[str, str], _Bucket] = {}
        self._catalog_versions: dict[str, str] = {}

    def record(self, rec: CostRecord) -> None:
        with self._lock:
            tenant_bucket = self._by_tenant.setdefault(rec.tenant, _Bucket())
            cell_bucket = self._by_cell.setdefault(
                (rec.tenant, rec.variant), _Bucket())
            for bucket in (tenant_bucket, cell_bucket):
                bucket.add(rec.tool_prompt_tokens, rec.prompt_tokens,
                           rec.completion_tokens, rec.llm_calls)
            if rec.catalog_version:
                self._catalog_versions[rec.tenant] = rec.catalog_version

    def snapshot(self) -> dict:
        """Point-in-time ledger view (JSON-serializable).

        ``by_tenant`` holds each tenant's lifetime totals plus a
        ``by_variant`` breakdown — comparing ``mean_tool_prompt_tokens``
        across variants is the degradation-savings readout.
        """
        with self._lock:
            tenants = {tenant: bucket.to_dict()
                       for tenant, bucket in self._by_tenant.items()}
            cells = {key: bucket.to_dict()
                     for key, bucket in self._by_cell.items()}
            versions = dict(self._catalog_versions)
        for (tenant, variant), stats in cells.items():
            tenants[tenant].setdefault("by_variant", {})[variant] = stats
        for tenant, version in versions.items():
            tenants[tenant]["catalog_version"] = version
        totals = _Bucket()
        with self._lock:
            for bucket in self._by_tenant.values():
                totals.requests += bucket.requests
                totals.tool_prompt_tokens += bucket.tool_prompt_tokens
                totals.prompt_tokens += bucket.prompt_tokens
                totals.completion_tokens += bucket.completion_tokens
                totals.llm_calls += bucket.llm_calls
        return {"total": totals.to_dict(), "by_tenant": tenants}


def plan_tool_tokens(plan) -> int:
    """Prompt-token weight of the tools a plan exposes to the model.

    Uses the same cached per-tool estimator the catalog token metrics
    use, so ledger numbers and ``BENCH_perf.json`` catalog ratios are
    directly comparable.
    """
    from repro.llm.tokens import tool_prompt_tokens

    tools = getattr(plan, "tools", None) or ()
    return sum(tool_prompt_tokens(tool) for tool in tools)

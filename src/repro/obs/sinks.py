"""Trace sinks: where finished spans go.

A sink is anything with ``emit(span)`` (see :class:`TraceSink`); sinks
are resolved by name through :data:`repro.registry.TRACE_SINKS`, so a
third-party exporter (OTLP, a message bus) plugs in with one decorator::

    from repro.registry import register_trace_sink

    @register_trace_sink("otlp")
    def _otlp_sink(obs_spec):
        return MyOtlpSink(endpoint=obs_spec.sink_path)

Built-ins:

``memory``
    A fixed-capacity ring of finished spans, queryable by trace id —
    what tests, the demo and the acceptance checks read back.
``jsonl``
    One JSON object per span appended to ``ObsSpec.sink_path``; the
    file is truncated on open, so one sink instance is one run's
    artifact (the chaos harness' trace artifact).
``null``
    Drops everything; isolates the tracer's own overhead in benches.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Protocol, runtime_checkable

from repro.obs.trace import Span
from repro.registry import register_trace_sink


@runtime_checkable
class TraceSink(Protocol):
    """Minimal sink contract: receive one finished span at a time.

    ``emit`` may be called concurrently from the event loop, the batch
    worker and supervision threads — implementations lock internally.
    """

    def emit(self, span: Span) -> None:  # pragma: no cover - protocol
        ...


class MemorySink:
    """Fixed-capacity in-memory ring of finished spans.

    Once full, the oldest spans fall off — a long-lived gateway keeps
    the most recent traffic's traces without growing.  Readers get
    copies; the ring itself is never exposed.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)

    def emit(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def spans(self) -> list[Span]:
        """Every retained span, oldest first."""
        with self._lock:
            return list(self._spans)

    def trace_ids(self) -> list[str]:
        """Distinct trace ids still in the ring, in first-seen order."""
        seen: dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def trace(self, trace_id: str) -> list[Span]:
        """One trace's spans, ordered by start time."""
        return sorted((span for span in self.spans()
                       if span.trace_id == trace_id),
                      key=lambda span: (span.start_s, span.span_id))

    def render_tree(self, trace_id: str) -> str:
        """ASCII rendering of one trace's span tree (demo/debug aid)."""
        spans = self.trace(trace_id)
        if not spans:
            return f"(no spans for trace {trace_id})"
        children: dict[str, list[Span]] = {}
        by_id = {span.span_id: span for span in spans}
        roots = []
        for span in spans:
            if span.parent_id and span.parent_id in by_id:
                children.setdefault(span.parent_id, []).append(span)
            else:
                roots.append(span)
        lines = [f"trace {trace_id}"]

        def walk(span: Span, depth: int) -> None:
            marks = "".join(f" !{event.name}" for event in span.events)
            status = "" if span.status == "ok" else f" [{span.status}]"
            lines.append(f"{'  ' * depth}└─ {span.name} "
                         f"{span.duration_ms:.2f}ms{status}{marks}")
            for child in children.get(span.span_id, ()):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 1)
        return "\n".join(lines)


class JsonlSink:
    """Appends one JSON object per span to a file (truncated on open).

    Every ``emit`` writes and flushes one line, so the artifact is
    complete even if the process dies mid-run — the property the chaos
    harness relies on.
    """

    def __init__(self, path: str):
        if not path:
            raise ValueError("JsonlSink requires a non-empty path")
        self.path = path
        self._lock = threading.Lock()
        self._file = open(path, "w", encoding="utf-8")

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


class NullSink:
    """Swallows spans; the control case for tracer-overhead benches."""

    def emit(self, span: Span) -> None:
        pass


def read_jsonl_spans(path: str) -> list[dict]:
    """Load a JSONL trace artifact back as a list of span dicts."""
    spans = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


@register_trace_sink("memory")
def _memory_sink(obs) -> MemorySink:
    return MemorySink(capacity=obs.ring_capacity)


@register_trace_sink("jsonl")
def _jsonl_sink(obs) -> JsonlSink:
    if not obs.sink_path:
        raise ValueError(
            "ObsSpec(sink='jsonl') requires sink_path to name the output file")
    return JsonlSink(obs.sink_path)


@register_trace_sink("null")
def _null_sink(obs) -> NullSink:
    return NullSink()

"""Prometheus text-exposition rendering of telemetry snapshots.

:func:`render_prometheus` turns :meth:`Telemetry.snapshot`'s plain dict
into the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``# HELP`` / ``# TYPE`` headers, escaped label values, cumulative
monotonic histogram buckets, summary quantiles.  It renders from the
*snapshot*, not the live :class:`Telemetry`, so the same function serves
``Gateway.metrics_text()``, the ``repro metrics`` CLI, offline
``LoadReport`` dumps, and the future ASGI ``/metrics`` endpoint.

The latency percentiles are exported as a ``summary`` with a
``window="ring"`` label: they come from Telemetry's fixed-capacity
sample rings, i.e. they describe the most recent ``max_samples``
observations, not the process lifetime.
"""

from __future__ import annotations


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside ``label="..."``.
    """
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(pairs: dict[str, str]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{key}="{escape_label_value(value)}"'
                    for key, value in pairs.items())
    return "{" + body + "}"


def _fmt(value: float | int) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Writer:
    """Accumulates exposition lines, one metric family at a time."""

    def __init__(self, namespace: str):
        self.namespace = namespace
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> str:
        full = f"{self.namespace}_{name}"
        self.lines.append(f"# HELP {full} {help_text}")
        self.lines.append(f"# TYPE {full} {kind}")
        return full

    def sample(self, full_name: str, value: float | int,
               labels: dict[str, str] | None = None) -> None:
        self.lines.append(f"{full_name}{_labels(labels or {})} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(snapshot: dict, cost: dict | None = None,
                      namespace: str = "repro") -> str:
    """Render a telemetry snapshot (and optional cost-ledger snapshot)
    as Prometheus text exposition format.

    Parameters
    ----------
    snapshot:
        A :meth:`Telemetry.snapshot` dict.  Missing keys render as
        absent families, so older snapshots stay renderable.
    cost:
        An optional :meth:`CostLedger.snapshot` dict; adds per-tenant
        token counters.
    namespace:
        Metric-name prefix (``repro_requests_admitted_total`` …).
    """
    out = _Writer(namespace)

    counters = [
        ("requests_admitted_total", "requests_admitted",
         "Requests accepted into the scheduler queue."),
        ("requests_rejected_total", "requests_rejected",
         "Requests bounced by admission control."),
        ("requests_completed_total", "requests_completed",
         "Requests finished successfully."),
        ("requests_failed_total", "requests_failed",
         "Requests finished with an error."),
        ("batches_total", "n_batches", "Micro-batches cut and dispatched."),
        ("plan_cache_hits_total", "plan_cache_hits", "Plan-cache hits."),
        ("plan_cache_misses_total", "plan_cache_misses", "Plan-cache misses."),
        ("worker_restarts_total", "worker_restarts",
         "Worker-pool crashes detected and respawned."),
        ("slice_retries_total", "slice_retries",
         "Failed worker slices resubmitted to the pool."),
        ("inline_fallbacks_total", "inline_fallbacks",
         "Failed worker slices executed inline after retries ran out."),
        ("batch_quarantines_total", "batch_quarantines",
         "Failed micro-batches re-processed request-by-request."),
        ("quarantined_requests_total", "quarantined_requests",
         "Requests re-processed solo inside quarantined batches."),
        ("deadline_timeouts_total", "deadline_timeouts",
         "Requests abandoned on an expired end-to-end deadline."),
    ]
    for name, key, help_text in counters:
        if key in snapshot:
            full = out.family(name, "counter", help_text)
            out.sample(full, snapshot[key])

    gauges = [
        ("uptime_seconds", "uptime_s",
         "Seconds since this Telemetry instance was created (monotonic)."),
        ("snapshot_seq", "snapshot_seq",
         "Snapshots taken from this Telemetry instance; use to detect "
         "restarts between scrapes."),
        ("queue_depth_max", "queue_depth_max",
         "Maximum observed queue depth (windowed sample ring)."),
        ("queue_depth_mean", "queue_depth_mean",
         "Mean observed queue depth (windowed sample ring)."),
        ("plan_cache_hit_rate", "plan_cache_hit_rate",
         "Plan-cache hit rate over all lookups."),
        ("mean_batch_size", "mean_batch_size",
         "Mean size of dispatched micro-batches."),
    ]
    for name, key, help_text in gauges:
        if key in snapshot:
            full = out.family(name, "gauge", help_text)
            out.sample(full, snapshot[key])

    # ------------------------------------------------------------------
    # per-tenant / per-hook labeled counters
    # ------------------------------------------------------------------
    labeled = [
        ("catalog_swaps_total", "catalog_swaps_by_tenant", "tenant",
         "Tool-catalog hot-swaps applied, per tenant."),
        ("shed_requests_total", "shed_requests_by_tenant", "tenant",
         "Requests rejected while their tenant was shed, per tenant."),
        ("faults_injected_total", "faults_injected_by_hook", "hook",
         "Chaos faults fired, per fault hook."),
        ("energy_joules_total", "energy_j_by_tenant", "tenant",
         "Estimated energy attributed to served requests, per tenant "
         "(joules; accounting-layer re-cost under the active power mode)."),
        ("carbon_grams_total", "carbon_g_by_tenant", "tenant",
         "Estimated operational carbon attributed to served requests, "
         "per tenant (gCO2 via the configured grid-intensity signal)."),
    ]
    for name, key, label, help_text in labeled:
        by = snapshot.get(key)
        if by:
            full = out.family(name, "counter", help_text)
            for value_key in sorted(by):
                out.sample(full, by[value_key], {label: value_key})

    transitions = snapshot.get("degrade_transitions_detail")
    if transitions:
        full = out.family(
            "degrade_transitions_total", "counter",
            "Degradation-ladder transitions, per tenant/direction/rung.")
        for key in sorted(transitions):
            tenant, direction, rung = (key.split(":", 2) + ["", ""])[:3]
            out.sample(full, transitions[key],
                       {"tenant": tenant, "direction": direction,
                        "rung": rung})

    budget_transitions = snapshot.get("budget_transitions_detail")
    if budget_transitions:
        full = out.family(
            "budget_transitions_total", "counter",
            "Carbon/power budget-controller actions, per "
            "scope/direction/target (tenant ladder moves and device "
            "power-mode moves).")
        for key in sorted(budget_transitions):
            scope, direction, target = (key.split(":", 2) + ["", ""])[:3]
            out.sample(full, budget_transitions[key],
                       {"scope": scope, "direction": direction,
                        "target": target})

    # ------------------------------------------------------------------
    # batch-size histogram (cumulative, monotonic buckets)
    # ------------------------------------------------------------------
    sizes = snapshot.get("batch_size_histogram")
    if sizes is not None:
        full = out.family("batch_size", "histogram",
                          "Distribution of dispatched micro-batch sizes.")
        counts = {int(size): int(count) for size, count in sizes.items()}
        total = sum(counts.values())
        weighted = sum(size * count for size, count in counts.items())
        cumulative = 0
        for bound in sorted(counts):
            cumulative += counts[bound]
            out.sample(f"{full}_bucket", cumulative, {"le": str(bound)})
        out.sample(f"{full}_bucket", total, {"le": "+Inf"})
        out.sample(f"{full}_sum", weighted)
        out.sample(f"{full}_count", total)

    # ------------------------------------------------------------------
    # latency summary (windowed percentiles from the sample ring)
    # ------------------------------------------------------------------
    quantiles = [("0.5", "latency_p50_ms"), ("0.95", "latency_p95_ms"),
                 ("0.99", "latency_p99_ms")]
    if any(key in snapshot for _, key in quantiles):
        full = out.family(
            "request_latency_seconds", "summary",
            "End-to-end request latency; quantiles are windowed over the "
            "telemetry sample ring, not the process lifetime.")
        for quantile, key in quantiles:
            if key in snapshot:
                out.sample(full, snapshot[key] / 1e3,
                           {"quantile": quantile, "window": "ring"})
        completed = snapshot.get("requests_completed", 0)
        mean_ms = snapshot.get("latency_mean_ms", 0.0)
        out.sample(f"{full}_sum", completed * mean_ms / 1e3)
        out.sample(f"{full}_count", completed)

    # ------------------------------------------------------------------
    # cost ledger (per-tenant token counters)
    # ------------------------------------------------------------------
    if cost:
        tenants = cost.get("by_tenant", {})
        families = [
            ("cost_requests_total", "requests",
             "Requests accounted by the cost ledger, per tenant."),
            ("cost_tool_prompt_tokens_total", "tool_prompt_tokens",
             "Prompt tokens spent on tool schemas, per tenant."),
            ("cost_prompt_tokens_total", "prompt_tokens",
             "Episode prompt tokens, per tenant."),
            ("cost_completion_tokens_total", "completion_tokens",
             "Episode completion tokens, per tenant."),
            ("cost_llm_calls_total", "llm_calls",
             "LLM calls made by episodes, per tenant."),
        ]
        for name, key, help_text in families:
            if not tenants:
                break
            full = out.family(name, "counter", help_text)
            for tenant in sorted(tenants):
                out.sample(full, tenants[tenant].get(key, 0),
                           {"tenant": tenant})

    return out.text()

"""``repro.obs`` — observability for the serving runtime.

Three layers, all opt-in through :class:`~repro.specs.ObsSpec`:

* :mod:`repro.obs.trace` — span-based request tracing with deterministic
  trace ids and explicit context propagation across the batcher's thread
  boundary and the process pool's pickle boundary;
* :mod:`repro.obs.sinks` — where finished spans go (in-memory ring,
  JSONL file, null), pluggable via :data:`repro.registry.TRACE_SINKS`;
* :mod:`repro.obs.prometheus` + :mod:`repro.obs.cost` — Prometheus text
  exposition of :meth:`Telemetry.snapshot` and per-tenant token
  accounting.
"""

from repro.obs.cost import CostLedger, CostRecord, plan_tool_tokens
from repro.obs.prometheus import escape_label_value, render_prometheus
from repro.obs.sinks import (JsonlSink, MemorySink, NullSink, TraceSink,
                             read_jsonl_spans)
from repro.obs.trace import (Span, SpanEvent, TraceContext, Tracer,
                             build_tracer, hex_id, worker_slice_span)

__all__ = [
    "CostLedger",
    "CostRecord",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "Span",
    "SpanEvent",
    "TraceContext",
    "TraceSink",
    "Tracer",
    "build_tracer",
    "escape_label_value",
    "hex_id",
    "plan_tool_tokens",
    "read_jsonl_spans",
    "render_prometheus",
    "worker_slice_span",
]

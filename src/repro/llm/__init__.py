"""Behavioural edge-LLM simulator.

No model weights can run in this offline environment, so the LLM is
replaced by a *behavioural* simulator built around the mechanism the
paper's results hinge on: **tool-space confusion**.  The probability of
selecting the right tool falls as more tools are presented (and as
context pressure rises), more steeply for weaker and more aggressively
quantized models; argument formatting adds an independent error channel
(the gap between the paper's Tool Accuracy and Success Rate).

The simulator exposes the same surface a real Ollama deployment would:

* :meth:`SimulatedLLM.recommend_tools` — the Less-is-More Recommender
  turn (no tools attached): returns "ideal tool" descriptions derived
  from the query, corrupted according to the model's reasoning skill;
* :meth:`SimulatedLLM.execute_step` — one function-calling turn given a
  presented tool subset, returning the chosen call plus token usage for
  the hardware model.

All stochastic choices are seeded per (model, quant, query, step); see
``DESIGN.md`` section 5 for the calibration targets.
"""

from repro.llm.engine import SimulatedLLM
from repro.llm.registry import (
    MODEL_REGISTRY,
    QUANT_REGISTRY,
    ModelSpec,
    QuantSpec,
    get_model_spec,
    get_quant_spec,
)
from repro.llm.responses import AgentTurn, RecommenderOutput, TokenUsage
from repro.llm.tokens import estimate_tokens

__all__ = [
    "MODEL_REGISTRY",
    "QUANT_REGISTRY",
    "AgentTurn",
    "ModelSpec",
    "QuantSpec",
    "RecommenderOutput",
    "SimulatedLLM",
    "TokenUsage",
    "estimate_tokens",
    "get_model_spec",
    "get_quant_spec",
]

"""Concrete chat-prompt rendering and tool-call parsing.

The behavioural engine accounts tokens without materialising prompt
text; this module provides the concrete counterpart — an Ollama-style
chat template renderer and a tolerant parser for tool-call JSON — used
by debugging tools, the examples and anyone extending the simulator
toward real checkpoints.  ``estimate_tokens(render_...)`` agrees with
the engine's budget model to within the scaffolding constants.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.llm.tokens import estimate_tokens
from repro.tools.schema import ToolCall, ToolSpec

AGENT_SYSTEM_PROMPT = """\
You are a function-calling assistant running on an edge device.
You are given a set of tools as JSON schemas. Decide which single tool to
call next to make progress on the user's task, and respond with exactly
one JSON object of the form {"name": <tool>, "arguments": {...}} and no
other text. Use only tools from the provided list and argument values of
the declared types. If, after retrying, no tool can make progress,
respond with {"error": "<short reason>"} instead so the runtime can fall
back to the full tool set.
"""

RECOMMENDER_SYSTEM_PROMPT = """\
You are planning a tool-augmented task. No tools are attached. Read the
user's request and describe the ideal tools you would need to complete
it: respond with a JSON list of short functional descriptions, one per
distinct tool, most important first. Do not invent tool names; describe
functionality only.
"""


@dataclass(frozen=True)
class ChatTurn:
    """One rendered message of a conversation."""

    role: str
    content: str

    def __post_init__(self):
        if self.role not in ("system", "user", "assistant", "tool"):
            raise ValueError(f"unknown role {self.role!r}")


@dataclass
class ChatTranscript:
    """An ordered conversation with token accounting."""

    turns: list[ChatTurn] = field(default_factory=list)

    def add(self, role: str, content: str) -> None:
        self.turns.append(ChatTurn(role, content))

    def render(self) -> str:
        """Ollama/ChatML-style flat rendering."""
        blocks = [f"<|{turn.role}|>\n{turn.content}" for turn in self.turns]
        return "\n".join(blocks) + "\n<|assistant|>\n"

    @property
    def prompt_tokens(self) -> int:
        return estimate_tokens(self.render())


def render_agent_prompt(query_text: str, tools: list[ToolSpec],
                        history: list[tuple[ToolCall, str]] = ()) -> ChatTranscript:
    """Build the full agent conversation for one function-calling turn.

    ``history`` carries prior (call, result-summary) pairs of a chain.
    """
    transcript = ChatTranscript()
    tool_block = "\n".join(tool.json_text() for tool in tools)
    transcript.add("system", f"{AGENT_SYSTEM_PROMPT}\nTOOLS:\n{tool_block}")
    transcript.add("user", query_text)
    for call, result in history:
        transcript.add("assistant", call.to_json())
        transcript.add("tool", result)
    return transcript


def render_recommender_prompt(query_text: str) -> ChatTranscript:
    """Build the zero-tool recommender conversation."""
    transcript = ChatTranscript()
    transcript.add("system", RECOMMENDER_SYSTEM_PROMPT)
    transcript.add("user", query_text)
    return transcript


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParsedResponse:
    """Outcome of parsing a model response."""

    call: ToolCall | None = None
    error_message: str | None = None
    malformed: bool = False

    @property
    def is_error_signal(self) -> bool:
        return self.error_message is not None


_JSON_BLOCK_RE = re.compile(r"\{.*\}", re.DOTALL)


def parse_tool_response(text: str) -> ParsedResponse:
    """Parse a model's tool-call response, tolerating chatter around it.

    Recognises the three outcomes the runtime distinguishes: a
    well-formed call, an explicit error signal (the paper's fallback
    trigger), or malformed output (treated as a failed call).
    """
    match = _JSON_BLOCK_RE.search(text)
    if not match:
        return ParsedResponse(malformed=True)
    try:
        payload = json.loads(match.group(0))
    except json.JSONDecodeError:
        return ParsedResponse(malformed=True)
    if not isinstance(payload, dict):
        return ParsedResponse(malformed=True)
    if "error" in payload:
        return ParsedResponse(error_message=str(payload["error"]))
    name = payload.get("name")
    arguments = payload.get("arguments", {})
    if not isinstance(name, str) or not isinstance(arguments, dict):
        return ParsedResponse(malformed=True)
    return ParsedResponse(call=ToolCall(name, arguments))


def render_tool_call(call: ToolCall) -> str:
    """The canonical assistant-side serialization of a call."""
    return call.to_json()


def render_error_signal(reason: str) -> str:
    """The canonical failure-signal response (paper Section III-C)."""
    return json.dumps({"error": reason})

"""The simulated LLM engine: recommender + function-calling turns."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embedding.cache import CachedEmbedder, shared_embedder
from repro.embedding.lexicon import default_lexicon
from repro.embedding.tokenizer import Tokenizer, stem
from repro.llm import behavior
from repro.llm.behavior import DEFAULT_CALIBRATION, BehaviorCalibration
from repro.llm.registry import ModelSpec, QuantSpec, get_model_spec, get_quant_spec
from repro.llm.responses import AgentTurn, RecommenderOutput, TokenUsage
from repro.llm.tokens import (
    HISTORY_TOKENS_PER_STEP,
    RECOMMENDER_SYSTEM_TOKENS,
    context_pressure,
    estimate_tokens,
    plan_agent_prompt,
)
from repro.suites.base import Query
from repro.tools.schema import ToolCall, ToolSpec
from repro.utils.rng import DEFAULT_ROOT_SEED, derive_rng
from repro.utils.text import truncate_words

#: Wrong-typed stand-ins used when the model fumbles an argument.
_CORRUPTION_VALUES = {
    "string": 42,
    "integer": "forty-two",
    "number": "a lot",
    "boolean": "yes",
    "array": "not-a-list",
}

#: Type-correct placeholders used when the model calls the *wrong* tool
#: (the call is well-formed, just not the right API for the task).
_PLACEHOLDER_VALUES = {
    "string": "auto",
    "integer": 1,
    "number": 1.0,
    "boolean": True,
}

#: Generic filler words weak recommenders substitute for domain terms
#: ("a tool to process the data and return results") — these carry no
#: concept signal, so retrieval quality degrades with reasoning skill.
_GENERIC_WORDS = ("data", "information", "process", "handle", "task",
                  "result", "item", "request", "thing", "general")


@dataclass
class SimulatedLLM:
    """Behavioural simulator of one (model, quantization) deployment."""

    model: ModelSpec
    quant: QuantSpec
    embedder: CachedEmbedder = field(default_factory=shared_embedder)
    calibration: BehaviorCalibration = DEFAULT_CALIBRATION
    root_seed: int = DEFAULT_ROOT_SEED

    @classmethod
    def from_registry(cls, model: str, quant: str = "q4_K_M", **kwargs) -> "SimulatedLLM":
        """Build from registry names, e.g. ``("llama3.1-8b", "q4_K_M")``."""
        return cls(model=get_model_spec(model), quant=get_quant_spec(quant), **kwargs)

    @property
    def name(self) -> str:
        return f"{self.model.name}-{self.quant.name}"

    # ------------------------------------------------------------------
    # RNG plumbing
    # ------------------------------------------------------------------
    def _rng(self, *parts) -> np.random.Generator:
        return derive_rng("llm", self.model.name, self.quant.name, *parts,
                          root_seed=self.root_seed)

    # ------------------------------------------------------------------
    # Tool Recommender (paper Section III-B)
    # ------------------------------------------------------------------
    def recommend_tools(self, query: Query, registry=None,
                        corpus_descriptions: list[str] | None = None) -> RecommenderOutput:
        """Describe the "ideal tools" for ``query`` without seeing any tools.

        The simulator grounds the output in the query's gold tools — the
        model "understands" the task to the extent its reasoning skill
        allows — then corrupts it: paraphrase noise, dropped tools (weak
        planners under-enumerate chains) and spurious extras.  ``registry``
        (a :class:`~repro.tools.ToolRegistry`) supplies the reference tool
        descriptions; without it, descriptions are derived from tool names.
        """
        rng = self._rng(query.qid, "recommend")
        quality = behavior.recommender_quality(self.model, self.quant)
        gold_descriptions = self._gold_descriptions(query, registry)
        merge_p = (self.calibration.recommender_merge_p_sequential
                   if query.sequential else self.calibration.recommender_merge_p)
        gold_descriptions = self._merge_related_needs(gold_descriptions, rng, merge_p)

        descriptions: list[str] = []
        for index, text in enumerate(gold_descriptions):
            miss_p = (self.calibration.recommender_miss_base
                      * (1.0 - quality) * (1.0 + 0.35 * index))
            if index > 0 and rng.random() < miss_p:
                continue
            noise = self.calibration.recommender_noise_base * (1.0 - quality)
            # genericisation collapses quadratically with reasoning skill:
            # strong reasoners keep domain terms, weak ones write filler
            generic_p = 0.55 * (1.0 - quality) ** 2
            # recommenders write short functional blurbs, not documentation
            descriptions.append(truncate_words(
                self._paraphrase(text, noise, rng, generic_p=generic_p), 18))
        if not descriptions:
            # even the weakest model emits *something* for the first need
            descriptions.append(self._paraphrase(gold_descriptions[0], 0.9, rng))

        spurious_p = self.calibration.recommender_spurious_base * (1.0 - quality)
        if corpus_descriptions and rng.random() < spurious_p:
            extra = corpus_descriptions[int(rng.integers(len(corpus_descriptions)))]
            descriptions.append(self._paraphrase(extra, 0.5, rng))

        completion = sum(estimate_tokens(text) + 12 for text in descriptions)
        usage = TokenUsage(
            prompt_tokens=RECOMMENDER_SYSTEM_TOKENS + estimate_tokens(query.text),
            completion_tokens=completion,
        )
        return RecommenderOutput(descriptions=tuple(descriptions), usage=usage)

    def _merge_related_needs(self, descriptions: list[str],
                             rng: np.random.Generator,
                             merge_p: float = 0.6) -> list[str]:
        """Blend adjacent needs of a multi-tool task into joint descriptions.

        LLMs asked to enumerate the tools for a workflow routinely fuse
        consecutive steps into one sentence ("a tool that loads the
        archive and filters scenes by region").  These blended
        descriptions are exactly what makes complex tasks match tool
        *clusters* better than individual tools (paper Section III-C:
        "recommendations involving multiple tools are more likely to
        match a tool cluster").
        """
        if len(descriptions) < 2:
            return descriptions
        merged: list[str] = []
        index = 0
        while index < len(descriptions):
            text = descriptions[index]
            if index + 1 < len(descriptions) and rng.random() < merge_p:
                follower = truncate_words(descriptions[index + 1].rstrip("."), 9)
                text = f"{text.rstrip('.')} and {follower.lower()}."
                index += 1
            merged.append(text)
            index += 1
        return merged

    def _gold_descriptions(self, query: Query, registry=None) -> list[str]:
        """Reference "ideal tool" texts: one per distinct gold tool."""
        texts: list[str] = []
        seen: set[str] = set()
        for call in query.gold_calls:
            if call.tool in seen:
                continue
            seen.add(call.tool)
            if registry is not None and call.tool in registry:
                texts.append(registry.get(call.tool).description)
            else:
                # fall back to a name-derived description
                texts.append(f"A tool to {call.tool.replace('_', ' ')}.")
        return texts

    # ------------------------------------------------------------------
    # Function-calling turn (agent)
    # ------------------------------------------------------------------
    def execute_step(
        self,
        query: Query,
        step_index: int,
        presented_tools: list[ToolSpec],
        context_window: int,
        attempt: int = 0,
        skill_multiplier: float = 1.0,
        arg_multiplier: float = 1.0,
    ) -> AgentTurn:
        """Run one function-calling turn for chain step ``step_index``.

        ``skill_multiplier``/``arg_multiplier`` let baselines model
        non-native calling styles (e.g. Gorilla's docs-to-call
        generation); the Less-is-More pipeline uses 1.0.
        """
        if not presented_tools:
            raise ValueError("at least one tool must be presented")
        gold_call = query.gold_calls[min(step_index, query.n_steps - 1)]
        rng = self._rng(query.qid, "step", step_index, "attempt", attempt)

        plan = plan_agent_prompt(query.text, presented_tools, context_window,
                                 step_index=step_index)
        included = [tool for tool in presented_tools if tool.name in set(plan.tools_included)]
        pressure = context_pressure(plan.prompt_tokens, context_window)
        usage = self._turn_usage(plan.prompt_tokens, step_index, len(included),
                                 gold_call, rng)

        # model gives up (error-signal channel used by the LiS fallback)
        if rng.random() < behavior.error_signal_probability(
                self.model, self.quant, pressure, self.calibration):
            return AgentTurn(call=None, usage=usage, signalled_error=True,
                             tools_seen=plan.tools_included)

        distractor_sim = self._distractor_similarity(query, included, gold_call.tool)
        gold_present = any(tool.name == gold_call.tool for tool in included)
        if gold_present:
            gold_spec = next(tool for tool in included if tool.name == gold_call.tool)
            gold_sim = self._similarity(query.text, gold_spec.description)
            logit = behavior.selection_logit(
                self.model, self.quant, len(included), distractor_sim, pressure,
                gold_similarity=gold_sim,
                step_index=step_index if query.sequential else 0,
                sequential=query.sequential,
                skill_multiplier=skill_multiplier,
                calibration=self.calibration,
            )
            correct = rng.random() < behavior.sigmoid(logit)
        else:
            correct = False

        if correct:
            call = self._format_gold_call(gold_call, pressure, distractor_sim,
                                          arg_multiplier, rng)
            return AgentTurn(call=call, usage=usage, correct_tool=True,
                             tools_seen=plan.tools_included)

        distractor = self._pick_distractor(query, included, gold_call.tool, rng)
        if distractor is None:
            # nothing plausible to call: behave like an error signal
            return AgentTurn(call=None, usage=usage, signalled_error=True,
                             tools_seen=plan.tools_included)
        call = ToolCall(distractor.name, self._placeholder_arguments(distractor))
        return AgentTurn(call=call, usage=usage, correct_tool=False,
                         tools_seen=plan.tools_included)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _turn_usage(self, prompt_tokens: int, step_index: int, n_tools: int,
                    gold_call: ToolCall, rng: np.random.Generator) -> TokenUsage:
        completion = behavior.completion_tokens(
            self.model, self.quant, n_tools, len(gold_call.arguments), rng,
            self.calibration,
        )
        kv_cached = 0
        if step_index > 0:
            # the system/tool/query prefix is resident from the previous turn
            kv_cached = max(0, prompt_tokens - HISTORY_TOKENS_PER_STEP)
        return TokenUsage(prompt_tokens=prompt_tokens, completion_tokens=completion,
                          kv_cached_tokens=kv_cached)

    def _similarity(self, text_a: str, text_b: str) -> float:
        return float(np.dot(self.embedder.encode_one(text_a),
                            self.embedder.encode_one(text_b)))

    def _query_tool_similarities(self, query: Query,
                                 candidates: list[ToolSpec]) -> np.ndarray:
        """Query-vs-description dot products via one batched encode."""
        vectors = self.embedder.encode(
            [query.text] + [tool.description for tool in candidates])
        return vectors[1:] @ vectors[0]

    def _distractor_similarity(self, query: Query, included: list[ToolSpec],
                               gold_tool: str) -> float:
        """Mean query-similarity of the 3 closest non-gold presented tools."""
        candidates = [tool for tool in included if tool.name != gold_tool]
        if not candidates:
            return 0.0
        sims = np.sort(self._query_tool_similarities(query, candidates))[::-1]
        return float(np.mean(sims[:3]))

    def _pick_distractor(self, query: Query, included: list[ToolSpec],
                         gold_tool: str, rng: np.random.Generator) -> ToolSpec | None:
        """Sample a wrong tool, biased towards the most query-similar ones."""
        candidates = [tool for tool in included if tool.name != gold_tool]
        if not candidates:
            return None
        sims = self._query_tool_similarities(query, candidates)
        weights = np.exp((sims - sims.max()) / 0.08)
        weights /= weights.sum()
        return candidates[int(rng.choice(len(candidates), p=weights))]

    def _format_gold_call(self, gold_call: ToolCall, pressure: float,
                          distractor_sim: float, arg_multiplier: float,
                          rng: np.random.Generator) -> ToolCall:
        """Reproduce the gold call, possibly fumbling the arguments."""
        n_required = len(gold_call.arguments)
        p_ok = behavior.argument_success_probability(
            self.model, self.quant, n_required, pressure,
            distractor_similarity=distractor_sim,
            skill_multiplier=arg_multiplier, calibration=self.calibration,
        )
        if not gold_call.arguments or rng.random() < p_ok:
            return ToolCall(gold_call.tool, gold_call.arguments)
        return ToolCall(gold_call.tool, self._corrupt_arguments(gold_call.arguments, rng))

    def _corrupt_arguments(self, arguments: dict, rng: np.random.Generator) -> dict:
        """Break one argument: wrong type, or drop it entirely."""
        corrupted = dict(arguments)
        victim = sorted(corrupted)[int(rng.integers(len(corrupted)))]
        if rng.random() < 0.5:
            del corrupted[victim]
        else:
            value = corrupted[victim]
            if isinstance(value, bool):
                corrupted[victim] = "yes"
            elif isinstance(value, (int, float)):
                corrupted[victim] = _CORRUPTION_VALUES["integer"]
            elif isinstance(value, str):
                corrupted[victim] = _CORRUPTION_VALUES["string"]
            else:
                corrupted[victim] = _CORRUPTION_VALUES["array"]
        return corrupted

    def _placeholder_arguments(self, tool: ToolSpec) -> dict:
        """Type-correct arguments for a wrong-tool call."""
        arguments = {}
        for parameter in tool.required_parameters:
            if parameter.enum:
                arguments[parameter.name] = parameter.enum[0]
            elif parameter.type == "array":
                arguments[parameter.name] = []
            else:
                arguments[parameter.name] = _PLACEHOLDER_VALUES[parameter.type]
        return arguments

    def _paraphrase(self, text: str, noise: float, rng: np.random.Generator,
                    generic_p: float | None = None) -> str:
        """Degrade a description the way a weak reasoner would.

        Three channels: synonym substitution (harmless — synonyms share
        concepts), *genericisation* (domain terms replaced by filler like
        "data"/"process", which destroys the retrieval signal; rate
        ``generic_p``, default derived from ``noise``) and word dropping.
        """
        if generic_p is None:
            generic_p = noise * 0.30
        lexicon = default_lexicon()
        tokenizer = Tokenizer(remove_stopwords=False, apply_stem=False)
        words = tokenizer.words(text)
        output: list[str] = []
        for word in words:
            roll = rng.random()
            concepts = lexicon.lookup(stem(word))
            if concepts and roll < generic_p:
                output.append(_GENERIC_WORDS[int(rng.integers(len(_GENERIC_WORDS)))])
                continue
            if concepts and roll < generic_p + noise * 0.45:
                concept = concepts[int(rng.integers(len(concepts)))]
                terms = [term for term in lexicon.concepts[concept]
                         if " " not in term and term != word]
                if terms:
                    output.append(terms[int(rng.integers(len(terms)))])
                    continue
            if roll > 1.0 - noise * 0.18 and len(words) > 4:
                continue  # drop the word
            output.append(word)
        return " ".join(output) if output else text

"""Probability models behind the simulated LLM.

Every behavioural effect the paper measures is produced by the small set
of mechanisms in this module:

* **tool-space confusion** — the log-odds of selecting the gold tool
  fall with ``ln(1 + n_tools)``, with the semantic closeness of the
  distractors to the query, and with context pressure; they rise with
  the model's effective skill (base skill x quantization retention).
  This is the paper's core insight ("selectively reducing the number of
  tools ... significantly improves function-calling performance").
* **argument-formatting errors** — an independent channel whose rate
  grows with parameter count and context pressure; it separates Tool
  Accuracy from Success Rate.
* **sequential decay** — chained calls (GeoEngine) lose skill per step,
  scaled by the model's ``seq_skill`` and the quantization variant's
  long-context retention.
* **verbosity** — confused models emit more tokens, which the hardware
  model converts into time and energy.

Constants are grouped in :class:`BehaviorCalibration`; the defaults were
fitted against the paper's Tables I/II and the Figure 2/3 narratives
(see EXPERIMENTS.md for paper-vs-measured values).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.llm.registry import ModelSpec, QuantSpec


@dataclass(frozen=True)
class BehaviorCalibration:
    """Tunable constants of the behaviour model (defaults = paper fit)."""

    # tool selection ---------------------------------------------------
    select_base: float = -0.25
    select_skill_gain: float = 8.3
    confusion_coef: float = 1.36
    distractor_coef: float = 2.1
    pressure_coef: float = 1.1
    #: context pressure only hurts once the prompt approaches the window
    #: (paper: growing the window beyond 16K does not help accuracy)
    pressure_knee: float = 0.45
    #: how strongly the query's semantic match to the gold tool guides
    #: selection (benchmark queries name their task domain)
    gold_similarity_gain: float = 2.6
    #: chained steps are guided by the previous call's result (the next
    #: tool is strongly implied), offsetting part of the sequential decay
    history_guidance: float = 3.4
    # sequential decay ---------------------------------------------------
    seq_step_coef: float = 0.60
    # argument formatting --------------------------------------------------
    arg_base_penalty: float = 0.28
    arg_per_param_penalty: float = 0.18
    arg_pressure_penalty: float = 0.40
    #: schema confusion: similar presented tools have similar-but-wrong
    #: parameter names, so argument fidelity drops when the presented
    #: set is semantically tight (retrieved sets are)
    arg_distractor_penalty: float = 0.75
    # recommender ---------------------------------------------------------
    recommender_miss_base: float = 0.12
    recommender_spurious_base: float = 0.22
    recommender_noise_base: float = 0.85
    #: probability of fusing adjacent multi-tool needs into one blended
    #: description (higher for workflow-style sequential tasks)
    recommender_merge_p: float = 0.5
    recommender_merge_p_sequential: float = 0.75
    # error signalling ------------------------------------------------------
    error_signal_base: float = 0.06
    # decode verbosity ---------------------------------------------------
    decode_base_tokens: float = 26.0
    decode_tokens_per_arg: float = 7.0
    decode_confusion_tokens: float = 80.0


DEFAULT_CALIBRATION = BehaviorCalibration()


def effective_skill(model: ModelSpec, quant: QuantSpec,
                    sequential: bool = False) -> float:
    """Tool-selection skill after quantization.

    Single-call selection tracks the variant's reasoning retention.  On
    sequential chains the binding constraint shifts to *long-context
    coherence* (keeping the workflow state straight across turns), which
    is not monotone in bits — this is how the paper's Table I GeoEngine
    ordering (q4_1 > q4_K_M > q8_0 > q4_0) arises.
    """
    if sequential:
        retention = (0.25 * quant.reasoning_retention
                     + 0.75 * quant.long_context_retention)
    else:
        retention = quant.reasoning_retention
    return model.fc_skill * retention


def sequential_retention(model: ModelSpec, quant: QuantSpec, step_index: int,
                         calibration: BehaviorCalibration = DEFAULT_CALIBRATION) -> float:
    """Logit penalty applied at chain step ``step_index`` (0 = free)."""
    if step_index <= 0:
        return 0.0
    chain_quality = model.seq_skill * quant.long_context_retention
    return calibration.seq_step_coef * step_index * (1.0 - chain_quality)


def selection_logit(
    model: ModelSpec,
    quant: QuantSpec,
    n_tools: int,
    distractor_similarity: float,
    pressure: float,
    gold_similarity: float = 0.0,
    step_index: int = 0,
    sequential: bool = False,
    skill_multiplier: float = 1.0,
    calibration: BehaviorCalibration = DEFAULT_CALIBRATION,
) -> float:
    """Log-odds that the gold tool wins the selection competition.

    ``gold_similarity`` is the semantic match between the live task
    context and the gold tool's description.  ``sequential`` chains get
    structural guidance at every step (copilot workflows are strongly
    conventionalised: load, filter, analyse, render), while
    ``step_index`` drives the per-step retention decay.
    """
    if n_tools < 1:
        raise ValueError("n_tools must be >= 1")
    skill = effective_skill(model, quant, sequential=sequential) * skill_multiplier
    guidance = calibration.gold_similarity_gain * max(0.0, gold_similarity)
    if sequential:
        # exploiting the previous result is itself a chain skill: models
        # that lose the workflow thread (Phi3, Qwen2-1.5b in Fig. 3)
        # extract far less guidance from the conversation history
        guidance += calibration.history_guidance * (0.5 + 0.5 * model.seq_skill)
    pressure_excess = max(0.0, pressure - calibration.pressure_knee)
    return (
        calibration.select_base
        + calibration.select_skill_gain * skill
        + guidance
        - calibration.confusion_coef * math.log1p(n_tools)
        - calibration.distractor_coef * max(0.0, distractor_similarity)
        - calibration.pressure_coef * pressure_excess
        - sequential_retention(model, quant, step_index, calibration)
    )


def sigmoid(x: float) -> float:
    """Numerically safe logistic function."""
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    z = math.exp(x)
    return z / (1.0 + z)


def argument_success_probability(
    model: ModelSpec,
    quant: QuantSpec,
    n_required_params: int,
    pressure: float,
    distractor_similarity: float = 0.0,
    skill_multiplier: float = 1.0,
    calibration: BehaviorCalibration = DEFAULT_CALIBRATION,
) -> float:
    """P(well-formed arguments | correct tool chosen).

    ``distractor_similarity`` models *schema confusion*: when the
    presented tools are semantically tight (as retrieved subsets are),
    their parameter schemas are similar-but-different and models leak
    fields across them.  This is what separates Llama3.1's very high
    retrieved-tool accuracy from its much lower success rate (Fig. 2).
    """
    arg_quality = model.arg_skill * quant.format_stability * skill_multiplier
    difficulty = (
        calibration.arg_base_penalty
        + calibration.arg_per_param_penalty * n_required_params
        + calibration.arg_pressure_penalty * pressure
        + calibration.arg_distractor_penalty * max(0.0, distractor_similarity)
    )
    probability = 1.0 - (1.0 - arg_quality) * difficulty
    return float(np.clip(probability, 0.02, 0.995))


def error_signal_probability(
    model: ModelSpec,
    quant: QuantSpec,
    pressure: float,
    calibration: BehaviorCalibration = DEFAULT_CALIBRATION,
) -> float:
    """P(the model gives up and signals failure instead of calling)."""
    skill = effective_skill(model, quant)
    return float(np.clip(
        calibration.error_signal_base * (1.0 - skill) * (1.0 + 2.0 * pressure),
        0.0, 0.35,
    ))


def completion_tokens(
    model: ModelSpec,
    quant: QuantSpec,
    n_tools: int,
    n_args: int,
    rng: np.random.Generator,
    calibration: BehaviorCalibration = DEFAULT_CALIBRATION,
) -> int:
    """Decode length of one function-calling turn.

    Confused models ramble: the confusion term grows with the presented
    tool count and shrinks with effective skill — the paper's "fewer
    options enables the LLM to make ... faster decisions".
    """
    skill = effective_skill(model, quant)
    confusion = (
        calibration.decode_confusion_tokens
        * model.verbosity
        * (1.0 - skill)
        * math.log1p(n_tools) / math.log1p(50)
    )
    base = calibration.decode_base_tokens + calibration.decode_tokens_per_arg * n_args
    jitter = float(rng.uniform(0.85, 1.15))
    return max(8, int(round((base + confusion) * jitter)))


def recommender_quality(model: ModelSpec, quant: QuantSpec) -> float:
    """How faithfully the model describes its ideal tools in [0, 1]."""
    return model.reasoning * quant.reasoning_retention

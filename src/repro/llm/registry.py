"""Model and quantization registries.

The six models and four Ollama quantization variants evaluated in the
paper (Section IV).  Skill scalars are behavioural calibration constants,
anchored on the paper's reported numbers:

* Table I fixes the quantization ladder for Llama3.1-8b on both suites —
  including the *non-monotone* GeoEngine ordering (q4_1 > q4_K_M > q8_0),
  which we model as ``long_context_retention``: the larger q8_0 footprint
  pressures the 16K KV budget on the 32 GB board and hurts long
  sequential chains before it helps single-call precision.
* Figures 2/3 fix the per-model levels (e.g. Hermes2's strong
  function-calling fine-tune, Llama3.1's weak argument formatting,
  Mistral's weak compressed reasoning, Phi3/Qwen2-1.5b collapsing on
  sequential GeoEngine chains).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QuantSpec:
    """One precision variant of a deployed checkpoint.

    Attributes
    ----------
    bits_per_weight:
        Effective GGUF bits per weight (drives memory/bandwidth costs).
    reasoning_retention:
        Fraction of the full-precision model's selection/reasoning skill
        retained at this precision.
    format_stability:
        Retention of structured-output (JSON argument) discipline.
    long_context_retention:
        Retention of multi-step/long-context coherence; deliberately not
        monotone in bits (see module docstring).
    """

    name: str
    bits_per_weight: float
    reasoning_retention: float
    format_stability: float
    long_context_retention: float


QUANT_REGISTRY: dict[str, QuantSpec] = {
    "full": QuantSpec("full", 16.0, 1.00, 1.00, 1.00),
    "q8_0": QuantSpec("q8_0", 8.5, 0.90, 0.95, 0.84),
    "q4_K_M": QuantSpec("q4_K_M", 4.85, 0.85, 0.92, 0.92),
    "q4_1": QuantSpec("q4_1", 5.0, 0.81, 0.93, 0.96),
    "q4_0": QuantSpec("q4_0", 4.5, 0.71, 0.82, 0.80),
}


@dataclass(frozen=True)
class ModelSpec:
    """Behavioural profile of one base model.

    Attributes
    ----------
    params_b:
        Parameter count in billions (drives hardware costs).
    fc_skill:
        Tool-selection competence in [0, 1].
    arg_skill:
        Argument-formatting competence in [0, 1].
    reasoning:
        Recommender-quality scalar: how faithfully the model can describe
        the tools it needs when given none.
    seq_skill:
        Multi-step chain competence (GeoEngine-style tasks).
    verbosity:
        How much the model rambles when confused (drives decode tokens).
    """

    name: str
    params_b: float
    fc_skill: float
    arg_skill: float
    reasoning: float
    seq_skill: float
    verbosity: float


MODEL_REGISTRY: dict[str, ModelSpec] = {
    # advanced LLaMA variant optimized for function calling
    "hermes2-pro-8b": ModelSpec("hermes2-pro-8b", 8.0, 0.82, 0.80, 0.82, 0.68, 0.7),
    # state-of-the-art, strong selection but weak argument formatting
    "llama3.1-8b": ModelSpec("llama3.1-8b", 8.0, 0.74, 0.68, 0.80, 0.76, 0.8),
    # decent native selection but weak compressed reasoning; paper:
    # Gorilla worst, LiS no success/accuracy gain (only time/power)
    "mistral-8b": ModelSpec("mistral-8b", 7.2, 0.70, 0.70, 0.30, 0.52, 1.0),
    # task-specialised; collapses on sequential chains (excluded in Fig. 3)
    "phi3-8b": ModelSpec("phi3-8b", 7.6, 0.66, 0.72, 0.70, 0.16, 0.9),
    # small edge model
    "qwen2-1.5b": ModelSpec("qwen2-1.5b", 1.5, 0.48, 0.58, 0.55, 0.26, 1.2),
    # larger sibling
    "qwen2-7b": ModelSpec("qwen2-7b", 7.6, 0.76, 0.78, 0.78, 0.34, 0.8),
}


def get_model_spec(name: str) -> ModelSpec:
    """Look up a model profile by (case-insensitive) name."""
    try:
        return MODEL_REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; choose from {sorted(MODEL_REGISTRY)}"
        ) from None


def get_quant_spec(name: str) -> QuantSpec:
    """Look up a quantization variant by name (case-sensitive GGUF names)."""
    try:
        return QUANT_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown quantization {name!r}; choose from {sorted(QUANT_REGISTRY)}"
        ) from None

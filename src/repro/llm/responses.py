"""Response dataclasses produced by the simulated LLM."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tools.schema import ToolCall


@dataclass(frozen=True)
class TokenUsage:
    """Prompt/completion token counts of one LLM call (for the HW model).

    ``kv_cached_tokens`` marks the prompt prefix already resident from
    the previous chained call.
    """

    prompt_tokens: int
    completion_tokens: int
    kv_cached_tokens: int = 0

    def __post_init__(self):
        if self.prompt_tokens < 0 or self.completion_tokens < 0:
            raise ValueError("token counts must be >= 0")
        if not 0 <= self.kv_cached_tokens <= self.prompt_tokens:
            raise ValueError("kv_cached_tokens out of range")


@dataclass(frozen=True)
class RecommenderOutput:
    """The Tool Recommender's "ideal tool" descriptions for a query."""

    descriptions: tuple[str, ...]
    usage: TokenUsage


@dataclass(frozen=True)
class AgentTurn:
    """One function-calling turn.

    ``call`` is None when the model signalled failure instead of calling
    a tool (the paper's error-message channel that triggers the Level-3
    fallback).  ``correct_tool`` records whether the *gold* tool for this
    step was chosen — the quantity behind the Tool Accuracy metric.
    """

    call: ToolCall | None
    usage: TokenUsage
    correct_tool: bool = False
    signalled_error: bool = False
    tools_seen: tuple[str, ...] = field(default_factory=tuple)

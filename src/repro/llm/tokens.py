"""Token accounting and prompt assembly for the simulated LLM."""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.tools.schema import ToolSpec

#: Average characters per token for English/JSON mixtures (GPT-style BPE).
CHARS_PER_TOKEN = 4.0

#: Fixed prompt-scaffolding budgets.  Function-calling system prompts are
#: long in practice (format contract, JSON examples, failure-signalling
#: instructions — the paper's fallback protocol also lives here).
AGENT_SYSTEM_TOKENS = 620
RECOMMENDER_SYSTEM_TOKENS = 130
HISTORY_TOKENS_PER_STEP = 85


def estimate_tokens(text: str) -> int:
    """Deterministic token estimate for a string (ceil(chars / 4))."""
    if not text:
        return 0
    return int(math.ceil(len(text) / CHARS_PER_TOKEN))


@lru_cache(maxsize=4096)
def tool_prompt_tokens(tool: ToolSpec) -> int:
    """Prompt cost of appending one tool's JSON schema.

    Real chat templates pretty-print tool JSON with indentation and add
    per-tool role glue; the +48 overhead makes the 51-tool BFCL pool
    genuinely require a 16K window, as the paper's setup does.  Cached
    per spec (specs are frozen): prompt layout recomputes this for every
    presented tool on every turn.
    """
    return estimate_tokens(tool.json_text()) + 48


@dataclass(frozen=True)
class PromptPlan:
    """Token layout of one agent call.

    ``tools_included`` is the prefix of the presented tools that fits the
    context window after reserving space for the query, history and a
    generation budget — tools beyond the window are silently dropped,
    exactly as a context-truncating runtime would.
    """

    system_tokens: int
    tool_tokens: int
    query_tokens: int
    history_tokens: int
    tools_included: tuple[str, ...]
    tools_truncated: tuple[str, ...]

    @property
    def prompt_tokens(self) -> int:
        return (self.system_tokens + self.tool_tokens + self.query_tokens
                + self.history_tokens)


def plan_agent_prompt(
    query_text: str,
    tools: list[ToolSpec],
    context_window: int,
    step_index: int = 0,
    generation_reserve: int = 1024,
) -> PromptPlan:
    """Lay out an agent prompt, truncating tools that overflow the window.

    The layout is a pure function of its inputs and is recomputed for
    every turn (including within-step retries on the same tool set), so
    the result is memoized — a serving workload lays out the same
    (query, tools, window) combination many times.
    """
    return _plan_agent_prompt_cached(query_text, tuple(tools), context_window,
                                     step_index, generation_reserve)


@lru_cache(maxsize=8192)
def _plan_agent_prompt_cached(
    query_text: str,
    tools: tuple[ToolSpec, ...],
    context_window: int,
    step_index: int,
    generation_reserve: int,
) -> PromptPlan:
    query_tokens = estimate_tokens(query_text)
    history_tokens = HISTORY_TOKENS_PER_STEP * step_index
    budget = (context_window - generation_reserve - AGENT_SYSTEM_TOKENS
              - query_tokens - history_tokens)
    included: list[str] = []
    truncated: list[str] = []
    tool_tokens = 0
    overflowed = False
    for tool in tools:
        cost = tool_prompt_tokens(tool)
        if not overflowed and tool_tokens + cost <= budget:
            tool_tokens += cost
            included.append(tool.name)
        else:
            # tools are serialized in order: the first overflow cuts off
            # everything after it (suffix truncation, like a real template)
            overflowed = True
            truncated.append(tool.name)
    return PromptPlan(
        system_tokens=AGENT_SYSTEM_TOKENS,
        tool_tokens=tool_tokens,
        query_tokens=query_tokens,
        history_tokens=history_tokens,
        tools_included=tuple(included),
        tools_truncated=tuple(truncated),
    )


def context_pressure(prompt_tokens: int, context_window: int) -> float:
    """Fraction of the window consumed by the prompt, clipped to [0, 1]."""
    if context_window <= 0:
        raise ValueError("context_window must be positive")
    return min(1.0, prompt_tokens / context_window)

"""Tracing demo: watch one request become a span tree.

Observability is declared, not wired: the :class:`~repro.specs.ObsSpec`
inside the :class:`~repro.specs.ServingSpec` turns on span tracing with
an in-memory sink, and everything else — deterministic trace ids, queue/
plan/execute spans, the per-tenant cost ledger, the Prometheus text
exposition — falls out of serving the load.  The demo fires a burst of
concurrent traffic from two tenants, then:

* prints the span tree of one request, retrieved **by trace id** (ids
  are a pure function of ``(tenant, qid, repeat)`` — run the demo twice
  and the ids don't move);
* prints the per-tenant cost-ledger readout (the paper's "less is more"
  savings as a measured per-request quantity);
* prints a slice of ``Gateway.metrics_text()`` — what a Prometheus
  scrape of the future ``/metrics`` endpoint would return.

Run:  PYTHONPATH=src python examples/tracing_demo.py
(set REPRO_EXAMPLE_QUERIES to bound the burst, e.g. in CI)
"""

from __future__ import annotations

import asyncio
import os

from repro import ObsSpec, ServingSpec, SuiteSpec, TenantSpec, open_session


async def main() -> None:
    burst = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "6"))
    spec = ServingSpec(
        tenants=(
            TenantSpec("smart-home", SuiteSpec("edgehome", n_queries=12)),
            TenantSpec("assistant", SuiteSpec("bfcl", n_queries=12)),
        ),
        max_batch_size=8, max_wait_ms=5.0,
        obs=ObsSpec(sink="memory", sample_rate=1.0),
    )
    session = open_session(spec)

    async with session.serve() as gateway:
        home = gateway.sessions.get("smart-home").suite
        bfcl = gateway.sessions.get("assistant").suite
        requests = [("smart-home", query) for query in home.queries[:burst]]
        requests += [("assistant", query) for query in bfcl.queries[:burst]]
        responses = await asyncio.gather(*(
            gateway.submit(tenant, query) for tenant, query in requests
        ))

        sink = gateway.tracer.sink
        trace_ids = sink.trace_ids()
        print(f"{len(responses)} requests -> {len(trace_ids)} traces "
              f"in the memory sink (ids are deterministic: same workload, "
              f"same ids, every run)\n")
        print(sink.render_tree(trace_ids[0]))

        print("\nper-tenant cost ledger:")
        for tenant, stats in sorted(gateway.costs()["by_tenant"].items()):
            print(f"  {tenant:<12} {stats['requests']} requests, "
                  f"{stats['tool_prompt_tokens']} tool prompt tokens "
                  f"(mean {stats['mean_tool_prompt_tokens']:.0f}/request, "
                  f"variant(s) {', '.join(stats['by_variant'])})")

        print("\nPrometheus exposition (metrics_text, first lines):")
        for line in gateway.metrics_text().splitlines()[:8]:
            print(f"  {line}")
        print("  ...")


if __name__ == "__main__":
    asyncio.run(main())

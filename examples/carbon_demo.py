"""Carbon demo: the budget controller degrading under a joule cap and a
grid-intensity duck curve.

One tenant serves waves of smart-home traffic under a
:class:`~repro.specs.BudgetSpec` with a tight rolling energy budget and
the committed day-long grid-intensity trace
(``benchmarks/data/grid_intensity_day.csv``).  Between waves the budget
controller ticks against a simulated clock walking through the day:
over-budget windows step the tenant down the degradation ladder
(full -> compressed -> minimal -> reduced-k -> shed), and the evening
carbon peak steps the simulated Jetson down a power mode
(MAXN -> 30W).  Both effects are visible in the per-wave status lines
— and every served episode stays bitwise identical to running the same
query uncontrolled at that rung.

Run:  PYTHONPATH=src python examples/carbon_demo.py
(set REPRO_EXAMPLE_QUERIES to bound the wave size, e.g. in CI)
"""

from __future__ import annotations

import asyncio
import os
from pathlib import Path

from repro import BudgetSpec, ServingSpec, SuiteSpec, TenantSpec, open_session
from repro.serving import TenantShedError

TRACE = Path(__file__).resolve().parent.parent / "benchmarks" / "data" / \
    "grid_intensity_day.csv"

#: simulated hours the controller ticks at: afternoon (cheap grid),
#: evening peak (steps the power mode down twice), then the overnight
#: trough (two clean ticks per rung step the mode back up)
HOURS = (13.0, 14.0, 20.0, 22.0, 2.0, 3.0, 4.0, 5.0)


async def main() -> None:
    wave = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "6"))
    spec = ServingSpec(
        tenants=(
            TenantSpec("smart-home", SuiteSpec("edgehome", n_queries=12)),
        ),
        max_batch_size=8, max_wait_ms=2.0,
        budget=BudgetSpec(
            energy_budget_j=150.0,          # well under the ~230 J/req
            window_requests=wave,           # full-catalog traffic costs
            settle_requests=wave,
            recovery_ticks=2,
            interval_ms=3_600_000.0,        # dormant loop: we tick manually
            signal="trace", trace_path=str(TRACE),
            intensity_high=450.0,           # evening peak is 524 g/kWh
            intensity_low=400.0,            # overnight trough is ~370
        ),
    )
    session = open_session(spec)

    async with session.serve() as gateway:
        suite = gateway.sessions.get("smart-home").suite
        print(f"{'hour':>5} {'rung':<10} {'source':<8} {'mode':<5} "
              f"{'J/req':>7} {'gCO2/req':>9}  served")
        print("-" * 58)
        for hour in HOURS:
            queries = [suite.queries[i % len(suite.queries)]
                       for i in range(wave)]
            results = await asyncio.gather(
                *(gateway.submit("smart-home", query) for query in queries),
                return_exceptions=True)
            served = 0
            for result in results:
                if isinstance(result, TenantShedError):
                    continue                # a tenant over budget sheds
                if isinstance(result, BaseException):
                    raise result
                served += 1
            gateway.budget.tick(now_s=hour * 3600.0)
            status = gateway.budget_status("smart-home")
            print(f"{hour:>5.0f} {gateway.rung('smart-home'):<10} "
                  f"{gateway.rung_source('smart-home'):<8} "
                  f"{gateway.power_mode():<5} "
                  f"{status['mean_energy_j']:>7.1f} "
                  f"{status['mean_carbon_g'] * 1e3:>8.2f}m  "
                  f"{served}/{wave}")

        metrics = gateway.metrics()
        print(f"\n{metrics['requests_completed']} requests served, "
              f"{metrics['energy_j']:.0f} J / "
              f"{metrics['carbon_g'] * 1e3:.1f} mg CO2 total")
        print(f"budget transitions: {metrics['budget_transitions']} "
              f"{metrics['budget_transitions_detail']}")
        print("\nThe joule cap walks the tenant down the ladder (cheaper "
              "rungs spend fewer tokens, hence fewer joules) while the "
              "evening carbon peak independently steps the simulated board "
              "down a power mode — and back up once the grid is clean for "
              "two consecutive ticks.")


if __name__ == "__main__":
    asyncio.run(main())

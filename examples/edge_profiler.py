"""Edge-device what-if profiler for LLM function calling.

Uses the Jetson AGX Orin hardware model directly to answer deployment
questions the paper's Table II touches: how do context window, tool
count and quantization drive per-query latency, power and memory?

Run:  python examples/edge_profiler.py
"""

from __future__ import annotations

from repro.hardware import InferenceRequest, simulate_inference
from repro.hardware.memory import footprint_gb
from repro.llm import get_quant_spec
from repro.llm.tokens import AGENT_SYSTEM_TOKENS

TOKENS_PER_TOOL = 145  # measured average over both catalogs


def profile_call(n_tools: int, window: int, quant: str, output_tokens: int = 120):
    spec = get_quant_spec(quant)
    prompt = AGENT_SYSTEM_TOKENS + n_tools * TOKENS_PER_TOOL + 40
    trace = simulate_inference(InferenceRequest(
        params_b=8.0,
        bits_per_weight=spec.bits_per_weight,
        prompt_tokens=min(prompt, window - 1024),
        generated_tokens=output_tokens,
        context_window=window,
        jitter_stream=f"profile-{n_tools}-{window}-{quant}",
    ))
    memory = footprint_gb(8.0, spec.bits_per_weight, window)
    return trace, memory


def main() -> None:
    print("8B model on Jetson AGX Orin — one function-calling turn\n")
    header = (f"{'tools':>5} {'window':>7} {'quant':>7} {'prefill':>8} "
              f"{'decode':>7} {'total':>7} {'power':>7} {'memory':>7}")
    print(header)
    print("-" * len(header))
    for quant in ("q4_0", "q4_K_M", "q8_0"):
        for n_tools, window in ((46, 16384), (19, 16384), (19, 8192), (5, 8192)):
            trace, memory = profile_call(n_tools, window, quant)
            print(f"{n_tools:>5} {window:>7} {quant:>7} {trace.prefill_s:>7.1f}s "
                  f"{trace.decode_s:>6.1f}s {trace.total_s:>6.1f}s "
                  f"{trace.avg_power_w:>6.1f}W {memory:>6.1f}G")
        print()

    print("Notes:")
    print(" * decode is memory-bandwidth-bound: q8_0 nearly halves tokens/s")
    print(" * the (46 tools, 16K) row matches the paper's Table II default;")
    print("   (19 tools, 8K) is the Less-is-More operating point")


if __name__ == "__main__":
    main()

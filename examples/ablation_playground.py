"""Interactive knobs: k, confidence threshold and forced Search Levels.

A compact sweep over the three Controller knobs on a small GeoEngine
batch, printing how each changes accuracy, presented-tool counts and
latency — the same trade-offs the ablation benchmarks assert formally.
Every variant is one typed :class:`~repro.specs.AgentSpec`; the session
keeps the offline Search Levels and embedder cache shared across the
whole sweep.

Run:  PYTHONPATH=src python examples/ablation_playground.py
"""

from __future__ import annotations

from repro import AgentSpec, open_session

MODEL = AgentSpec(scheme="lis-k3", model="hermes2-pro-8b", quant="q4_K_M")


def sweep(session, label, spec: AgentSpec):
    summary = session.run(spec).summary
    print(f"  {label:<22} success={summary.success_rate:>6.1%} "
          f"acc={summary.tool_accuracy:>6.1%} tools={summary.mean_tools_presented:>5.1f} "
          f"time={summary.mean_time_s:>5.1f}s levels={summary.level_histogram}")
    return summary


def main() -> None:
    session = open_session("geoengine", n_queries=40)

    print("k sweep (retrieval depth):")
    for k in (1, 3, 5, 8):
        summary = session.run(MODEL.replace(scheme=f"lis-k{k}")).summary
        print(f"  k={k:<20} success={summary.success_rate:>6.1%} "
              f"acc={summary.tool_accuracy:>6.1%} tools={summary.mean_tools_presented:>5.1f} "
              f"time={summary.mean_time_s:>5.1f}s")

    print("\nconfidence threshold (Level-3 fallback cut-off):")
    for threshold in (0.0, 0.3, 0.7):
        sweep(session, f"tau={threshold}",
              MODEL.replace(confidence_threshold=threshold))

    print("\nforced Search Levels:")
    for label, level in (("auto (controller)", None), ("Level 1 only", 1),
                         ("Level 2 only", 2), ("Level 3 only", 3)):
        sweep(session, label, MODEL.replace(force_level=level))

    print("\nTakeaways: k trades recall vs prompt size; a strict threshold "
          "collapses to the slow Level-3 path; on sequential tasks the "
          "cluster level beats individual-tool search (paper Section IV).")


if __name__ == "__main__":
    main()

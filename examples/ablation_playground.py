"""Interactive knobs: k, confidence threshold and forced Search Levels.

A compact sweep over the three Controller knobs on a small GeoEngine
batch, printing how each changes accuracy, presented-tool counts and
latency — the same trade-offs the ablation benchmarks assert formally.

Run:  python examples/ablation_playground.py
"""

from __future__ import annotations

from repro.evaluation.metrics import summarize
from repro.evaluation.runner import ExperimentRunner
from repro.suites import load_suite


def sweep(runner, label, **agent_kwargs):
    agent = runner.make_agent("lis-k3", "hermes2-pro-8b", "q4_K_M", **agent_kwargs)
    summary = summarize([agent.run(q) for q in runner.suite.queries])
    print(f"  {label:<22} success={summary.success_rate:>6.1%} "
          f"acc={summary.tool_accuracy:>6.1%} tools={summary.mean_tools_presented:>5.1f} "
          f"time={summary.mean_time_s:>5.1f}s levels={summary.level_histogram}")
    return summary


def main() -> None:
    runner = ExperimentRunner(load_suite("geoengine", n_queries=40))

    print("k sweep (retrieval depth):")
    for k in (1, 3, 5, 8):
        agent = runner.make_agent(f"lis-k{k}", "hermes2-pro-8b", "q4_K_M")
        summary = summarize([agent.run(q) for q in runner.suite.queries])
        print(f"  k={k:<20} success={summary.success_rate:>6.1%} "
              f"acc={summary.tool_accuracy:>6.1%} tools={summary.mean_tools_presented:>5.1f} "
              f"time={summary.mean_time_s:>5.1f}s")

    print("\nconfidence threshold (Level-3 fallback cut-off):")
    for threshold in (0.0, 0.3, 0.7):
        sweep(runner, f"tau={threshold}", confidence_threshold=threshold)

    print("\nforced Search Levels:")
    for label, level in (("auto (controller)", None), ("Level 1 only", 1),
                         ("Level 2 only", 2), ("Level 3 only", 3)):
        sweep(runner, label, force_level=level)

    print("\nTakeaways: k trades recall vs prompt size; a strict threshold "
          "collapses to the slow Level-3 path; on sequential tasks the "
          "cluster level beats individual-tool search (paper Section IV).")


if __name__ == "__main__":
    main()

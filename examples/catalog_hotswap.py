"""Tool catalogs end to end: variants, diffing, and serving hot-swap.

The catalog is the unit the paper's method operates on — fewer tools,
shorter descriptions, fitted to the edge context budget.  This demo

1. loads a registered catalog and compares its ``full`` / ``compressed``
   / ``minimal`` description variants (total prompt-token cost);
2. diffs the full catalog against its minimal form;
3. serves a tenant on the full catalog, then **hot-swaps** it to the
   compressed variant mid-traffic with ``Gateway.update_catalog`` — the
   plan cache keys carry the catalog's content-hash version, so the
   post-swap requests are re-planned against the new tool pool instead
   of replaying stale cached plans.

Run:  PYTHONPATH=src python examples/catalog_hotswap.py
(set REPRO_EXAMPLE_QUERIES to bound the burst, e.g. in CI)
"""

from __future__ import annotations

import asyncio
import os

from repro import CatalogSpec, ServingSpec, SuiteSpec, TenantSpec, \
    load_catalog, open_session
from repro.llm.tokens import tool_prompt_tokens


def catalog_tokens(catalog) -> int:
    return sum(tool_prompt_tokens(tool) for tool in catalog)


async def main() -> None:
    burst = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "6"))

    # 1. variants -------------------------------------------------------
    full = load_catalog("edgehome")
    print(f"catalog {full.name!r}: {len(full)} tools, "
          f"version {full.version[:12]}")
    for variant in ("full", "compressed", "minimal"):
        shrunk = full.at(variant)
        print(f"  {variant:<10} {catalog_tokens(shrunk):>5} prompt tokens "
              f"(version {shrunk.version[:12]})")

    # 2. diff -----------------------------------------------------------
    minimal = full.at("minimal")
    diff = full.diff(minimal)
    example = diff.changed[0]
    print(f"\nfull -> minimal changes {len(diff.changed)} tools, e.g. "
          f"{example!r}:")
    print(f"  - {full.get(example).description}")
    print(f"  + {minimal.get(example).description}")

    # 3. serving hot-swap ----------------------------------------------
    spec = ServingSpec(
        tenants=(TenantSpec("home", SuiteSpec("edgehome", n_queries=12)),),
        max_batch_size=4, max_wait_ms=2.0, plan_cache_size=64,
    )
    session = open_session(spec)
    async with session.serve() as gateway:
        queries = gateway.sessions.get("home").suite.queries[:burst]
        for query in queries:           # warm the plan cache
            await gateway.submit("home", query)
        replay = [await gateway.submit("home", query) for query in queries]

        version = gateway.update_catalog(
            "home", CatalogSpec("edgehome", variant="compressed"))
        swapped = [await gateway.submit("home", query) for query in queries]

        metrics = gateway.metrics()
        changed = sum(a.episode != b.episode
                      for a, b in zip(replay, swapped))
        print(f"\nhot-swapped tenant 'home' to compressed catalog "
              f"(version {version[:12]})")
        print(f"plan cache: {metrics['plan_cache_hits']} hits / "
              f"{metrics['plan_cache_misses']} misses — the "
              f"{len(queries)} post-swap requests were all re-planned")
        print(f"catalog swaps recorded: {metrics['catalog_swaps']}; "
              f"{changed}/{len(queries)} episodes changed under the "
              f"shorter descriptions")


if __name__ == "__main__":
    asyncio.run(main())

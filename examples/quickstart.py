"""Quickstart: run Less-is-More next to vanilla function calling.

Builds the BFCL-like suite, runs ten queries through the default agent
(all 51 tools, 16K window) and through Less-is-More (recommender +
controller, 8K window), and prints the side-by-side outcome.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_agent, build_less_is_more, load_suite


def main() -> None:
    suite = load_suite("bfcl", n_queries=10)
    print(f"suite: {suite.name} | {suite.n_tools} tools | {len(suite.queries)} queries\n")

    default_agent = build_agent("default", model="llama3.1-8b", quant="q4_K_M",
                                suite=suite)
    lis_agent = build_less_is_more(model="llama3.1-8b", quant="q4_K_M",
                                   suite=suite, k=3)

    header = (f"{'query':<52} {'scheme':<8} {'ok':<3} {'level':<5} "
              f"{'#tools':>6} {'time':>7} {'power':>7}")
    print(header)
    print("-" * len(header))
    for query in suite.queries:
        for agent in (default_agent, lis_agent):
            episode = agent.run(query)
            level = episode.selected_level if episode.selected_level else "-"
            print(f"{query.text[:50]:<52} {episode.scheme:<8} "
                  f"{'yes' if episode.success else 'no':<3} {str(level):<5} "
                  f"{episode.mean_tools_presented:>6.0f} "
                  f"{episode.time_s:>6.1f}s {episode.avg_power_w:>6.1f}W")

    print("\nLess-is-More presents a handful of tools instead of all "
          f"{suite.n_tools}, cutting time and power while lifting accuracy.")


if __name__ == "__main__":
    main()

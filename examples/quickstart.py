"""Quickstart: run Less-is-More next to vanilla function calling.

Opens one declarative session over the BFCL-like suite, builds the
default agent (all 51 tools, 16K window) and Less-is-More (recommender +
controller, 8K window) from typed :class:`~repro.specs.AgentSpec`\\ s,
and prints the side-by-side outcome.  Both agents share the session's
embedder cache and offline Search Levels.

Run:  PYTHONPATH=src python examples/quickstart.py
(set REPRO_EXAMPLE_QUERIES to bound the batch, e.g. in CI)
"""

from __future__ import annotations

import os

from repro import AgentSpec, open_session


def main() -> None:
    n_queries = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "10"))
    session = open_session("bfcl", n_queries=n_queries)
    suite = session.suite
    print(f"suite: {suite.name} | {suite.n_tools} tools | {len(suite.queries)} queries\n")

    default_agent = session.build_agent(AgentSpec(
        scheme="default", model="llama3.1-8b", quant="q4_K_M"))
    lis_agent = session.build_agent(AgentSpec(
        scheme="lis-k3", model="llama3.1-8b", quant="q4_K_M"))

    header = (f"{'query':<52} {'scheme':<8} {'ok':<3} {'level':<5} "
              f"{'#tools':>6} {'time':>7} {'power':>7}")
    print(header)
    print("-" * len(header))
    for query in suite.queries:
        for agent in (default_agent, lis_agent):
            episode = agent.run(query)
            level = episode.selected_level if episode.selected_level else "-"
            print(f"{query.text[:50]:<52} {episode.scheme:<8} "
                  f"{'yes' if episode.success else 'no':<3} {str(level):<5} "
                  f"{episode.mean_tools_presented:>6.0f} "
                  f"{episode.time_s:>6.1f}s {episode.avg_power_w:>6.1f}W")

    print("\nLess-is-More presents a handful of tools instead of all "
          f"{suite.n_tools}, cutting time and power while lifting accuracy.")


if __name__ == "__main__":
    main()

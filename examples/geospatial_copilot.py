"""GeoEngine copilot walk-through on the paper's running example.

Reproduces the paper's Table II scenario end-to-end: the sequential
query "Plot the fmow VQA captions in UK from Fall 2009" executed by
Llama3.1-8b-q4_K_M on the simulated Jetson AGX Orin, showing every stage
of the Less-is-More pipeline — recommender output, controller decision,
chain execution — against the vanilla agent.

Run:  PYTHONPATH=src python examples/geospatial_copilot.py
"""

from __future__ import annotations

from repro import AgentSpec, open_session


def find_vqa_query(suite):
    for query in suite.queries:
        if "VQA captions" in query.text:
            return query
    return suite.queries[0]


def main() -> None:
    session = open_session("geoengine", n_queries=120)
    suite = session.suite
    query = find_vqa_query(suite)
    print(f"query: {query.text}")
    print(f"gold chain: {' -> '.join(query.gold_tools)}\n")

    agent = session.build_agent(AgentSpec(scheme="lis-k3", model="llama3.1-8b",
                                          quant="q4_K_M"))

    # --- stage 1: the Tool Recommender sees the query, zero tools -------
    recommendation = agent.llm.recommend_tools(query, suite.registry)
    print("recommender output (the LLM's 'ideal tools'):")
    for text in recommendation.descriptions:
        print(f"  - {text}")

    # --- stage 2: the Controller arbitrates Search Levels --------------
    plan = agent.plan(query)
    print(f"\ncontroller: Level {plan.level} selected, "
          f"{len(plan.tools)} of {suite.n_tools} tools forwarded, "
          f"window {plan.context_window} tokens")
    print(f"  forwarded: {', '.join(tool.name for tool in plan.tools)}")

    # --- stage 3: chain execution on the edge-device model -------------
    episode = agent.run(query)
    print("\nchain execution (Less-is-More):")
    for step in episode.steps:
        status = "ok" if step.correct_tool and step.execution_ok else "FAIL"
        print(f"  step {step.step_index}: {step.tool_called or '(error)'} [{status}]")
    print(f"  success={episode.success} time={episode.time_s:.1f}s "
          f"power={episode.avg_power_w:.1f}W")

    default = session.build_agent(AgentSpec(
        scheme="default", model="llama3.1-8b", quant="q4_K_M")).run(query)
    print(f"\nvanilla agent (all {suite.n_tools} tools, 16K window): "
          f"success={default.success} time={default.time_s:.1f}s "
          f"power={default.avg_power_w:.1f}W")
    print(f"\npaper Table II anchor: 46 tools/16K: 30s 27W (fail) -> "
          f"19 tools/8K: 17s 22W (ok)")


if __name__ == "__main__":
    main()

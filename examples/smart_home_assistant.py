"""Bring-your-own-tools: Less-is-More on a custom smart-home domain.

The paper positions Less-is-More as "a plug-and-play solution for all
existing state-of-the-art LLMs" — no fine-tuning, no per-domain training.
This example demonstrates exactly that through the plugin registries: a
brand-new tool catalog (a smart-home assistant) and query set are defined
below and registered with ``@register_suite("smart-home")`` — from that
point the suite is addressable by name everywhere a built-in is
(``open_session("smart-home")``, ``python -m repro run --suite
smart-home``, a ``TenantSpec`` in a serving deployment), with the Search
Levels built offline in a few seconds and the same pipeline running
unchanged.

Run:  PYTHONPATH=src python examples/smart_home_assistant.py
"""

from __future__ import annotations

from repro import AgentSpec, open_session, register_suite
from repro.suites.base import BenchmarkSuite, Query
from repro.tools import ToolCall, ToolParameter as P, ToolRegistry, ToolSpec as T


def build_smart_home_registry() -> ToolRegistry:
    """A compact 16-tool smart-home API surface."""
    return ToolRegistry([
        T("turn_on_light", "Turn on the smart light in a room.",
          (P("room", "string", "Room name."),), category="lighting"),
        T("turn_off_light", "Turn off the smart light in a room.",
          (P("room", "string", "Room name."),), category="lighting"),
        T("set_brightness", "Set the brightness level of a room's lights.",
          (P("room", "string", "Room name."),
           P("level", "integer", "Brightness percent 0-100.")), category="lighting"),
        T("set_light_color", "Change the color of the smart bulbs in a room.",
          (P("room", "string", "Room name."),
           P("color", "string", "Color name.")), category="lighting"),
        T("set_thermostat", "Set the target temperature of the thermostat.",
          (P("temperature", "number", "Target temperature in celsius."),),
          category="climate"),
        T("get_indoor_temperature", "Read the current indoor temperature.",
          (), category="climate"),
        T("start_hvac_schedule", "Activate a named heating and cooling schedule.",
          (P("schedule", "string", "Schedule name."),), category="climate"),
        T("lock_door", "Lock a smart door lock.",
          (P("door", "string", "Door name."),), category="security"),
        T("unlock_door", "Unlock a smart door lock.",
          (P("door", "string", "Door name."),), category="security"),
        T("arm_alarm", "Arm the home security alarm system.",
          (P("mode", "string", "Arming mode.", enum=("home", "away")),),
          category="security"),
        T("show_camera_feed", "Display the live feed of a security camera.",
          (P("camera", "string", "Camera location."),), category="security"),
        T("play_music", "Play music on the smart speakers in a room.",
          (P("room", "string", "Room name."),
           P("playlist", "string", "Playlist name.", required=False)),
          category="media"),
        T("stop_music", "Stop music playback everywhere in the house.",
          (), category="media"),
        T("set_speaker_volume", "Set the speaker volume in a room.",
          (P("room", "string", "Room name."),
           P("volume", "integer", "Volume percent 0-100.")), category="media"),
        T("start_vacuum", "Start the robot vacuum cleaning run.",
          (), category="appliance"),
        T("start_coffee_maker", "Brew a pot of coffee with the smart coffee maker.",
          (), category="appliance"),
    ])


@register_suite("smart-home")
def build_smart_home_suite(n_queries: int | None = None,
                           seed: int | None = None) -> BenchmarkSuite:
    """Queries with gold calls, including two-step evening/morning routines.

    The (unused) ``n_queries``/``seed`` parameters satisfy the suite
    registry's builder contract — this catalog is hand-written, not
    generated.
    """
    registry = build_smart_home_registry()

    def q(qid, text, category, *calls, sequential=False):
        return Query(qid=qid, text=text, category=category,
                     gold_calls=tuple(ToolCall(t, a) for t, a in calls),
                     sequential=sequential)

    eval_queries = [
        q("sh-0", "Turn on the lights in the kitchen", "lighting",
          ("turn_on_light", {"room": "kitchen"})),
        q("sh-1", "Dim the living room lights to 30 percent", "lighting",
          ("set_brightness", {"room": "living room", "level": 30})),
        q("sh-2", "Make the bedroom lights a warm orange color", "lighting",
          ("set_light_color", {"room": "bedroom", "color": "orange"})),
        q("sh-3", "Set the temperature to 21 degrees", "climate",
          ("set_thermostat", {"temperature": 21.0})),
        q("sh-4", "How warm is it inside right now?", "climate",
          ("get_indoor_temperature", {})),
        q("sh-5", "Lock the front door", "security",
          ("lock_door", {"door": "front"})),
        q("sh-6", "Show me the driveway camera", "security",
          ("show_camera_feed", {"camera": "driveway"})),
        q("sh-7", "Play some jazz in the study", "media",
          ("play_music", {"room": "study", "playlist": "jazz"})),
        q("sh-8", "Start the vacuum cleaner", "appliance",
          ("start_vacuum", {})),
        q("sh-9",
          "Good night: lock the front door, arm the alarm for home and turn "
          "off the bedroom lights",
          "routine",
          ("lock_door", {"door": "front"}),
          ("arm_alarm", {"mode": "home"}),
          ("turn_off_light", {"room": "bedroom"}),
          sequential=True),
        q("sh-10",
          "Good morning routine: brew coffee, play the morning playlist in "
          "the kitchen and warm the house to 22 degrees",
          "routine",
          ("start_coffee_maker", {}),
          ("play_music", {"room": "kitchen", "playlist": "morning"}),
          ("set_thermostat", {"temperature": 22.0}),
          sequential=True),
    ]
    train_queries = [
        q(f"sh-t{i}", text, cat, call) for i, (text, cat, call) in enumerate([
            ("Switch on the hallway light", "lighting", ("turn_on_light", {"room": "hallway"})),
            ("Set study brightness to 80", "lighting", ("set_brightness", {"room": "study", "level": 80})),
            ("Cool the house to 19 degrees", "climate", ("set_thermostat", {"temperature": 19.0})),
            ("Arm the alarm in away mode", "security", ("arm_alarm", {"mode": "away"})),
            ("Unlock the garage door", "security", ("unlock_door", {"door": "garage"})),
            ("Turn the volume down to 20 in the den", "media", ("set_speaker_volume", {"room": "den", "volume": 20})),
            ("Stop all the music", "media", ("stop_music", {})),
            ("Make me a coffee", "appliance", ("start_coffee_maker", {})),
        ])
    ]
    return BenchmarkSuite("smart-home", registry, eval_queries, train_queries)


def main() -> None:
    # the registered name is a first-class citizen: the session loads the
    # suite through the registry, exactly like "bfcl" or "edgehome"
    session = open_session("smart-home")
    suite = session.suite
    print(f"custom suite: {suite.name} | {suite.n_tools} tools | "
          f"{len(suite.queries)} queries")

    levels = session.levels
    print(f"offline build: {levels.n_clusters} tool clusters, e.g. "
          f"{levels.clusters[0].tools}")

    # a true edge model, described declaratively
    run = session.run(AgentSpec(scheme="lis-k3", model="qwen2-1.5b",
                                quant="q4_K_M"))
    for query, episode in zip(suite.queries, run.episodes):
        print(f"  [{'ok' if episode.success else '--'}] L{episode.selected_level} "
              f"{episode.mean_tools_presented:>4.0f} tools | {query.text[:60]}")
    print(f"\n{run.summary}")
    print("same pipeline, new domain — no fine-tuning, only an offline "
          "embedding pass over the new tool descriptions.")


if __name__ == "__main__":
    main()

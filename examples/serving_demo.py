"""Serving demo: a multi-tenant gateway micro-batching concurrent traffic.

Boots the async serving gateway with two tenants (the smart-home catalog
and the BFCL-like pool), fires a burst of concurrent requests from both,
and prints each response alongside the gateway's telemetry — batch-size
histogram, queue depth and latency percentiles.  Requests that arrive
together ride the same micro-batch: their embeddings and Level-1/Level-2
retrievals are computed by single vectorized kernel calls, yet every
episode is identical to running that query alone.

Run:  python examples/serving_demo.py
"""

from __future__ import annotations

import asyncio

from repro.serving import Gateway, ServingConfig, SessionManager
from repro.suites import load_suite


async def main() -> None:
    sessions = SessionManager()
    home = sessions.register("smart-home", load_suite("edgehome", n_queries=12))
    bfcl = sessions.register("assistant", load_suite("bfcl", n_queries=12))
    config = ServingConfig(max_batch_size=8, max_wait_ms=5.0, queue_capacity=64)

    async with Gateway(sessions, config=config) as gateway:
        # a burst of concurrent traffic from both tenants
        requests = [("smart-home", query) for query in home.suite.queries[:8]]
        requests += [("assistant", query) for query in bfcl.suite.queries[:8]]
        responses = await asyncio.gather(*(
            gateway.submit(tenant, query) for tenant, query in requests
        ))

        header = (f"{'tenant':<12} {'qid':<16} {'ok':<3} {'level':<5} "
                  f"{'batch':>5} {'queued':>8} {'latency':>9}")
        print(header)
        print("-" * len(header))
        for response in responses:
            episode = response.episode
            level = episode.selected_level if episode.selected_level else "-"
            print(f"{response.tenant:<12} {episode.qid:<16} "
                  f"{'yes' if episode.success else 'no':<3} {str(level):<5} "
                  f"{response.batch_size:>5} "
                  f"{response.queued_s * 1e3:>6.1f}ms "
                  f"{response.latency_s * 1e3:>7.1f}ms")

        metrics = gateway.metrics()
        print(f"\nserved {metrics['requests_completed']} requests in "
              f"{metrics['n_batches']} micro-batches "
              f"(mean batch {metrics['mean_batch_size']:.1f}, "
              f"histogram {metrics['batch_size_histogram']})")
        print(f"latency p50/p95/p99: {metrics['latency_p50_ms']:.1f} / "
              f"{metrics['latency_p95_ms']:.1f} / "
              f"{metrics['latency_p99_ms']:.1f} ms")
        print("\nEvery episode above is bitwise identical to running the same "
              "query through the sequential ExperimentRunner — micro-batching "
              "is a pure throughput transform.")


if __name__ == "__main__":
    asyncio.run(main())

"""Serving demo: a multi-tenant gateway micro-batching concurrent traffic.

The whole deployment is one declarative :class:`~repro.specs.ServingSpec`
— two tenants (the smart-home catalog and the BFCL-like pool), the
micro-batcher knobs and a plan cache — opened through
:func:`repro.open_session` and served with ``session.serve()``.  A burst
of concurrent requests from both tenants is fired twice: requests that
arrive together ride the same micro-batch (their embeddings and
Level-1/Level-2 retrievals are computed by single vectorized kernel
calls), and the second pass is answered from the plan cache — yet every
episode is bitwise identical to running that query alone.

Run:  PYTHONPATH=src python examples/serving_demo.py
(set REPRO_EXAMPLE_QUERIES to bound the burst, e.g. in CI)
"""

from __future__ import annotations

import asyncio
import os

from repro import ServingSpec, SuiteSpec, TenantSpec, open_session


async def main() -> None:
    burst = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "8"))
    spec = ServingSpec(
        tenants=(
            TenantSpec("smart-home", SuiteSpec("edgehome", n_queries=12)),
            TenantSpec("assistant", SuiteSpec("bfcl", n_queries=12)),
        ),
        max_batch_size=8, max_wait_ms=5.0, queue_capacity=64,
        plan_cache_size=128,
    )
    session = open_session(spec)

    async with session.serve() as gateway:
        # a burst of concurrent traffic from both tenants, sent twice:
        # the second round hits the plan cache
        home = gateway.sessions.get("smart-home").suite
        bfcl = gateway.sessions.get("assistant").suite
        requests = [("smart-home", query) for query in home.queries[:burst]]
        requests += [("assistant", query) for query in bfcl.queries[:burst]]
        for _ in range(2):
            responses = await asyncio.gather(*(
                gateway.submit(tenant, query) for tenant, query in requests
            ))

        header = (f"{'tenant':<12} {'qid':<16} {'ok':<3} {'level':<5} "
                  f"{'batch':>5} {'queued':>8} {'latency':>9}")
        print(header)
        print("-" * len(header))
        for response in responses:
            episode = response.episode
            level = episode.selected_level if episode.selected_level else "-"
            print(f"{response.tenant:<12} {episode.qid:<16} "
                  f"{'yes' if episode.success else 'no':<3} {str(level):<5} "
                  f"{response.batch_size:>5} "
                  f"{response.queued_s * 1e3:>6.1f}ms "
                  f"{response.latency_s * 1e3:>7.1f}ms")

        metrics = gateway.metrics()
        print(f"\nserved {metrics['requests_completed']} requests in "
              f"{metrics['n_batches']} micro-batches "
              f"(mean batch {metrics['mean_batch_size']:.1f}, "
              f"histogram {metrics['batch_size_histogram']})")
        print(f"latency p50/p95/p99: {metrics['latency_p50_ms']:.1f} / "
              f"{metrics['latency_p95_ms']:.1f} / "
              f"{metrics['latency_p99_ms']:.1f} ms")
        print(f"plan cache: {metrics['plan_cache_hits']} hits / "
              f"{metrics['plan_cache_misses']} misses "
              f"(hit rate {metrics['plan_cache_hit_rate']:.0%})")
        print("\nEvery episode above is bitwise identical to running the same "
              "query through the sequential ExperimentRunner — micro-batching "
              "and plan memoization are pure throughput transforms.")


if __name__ == "__main__":
    asyncio.run(main())

"""Table II: context window x tool count for one GeoEngine query.

Paper measurement (Llama3.1-8b-q4_K_M on the AGX Orin, query "Plot the
fmow VQA captions in UK from Fall 2009"):

    window  #tools  success  time   power
    16K     46      no       30 s   27 W
    16K     19      yes      20 s   26 W
    8K      19      yes      17 s   22 W
    max drop                 -43%   -19%

We sweep the same three configurations over many seeded instantiations of
the paper's query template and check the two headline effects: fewer
tools lift success, and the (fewer tools, smaller window) pair cuts both
time and power, with drops in the paper's ballpark.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import attach_rows
from repro.baselines import DefaultAgent
from repro.llm import SimulatedLLM
from repro.suites.base import BenchmarkSuite
from repro.suites.geoengine import generate_geoengine_queries
from repro.suites.geoengine_catalog import build_geoengine_registry
from repro.tools import ToolRegistry


def _vqa_queries(n: int = 24):
    """Seeded instantiations of the paper's example template."""
    queries = generate_geoengine_queries(400, seed=7, split="table2")
    vqa = [q for q in queries if "VQA captions" in q.text]
    return vqa[:n]


def _reduced_registry(full: ToolRegistry, queries, size: int = 19) -> ToolRegistry:
    """A 19-tool subset covering the gold chains (a Level-2-style union)."""
    keep: dict[str, None] = {}
    for query in queries:
        for tool in query.gold_tools:
            keep.setdefault(tool, None)
    for tool in full:
        if len(keep) >= size:
            break
        keep.setdefault(tool.name, None)
    return ToolRegistry(full.subset(list(keep)[:size]))


def _measure(queries, registry, window):
    suite = BenchmarkSuite("table2", registry, list(queries), sequential=True)
    llm = SimulatedLLM.from_registry("llama3.1-8b", "q4_K_M")
    agent = DefaultAgent(llm=llm, suite=suite, context_window=window)
    episodes = [agent.run(query) for query in queries]
    return {
        "success": float(np.mean([episode.success for episode in episodes])),
        "time_s": float(np.mean([episode.time_s for episode in episodes])),
        "power_w": float(sum(e.energy_j for e in episodes)
                         / sum(e.time_s for e in episodes)),
    }


@pytest.mark.benchmark(group="table2")
def test_table2_context_and_toolcount(benchmark):
    full = build_geoengine_registry()
    queries = _vqa_queries()
    reduced = _reduced_registry(full, queries)
    assert len(reduced) == 19  # the paper's reduced pool size

    def run_grid():
        return {
            "16K/46": _measure(queries, full, 16384),
            "16K/19": _measure(queries, reduced, 16384),
            "8K/19": _measure(queries, reduced, 8192),
        }

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    print("\nTable II — 'Plot the fmow VQA captions in UK from Fall 2009'")
    print(f"{'config':<8} {'success':>8} {'time (s)':>9} {'power (W)':>10}   paper")
    paper = {"16K/46": ("no", 30, 27), "16K/19": ("yes", 20, 26), "8K/19": ("yes", 17, 22)}
    for config, row in grid.items():
        ref = paper[config]
        print(f"{config:<8} {row['success']:>8.1%} {row['time_s']:>9.2f} "
              f"{row['power_w']:>10.2f}   ({ref[0]}, {ref[1]} s, {ref[2]} W)")

    time_drop = 1.0 - grid["8K/19"]["time_s"] / grid["16K/46"]["time_s"]
    power_drop = 1.0 - grid["8K/19"]["power_w"] / grid["16K/46"]["power_w"]
    print(f"max drop: time -{time_drop:.0%} (paper -43%), "
          f"power -{power_drop:.0%} (paper -19%)")
    attach_rows(benchmark, {
        "time_drop": round(time_drop, 3), "power_drop": round(power_drop, 3),
        **{f"{cfg}_{key}": round(val, 3) for cfg, row in grid.items()
           for key, val in row.items()},
    })

    # fewer tools lift success (the motivating observation)
    assert grid["16K/19"]["success"] > grid["16K/46"]["success"]
    # time falls monotonically across the three configs
    assert grid["16K/46"]["time_s"] > grid["16K/19"]["time_s"] > grid["8K/19"]["time_s"]
    # power falls when the window shrinks
    assert grid["8K/19"]["power_w"] < grid["16K/19"]["power_w"]
    # headline drops in the paper's ballpark (43% / 19%)
    assert 0.25 <= time_drop <= 0.60
    assert 0.08 <= power_drop <= 0.30

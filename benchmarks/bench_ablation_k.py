"""Ablation A2: retrieval depth k and the confidence threshold.

The paper evaluates k in {3, 5}.  This ablation extends the sweep to
k in {1, 2, 3, 5, 8} and sweeps the Level-3 confidence threshold,
exposing the trade-off the Controller navigates: tiny k starves recall
on multi-tool tasks, huge k re-inflates the prompt (eroding the time
win); an over-strict threshold collapses everything to Level 3.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_rows, bench_queries
from repro.evaluation.runner import ExperimentRunner
from repro.suites import load_suite

K_VALUES = (1, 2, 3, 5, 8)


@pytest.mark.benchmark(group="ablation-k")
def test_k_sweep_geoengine(benchmark):
    runner = ExperimentRunner(load_suite("geoengine", n_queries=bench_queries(40)))

    def sweep():
        return {k: runner.run(f"lis-k{k}", "hermes2-pro-8b", "q4_K_M") for k in K_VALUES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nk sweep (LiS, hermes2-pro-8b-q4_K_M, GeoEngine)")
    for k, run in results.items():
        s = run.summary
        print(f"  k={k}: success={s.success_rate:.1%} acc={s.tool_accuracy:.1%} "
              f"tools={s.mean_tools_presented:.1f} time={s.mean_time_s:.1f}s")
    attach_rows(benchmark, {f"k{k}_success": round(run.summary.success_rate, 4)
                            for k, run in results.items()})

    # recall starvation at k=1 on sequential chains
    assert results[1].summary.success_rate < results[5].summary.success_rate
    # presented-tool count grows with k; time grows along with it
    assert (results[8].summary.mean_tools_presented
            > results[1].summary.mean_tools_presented)
    assert results[8].summary.mean_time_s > results[1].summary.mean_time_s


@pytest.mark.benchmark(group="ablation-k")
def test_threshold_sweep_bfcl(benchmark):
    runner = ExperimentRunner(load_suite("bfcl", n_queries=bench_queries(40)))

    def sweep():
        results = {}
        for threshold in (0.0, 0.3, 0.7, 1.01):
            agent = runner.make_agent("lis-k3", "llama3.1-8b", "q4_K_M",
                                      confidence_threshold=threshold)
            episodes = [agent.run(q) for q in runner.suite.queries]
            level3 = sum(e.selected_level == 3 for e in episodes) / len(episodes)
            results[threshold] = level3
        return results

    level3_share = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nconfidence-threshold sweep (share of Level-3 fallbacks)")
    for threshold, share in level3_share.items():
        print(f"  tau={threshold:.2f}: level3={share:.1%}")
    attach_rows(benchmark, {f"tau{t}": round(s, 4) for t, s in level3_share.items()})

    assert level3_share[0.0] == 0.0
    assert level3_share[1.01] == 1.0  # impossible threshold -> all Level 3
    shares = list(level3_share.values())
    assert shares == sorted(shares)  # monotone in the threshold

"""Figure 2: the full BFCL grid — 6 models x 4 quants x 4 schemes.

For every model and quantization variant the paper compares default
execution (all 51 tools, 16K window) against Gorilla and Less-is-More at
k=3 and k=5 (8K window) on four metrics: Success Rate, Tool Accuracy,
Normalized Execution Time and Normalized Power.

Shape requirements asserted per model (paper Section IV narratives):

* LiS improves success rate and tool accuracy over default for every
  model (Mistral is allowed to tie — the paper reports no gain there);
* LiS cuts execution time by at least 30% (paper: 48-80%);
* LiS cuts power by at least 10% (paper: 18-45%);
* Gorilla lands between default and LiS in accuracy for every model
  except Mistral, where it is the worst in success rate.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FIGURE2_MODELS, FIGURE_QUANTS, FIGURE_SCHEMES, attach_rows
from repro.evaluation.reporting import figure_series, render_series


@pytest.mark.benchmark(group="figure2")
@pytest.mark.parametrize("model", FIGURE2_MODELS)
def test_figure2_model_panel(benchmark, bfcl_runner, model):
    def run_panel():
        return bfcl_runner.run_grid(FIGURE_SCHEMES, [model], FIGURE_QUANTS)

    grid = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    rows = figure_series(grid, model, FIGURE_QUANTS, FIGURE_SCHEMES)
    print("\n" + render_series(rows, title=f"Figure 2 — {model} (BFCL)"))

    for quant in FIGURE_QUANTS:
        default = rows[f"{model}-{quant} default"]
        lis3 = rows[f"{model}-{quant} lis-k3"]
        lis5 = rows[f"{model}-{quant} lis-k5"]
        gorilla = rows[f"{model}-{quant} gorilla"]
        best_lis = max(lis3.success_rate, lis5.success_rate)

        if model == "mistral-8b":
            # paper: no success/accuracy gain for Mistral, Gorilla worst
            assert best_lis >= default.success_rate - 0.05, quant
            assert gorilla.success_rate < default.success_rate + 0.02, quant
        else:
            assert best_lis > default.success_rate, quant
            assert max(lis3.tool_accuracy, lis5.tool_accuracy) > default.tool_accuracy, quant

        for lis in (lis3, lis5):
            assert lis.normalized_time < 0.70, (quant, lis.normalized_time)
            assert lis.normalized_power < 0.90, (quant, lis.normalized_power)

    attach_rows(benchmark, {
        label: {
            "success": round(row.success_rate, 4),
            "accuracy": round(row.tool_accuracy, 4),
            "norm_time": round(row.normalized_time, 4),
            "norm_power": round(row.normalized_power, 4),
        }
        for label, row in rows.items()
    })

"""Figure 3: the GeoEngine grid — sequential function calling.

The paper evaluates the same scheme grid on GeoEngine, excluding Phi3 and
Qwen2-1.5b whose default success collapses to ~10%.  Shape requirements:

* LiS (best k) matches or beats default success for every kept model,
  with clearly higher levels than Gorilla;
* Gorilla fails to improve success ("it only checks tool similarity,
  while GeoEngine requires sequential function calls");
* time/power cuts are smaller than on BFCL (paper: 15-40% time, 6-13%
  power) — LiS must stay within [0.55, 1.10] normalized time;
* the two excluded models indeed collapse (<20% default success).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FIGURE3_MODELS, FIGURE_QUANTS, FIGURE_SCHEMES, attach_rows
from repro.evaluation.reporting import figure_series, render_series


@pytest.mark.benchmark(group="figure3")
@pytest.mark.parametrize("model", FIGURE3_MODELS)
def test_figure3_model_panel(benchmark, geo_runner, model):
    def run_panel():
        return geo_runner.run_grid(FIGURE_SCHEMES, [model], FIGURE_QUANTS)

    grid = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    rows = figure_series(grid, model, FIGURE_QUANTS, FIGURE_SCHEMES)
    print("\n" + render_series(rows, title=f"Figure 3 — {model} (GeoEngine)"))

    for quant in FIGURE_QUANTS:
        default = rows[f"{model}-{quant} default"]
        gorilla = rows[f"{model}-{quant} gorilla"]
        lis_best = max(rows[f"{model}-{quant} lis-k3"].success_rate,
                       rows[f"{model}-{quant} lis-k5"].success_rate)

        # LiS holds or improves success; Gorilla clearly does not
        assert lis_best >= default.success_rate - 0.07, quant
        assert gorilla.success_rate < default.success_rate, quant
        assert gorilla.success_rate < lis_best, quant

        for key in ("lis-k3", "lis-k5"):
            lis = rows[f"{model}-{quant} {key}"]
            assert 0.50 <= lis.normalized_time <= 1.10, (quant, key, lis.normalized_time)
            assert lis.normalized_power <= 0.95, (quant, key)

    attach_rows(benchmark, {
        label: {
            "success": round(row.success_rate, 4),
            "accuracy": round(row.tool_accuracy, 4),
            "norm_time": round(row.normalized_time, 4),
            "norm_power": round(row.normalized_power, 4),
        }
        for label, row in rows.items()
    })


@pytest.mark.benchmark(group="figure3")
def test_figure3_excluded_models_collapse(benchmark, geo_runner):
    """Phi3 and Qwen2-1.5b default success ~10% (the paper's exclusion)."""
    def run_defaults():
        return {model: geo_runner.run("default", model, "q4_K_M")
                for model in ("phi3-8b", "qwen2-1.5b")}

    runs = benchmark.pedantic(run_defaults, rounds=1, iterations=1)
    for model, run in runs.items():
        rate = run.summary.success_rate
        print(f"\n{model} GeoEngine default success: {rate:.1%} (paper ~10%)")
        assert rate < 0.20, model
        attach_rows(benchmark, {f"{model}_default_success": round(rate, 4)})

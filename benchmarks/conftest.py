"""Shared fixtures and helpers for the reproduction benchmarks.

Every table and figure of the paper has one ``bench_*.py`` file here.
Batch size defaults to a CI-friendly subset; set ``REPRO_BENCH_QUERIES=230``
to regenerate with the paper's full mini-batch size (Section IV).

Run everything with::

    pytest benchmarks/ --benchmark-only

The reproduced rows are printed to stdout (run with ``-s`` to stream) and
attached to each benchmark's ``extra_info`` so they land in pytest-benchmark
JSON exports.
"""

from __future__ import annotations

import importlib.util
import os

import pytest

from repro.evaluation.runner import ExperimentRunner
from repro.suites import load_suite

#: Every bench file uses the ``benchmark`` fixture, which only exists
#: when the pytest-benchmark plugin is installed.  On a bare install the
#: stub below makes every benchmark collect and *skip* cleanly, so
#: ``python -m pytest benchmarks`` exits green instead of erroring on
#: fixture lookup.
#: REPRO_FORCE_NO_BENCHMARK=1 exercises the bare-install path on a
#: machine that has the plugin (pair it with ``-p no:benchmark``).
HAVE_PYTEST_BENCHMARK = (
    importlib.util.find_spec("pytest_benchmark") is not None
    and not os.environ.get("REPRO_FORCE_NO_BENCHMARK")
)

if not HAVE_PYTEST_BENCHMARK:
    @pytest.fixture
    def benchmark():
        pytest.skip("pytest-benchmark is not installed "
                    "(pip install pytest-benchmark to run the benchmarks)")

    def pytest_configure(config):
        # the plugin normally registers its own mark; without it the
        # @pytest.mark.benchmark decorations would warn as unknown
        config.addinivalue_line(
            "markers", "benchmark(...): pytest-benchmark grouping mark "
            "(stubbed while the plugin is absent)")


def bench_queries(default: int = 60) -> int:
    """Per-cell query count (env-overridable up to the paper's 230)."""
    return int(os.environ.get("REPRO_BENCH_QUERIES", default))


#: All models evaluated in Figure 2 (BFCL).
FIGURE2_MODELS = ["hermes2-pro-8b", "llama3.1-8b", "mistral-8b", "phi3-8b",
                  "qwen2-1.5b", "qwen2-7b"]
#: Models kept in Figure 3 (GeoEngine) — Phi3 and Qwen2-1.5b are excluded
#: by the paper for ~10% default success.
FIGURE3_MODELS = ["hermes2-pro-8b", "llama3.1-8b", "mistral-8b", "qwen2-7b"]
#: Quantization variants per model in Figures 2/3.
FIGURE_QUANTS = ["q4_0", "q4_1", "q4_K_M", "q8_0"]
#: Evaluated schemes: default execution, Gorilla, LiS at k=3 and k=5.
FIGURE_SCHEMES = ["default", "gorilla", "lis-k3", "lis-k5"]


@pytest.fixture(scope="session")
def bfcl_runner():
    suite = load_suite("bfcl", n_queries=bench_queries())
    return ExperimentRunner(suite)


@pytest.fixture(scope="session")
def geo_runner():
    suite = load_suite("geoengine", n_queries=bench_queries())
    return ExperimentRunner(suite)


def attach_rows(benchmark, rows: dict) -> None:
    """Store reproduced rows in the benchmark record (JSON-exportable)."""
    for key, value in rows.items():
        benchmark.extra_info[key] = value

"""Generalization check: the pipeline on a third, unseen domain.

The paper's conclusion claims easy adaptation "to new tools" without
fine-tuning.  The ``edgehome`` suite (32 mixed smart-home/assistant/media
tools, single calls plus short routines) was never part of calibration;
this bench verifies the Less-is-More advantages transfer to it unchanged.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_rows, bench_queries
from repro.evaluation.runner import ExperimentRunner
from repro.suites import load_suite


@pytest.mark.benchmark(group="generalization")
def test_edgehome_transfer(benchmark):
    runner = ExperimentRunner(load_suite("edgehome", n_queries=bench_queries()))

    def run_pair():
        return {
            "default": runner.run("default", "qwen2-7b", "q4_K_M"),
            "gorilla": runner.run("gorilla", "qwen2-7b", "q4_K_M"),
            "lis-k3": runner.run("lis-k3", "qwen2-7b", "q4_K_M"),
        }

    runs = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    default = runs["default"].summary
    print("\nedgehome generalization (qwen2-7b-q4_K_M)")
    for scheme, run in runs.items():
        summary = run.summary
        print(f"  {scheme:<8} success={summary.success_rate:.1%} "
              f"acc={summary.tool_accuracy:.1%} tools={summary.mean_tools_presented:.1f} "
              f"time={summary.mean_time_s:.1f}s power={summary.avg_power_w:.1f}W")
        attach_rows(benchmark, {f"{scheme}_success": round(summary.success_rate, 4)})

    lis = runs["lis-k3"].summary
    # the paper's advantages transfer: better outcomes, fewer tools, less time
    assert lis.success_rate > default.success_rate
    assert lis.tool_accuracy > default.tool_accuracy
    assert lis.mean_time_s < 0.65 * default.mean_time_s
    assert lis.avg_power_w < default.avg_power_w
    assert lis.mean_tools_presented < 0.5 * default.mean_tools_presented

"""Ablation A5: nvpmodel power caps (MAXN / 30 W / 15 W).

The paper measures on an uncapped (MAXN) AGX Orin.  Real deployments
often run capped; this ablation re-runs the default-vs-LiS comparison
under each nvpmodel preset and checks that the Less-is-More speed and
power advantages survive the cap — i.e. the paper's conclusion is not an
artifact of the MAXN operating point.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_rows, bench_queries
from repro.baselines import DefaultAgent
from repro.core.levels import SearchLevelBuilder
from repro.core.pipeline import LessIsMoreAgent
from repro.evaluation.metrics import summarize
from repro.hardware.power_modes import orin_in_mode
from repro.llm import SimulatedLLM
from repro.suites import load_suite

MODES = ("MAXN", "30W", "15W")


@pytest.mark.benchmark(group="ablation-power-modes")
def test_lis_advantage_survives_power_caps(benchmark):
    suite = load_suite("bfcl", n_queries=bench_queries(40))
    levels = SearchLevelBuilder().build(suite)
    llm = SimulatedLLM.from_registry("llama3.1-8b", "q4_K_M")

    def sweep():
        rows = {}
        for mode in MODES:
            device = orin_in_mode(mode)
            default = DefaultAgent(llm=llm, suite=suite, device=device)
            lis = LessIsMoreAgent(llm=llm, suite=suite, levels=levels, k=3,
                                  device=device)
            rows[mode] = (
                summarize([default.run(q) for q in suite.queries]),
                summarize([lis.run(q) for q in suite.queries]),
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\npower-mode ablation (llama3.1-8b-q4_K_M, BFCL)")
    for mode, (default, lis) in rows.items():
        ratio_t = lis.mean_time_s / default.mean_time_s
        ratio_p = lis.avg_power_w / default.avg_power_w
        print(f"  {mode:>5}: default {default.mean_time_s:5.1f}s/"
              f"{default.avg_power_w:4.1f}W | LiS {lis.mean_time_s:5.1f}s/"
              f"{lis.avg_power_w:4.1f}W | x{ratio_t:.2f} time x{ratio_p:.2f} power")
        attach_rows(benchmark, {f"{mode}_time_ratio": round(ratio_t, 3),
                                f"{mode}_power_ratio": round(ratio_p, 3)})

    for mode, (default, lis) in rows.items():
        # LiS keeps a >= 40% time cut and a power cut under every cap
        assert lis.mean_time_s < 0.6 * default.mean_time_s, mode
        assert lis.avg_power_w < default.avg_power_w, mode
        # accuracy is device-independent: the cap must not change outcomes
        assert lis.success_rate == rows["MAXN"][1].success_rate

    # absolute latency rises as the cap tightens (clocks scale down)
    assert (rows["15W"][1].mean_time_s > rows["30W"][1].mean_time_s
            > rows["MAXN"][1].mean_time_s)

"""Ablation A1: context-window sweep for the default agent.

Paper Section IV: "For the default models, we also tested context windows
larger than 16k.  While there was no significant improvement in success
rate, execution time increased noticeably, which is why we chose the 16k
value."  We sweep 8K/16K/32K; at 8K the 51-tool BFCL prompt overflows and
truncates tools, so success craters — which is why the default scheme
*needs* 16K in the first place.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_rows, bench_queries
from repro.baselines import DefaultAgent
from repro.evaluation.metrics import summarize
from repro.llm import SimulatedLLM
from repro.suites import load_suite

WINDOWS = (8192, 16384, 32768)


@pytest.mark.benchmark(group="ablation-context")
def test_context_window_sweep(benchmark):
    suite = load_suite("bfcl", n_queries=bench_queries())
    llm = SimulatedLLM.from_registry("llama3.1-8b", "q4_K_M")

    def sweep():
        results = {}
        for window in WINDOWS:
            agent = DefaultAgent(llm=llm, suite=suite, context_window=window)
            results[window] = summarize([agent.run(q) for q in suite.queries])
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nContext-window ablation (default agent, llama3.1-8b-q4_K_M, BFCL)")
    for window, summary in results.items():
        print(f"  {window:>6} tokens: success={summary.success_rate:.1%} "
              f"time={summary.mean_time_s:.2f}s power={summary.avg_power_w:.2f}W")
    attach_rows(benchmark, {
        f"w{window}_success": round(summary.success_rate, 4)
        for window, summary in results.items()
    })

    # 8K truncates the 51-tool prompt -> default cannot shrink its window
    assert results[8192].success_rate < 0.8 * results[16384].success_rate
    # beyond 16K: no meaningful success gain, but noticeably slower
    assert results[32768].success_rate < results[16384].success_rate + 0.05
    assert results[32768].mean_time_s > results[16384].mean_time_s * 1.15

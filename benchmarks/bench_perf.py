"""Perf benchmarks for the vectorized retrieval stack.

Unlike the ``bench_table*``/``bench_figure*`` files (which reproduce the
paper's numbers), this file tracks *our* implementation speed: batched
encode throughput, multi-query search latency and episode throughput.
``scripts/bench_perf.py`` exports the same measurements to the committed
``BENCH_perf.json`` baseline; this pytest-benchmark variant keeps the
speedup guarantees asserted in CI runs of the benchmark suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import attach_rows
from repro.embedding import SentenceEmbedder
from repro.embedding.cache import CachedEmbedder
from repro.evaluation.runner import ExperimentRunner
from repro.suites import load_suite
from repro.vectorstore import FlatIndex


@pytest.fixture(scope="module")
def edgehome_corpus():
    return load_suite("edgehome").registry.descriptions()


@pytest.mark.benchmark(group="perf-encode")
def test_batched_encode_speedup(benchmark, edgehome_corpus):
    """Batched encode must beat the historical loop by >= 5x, bit-for-bit."""
    embedder = SentenceEmbedder()
    embedder.encode(edgehome_corpus)  # warm directions for both paths

    batched = benchmark(embedder.encode, edgehome_corpus)

    # numerical contract: batched == stacked one-at-a-time (bitwise) and
    # == the historical accumulation loop (float precision)
    singles = np.stack([embedder.encode_one(text) for text in edgehome_corpus])
    np.testing.assert_array_equal(batched, singles)
    reference = np.stack([embedder.encode_one_reference(text)
                          for text in edgehome_corpus])
    np.testing.assert_allclose(batched, reference, rtol=1e-12, atol=1e-13)

    # speed contract: median-of-repeats on both paths, same machine
    import time

    def median_s(fn, repeats=15):
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        samples.sort()
        return samples[len(samples) // 2]

    batched_s = median_s(lambda: embedder.encode(edgehome_corpus))
    loop_s = median_s(
        lambda: [embedder.encode_one_reference(text) for text in edgehome_corpus],
        repeats=7,
    )
    speedup = loop_s / batched_s
    attach_rows(benchmark, {
        "batched_texts_per_s": len(edgehome_corpus) / batched_s,
        "loop_texts_per_s": len(edgehome_corpus) / loop_s,
        "speedup": speedup,
    })
    print(f"\nencode speedup: x{speedup:.1f} "
          f"({len(edgehome_corpus) / batched_s:.0f} vs "
          f"{len(edgehome_corpus) / loop_s:.0f} texts/s)")
    assert speedup >= 5.0


@pytest.mark.benchmark(group="perf-search")
def test_batched_search_beats_per_query(benchmark, edgehome_corpus):
    embedder = SentenceEmbedder()
    index = FlatIndex(dim=embedder.dim, metric="cosine")
    index.add(embedder.encode(edgehome_corpus))
    queries = embedder.encode([f"{text} now please" for text in edgehome_corpus])

    batched = benchmark(index.search, queries, 3)

    per_query = [index.search_one(query, 3) for query in queries]
    for got, want in zip(batched, per_query):
        np.testing.assert_array_equal(got.ids, want.ids)

    import time
    start = time.perf_counter()
    for _ in range(50):
        index.search(queries, 3)
    batched_s = (time.perf_counter() - start) / 50
    start = time.perf_counter()
    for _ in range(10):
        for query in queries:
            index.search_one(query, 3)
    per_query_s = (time.perf_counter() - start) / 10
    attach_rows(benchmark, {"batch_speedup": per_query_s / batched_s})
    assert per_query_s > batched_s


@pytest.mark.benchmark(group="perf-episodes")
def test_episode_throughput(benchmark):
    suite = load_suite("edgehome", n_queries=12)
    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    agent = runner.make_agent("lis-k3", "hermes2-pro-8b", "q4_K_M")
    agent.run(suite.queries[0])  # warm caches

    def episodes():
        return [agent.run(query) for query in suite.queries]

    results = benchmark(episodes)
    assert all(episode.steps for episode in results)
    attach_rows(benchmark, {"n_episodes": len(results)})


@pytest.mark.benchmark(group="perf-grid")
def test_process_grid_bitwise_equal_and_scales(benchmark):
    """Process-pool grids must match sequential bitwise; >=2x with real cores.

    The equivalence half always runs.  The speedup half is gated on the
    machine actually having 4+ CPUs — worker processes cannot beat the
    GIL on a single core, they can only pay pickling overhead there.
    """
    import os
    import time

    suite = load_suite("edgehome", n_queries=12)
    schemes, models = ["default", "gorilla", "lis-k3"], ["hermes2-pro-8b"]
    quants = ["q4_K_M", "q8_0"]

    def grid(backend, workers):
        runner = ExperimentRunner(suite, embedder=CachedEmbedder())
        start = time.perf_counter()
        results = runner.run_grid(schemes, models, quants,
                                  backend=backend, max_workers=workers)
        return results, time.perf_counter() - start

    sequential, sequential_s = grid("sequential", 1)
    workers = min(len(sequential), max(2, os.cpu_count() or 1))
    process, process_s = benchmark.pedantic(
        grid, args=("process", workers), rounds=1, iterations=1)

    assert set(process) == set(sequential)
    for cell, run in sequential.items():
        assert process[cell].episodes == run.episodes, cell

    speedup = sequential_s / process_s
    attach_rows(benchmark, {"process_workers": workers,
                            "process_speedup": speedup})
    print(f"\nprocess grid: x{speedup:.2f} at {workers} workers "
          f"({sequential_s:.2f}s sequential, {process_s:.2f}s process)")
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"process grid reached only {speedup:.2f}x at {workers} workers "
            f"on a {os.cpu_count()}-CPU machine (required >= 2x)")


@pytest.mark.benchmark(group="perf-serving")
def test_micro_batched_serving_beats_sequential(benchmark):
    """The serving gateway's acceptance bar: >= 2x at concurrency 32."""
    from repro.serving import ServingConfig, run_load

    suite = load_suite("edgehome")
    suites = {"home": suite}

    def measure(config):
        embedder = CachedEmbedder()
        run_load(suites, config, n_requests=len(suite.queries),
                 concurrency=8, embedder=embedder)  # warmup cycle
        return run_load(suites, config, n_requests=384, concurrency=32,
                        embedder=embedder)

    batched_config = ServingConfig(max_batch_size=32, max_wait_ms=2.0)
    sequential_config = ServingConfig(max_batch_size=1, max_wait_ms=0.0)

    batched = benchmark(measure, batched_config)
    best_speedup = 0.0
    for _ in range(3):  # shared machines jitter; keep the best trial
        sequential = measure(sequential_config)
        best_speedup = max(best_speedup,
                           batched.throughput_rps / sequential.throughput_rps)
        if best_speedup >= 2.0:
            break
    attach_rows(benchmark, {
        "batched_req_per_s": batched.throughput_rps,
        "speedup_vs_sequential": best_speedup,
        "batched_p95_ms": batched.latency_p95_ms,
    })
    print(f"\nserving speedup: x{best_speedup:.2f} "
          f"({batched.throughput_rps:.0f} req/s micro-batched, "
          f"p95 {batched.latency_p95_ms:.1f} ms)")
    assert best_speedup >= 2.0

"""Section IV level-selection observation.

"Interestingly, we found that in BFCL Search Level 1 yields higher
tool-matching scores, whereas for GeoEngine it is Search Level 2 with
better tool selection."

This bench records the controller's level histogram per suite and checks
the cross-suite shape: Level 1 dominates BFCL; the Level-2 share on
GeoEngine far exceeds the Level-2 share on BFCL.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_rows


def _level_shares(runner, model="hermes2-pro-8b", quant="q4_K_M", scheme="lis-k3"):
    run = runner.run(scheme, model, quant)
    histogram = run.summary.level_histogram
    total = sum(histogram.values())
    return {level: histogram.get(level, 0) / total for level in (1, 2, 3)}


@pytest.mark.benchmark(group="level-selection")
def test_level_selection_shapes(benchmark, bfcl_runner, geo_runner):
    def run_both():
        return _level_shares(bfcl_runner), _level_shares(geo_runner)

    bfcl_shares, geo_shares = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nBFCL level shares:      L1={bfcl_shares[1]:.1%} "
          f"L2={bfcl_shares[2]:.1%} L3={bfcl_shares[3]:.1%}")
    print(f"GeoEngine level shares: L1={geo_shares[1]:.1%} "
          f"L2={geo_shares[2]:.1%} L3={geo_shares[3]:.1%}")
    attach_rows(benchmark, {
        "bfcl_L1": round(bfcl_shares[1], 3), "bfcl_L2": round(bfcl_shares[2], 3),
        "geo_L1": round(geo_shares[1], 3), "geo_L2": round(geo_shares[2], 3),
    })

    assert bfcl_shares[1] > 0.5          # Level 1 dominates BFCL
    assert geo_shares[2] > bfcl_shares[2]  # Level 2 is a GeoEngine phenomenon
    assert geo_shares[2] > 0.2

"""Ablation A6: the retrieval substrate on a memory-constrained device.

Two practical knobs for hosting the Search Levels on an edge board:

* **embedding dimensionality** — the paper uses MPNet's 768; smaller
  projections shrink the vector store and speed up k-NN.  How far can
  the dimension drop before Level-1 retrieval quality breaks?
* **product quantization** — storing PQ codes instead of raw vectors
  compresses the store by >10x; what is the recall cost on the actual
  tool corpus?
* **projection re-rolls** — retrieval quality must be a property of the
  feature model, not of one lucky random projection.  The sweep re-rolls
  the projection under fresh seed namespaces via
  :meth:`SentenceEmbedder.reseed`, which also exercises the bounded
  direction-cache contract (each re-roll releases the previous matrix).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import attach_rows
from repro.embedding import SentenceEmbedder
from repro.suites.bfcl_catalog import build_bfcl_registry
from repro.vectorstore import FlatIndex, PQIndex

#: paraphrase probes: (query-style text, gold tool) pairs
PROBES = [
    ("fetch the current weather conditions for a town", "get_current_weather"),
    ("convert an amount of money into euros", "convert_currency"),
    ("translate a sentence into german", "translate_text"),
    ("evaluate this arithmetic expression", "calculate_expression"),
    ("what films is this actor in", "get_movie_details"),
    ("find a thai restaurant nearby", "find_restaurants"),
    ("condense this passage into a shorter abstract", "summarize_text"),
    ("monthly cost of a mortgage over thirty years", "compute_loan_payment"),
    ("latest share quote for a ticker", "get_stock_price"),
    ("set an alert for seven in the morning", "set_reminder"),
]


def _top1_hits(index, embedder, names) -> int:
    hits = 0
    for text, gold in PROBES:
        result = index.search_one(embedder.encode_one(text), k=1)
        hits += int(names[result.top()[1]] == gold)
    return hits


@pytest.mark.benchmark(group="ablation-embedding")
def test_embedding_dimension_sweep(benchmark):
    registry = build_bfcl_registry()
    names = registry.names

    def sweep():
        rows = {}
        for dim in (32, 96, 256, 768):
            embedder = SentenceEmbedder(dim=dim)
            index = FlatIndex(dim=dim, metric="cosine")
            index.add(embedder.encode(registry.descriptions()))
            rows[dim] = _top1_hits(index, embedder, names)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nembedding-dimension sweep (top-1 paraphrase retrieval, 10 probes)")
    for dim, hits in rows.items():
        store_kb = 51 * dim * 8 / 1024
        print(f"  dim={dim:>4}: {hits}/10 hits, store={store_kb:.0f} KB")
    attach_rows(benchmark, {f"dim{dim}_hits": hits for dim, hits in rows.items()})

    assert rows[768] >= 9          # the paper's dimension works
    assert rows[256] >= rows[32]   # quality degrades as dim collapses
    assert rows[32] <= rows[768]


@pytest.mark.benchmark(group="ablation-embedding")
def test_pq_compression_recall_tradeoff(benchmark):
    registry = build_bfcl_registry()
    names = registry.names
    embedder = SentenceEmbedder()
    vectors = embedder.encode(registry.descriptions())

    def sweep():
        flat = FlatIndex(dim=768, metric="l2")
        flat.add(vectors)
        flat_hits = _top1_hits(flat, embedder, names)
        rows = {"flat": (flat_hits, vectors.nbytes / 1024, 1.0)}
        for m in (8, 32, 96):
            pq = PQIndex(dim=768, m=m, n_centroids=32)
            pq.add(vectors)
            pq.train()
            hits = _top1_hits(pq, embedder, names)
            rows[f"pq{m}"] = (hits, pq._codes.nbytes / 1024,  # noqa: SLF001
                              pq.marginal_compression_ratio())
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nPQ compression vs retrieval quality (51-tool corpus; marginal "
          "ratio amortises the fixed codebooks)")
    for label, (hits, kb, ratio) in rows.items():
        print(f"  {label:>5}: {hits}/10 hits, codes={kb:7.1f} KB, "
              f"marginal compression x{ratio:.0f}")
    attach_rows(benchmark, {f"{label}_hits": hits
                            for label, (hits, _, _) in rows.items()})

    flat_hits = rows["flat"][0]
    # generous sub-spaces keep exact-search quality at >60x compression
    assert rows["pq96"][0] >= flat_hits - 1
    assert rows["pq96"][2] > 50.0
    # fewer sub-spaces compress harder still
    assert rows["pq8"][2] > rows["pq96"][2]


@pytest.mark.benchmark(group="ablation-embedding")
def test_projection_reroll_stability(benchmark):
    """Re-rolled projections retrieve comparably; the cache stays bounded."""
    registry = build_bfcl_registry()
    names = registry.names
    embedder = SentenceEmbedder()

    def sweep():
        rows = {}
        probe_vectors = {}
        for namespace in ("mpnet-substitute", "reroll-a", "reroll-b"):
            embedder.reseed(namespace)
            # reseed releases the previous namespace's direction matrix:
            # the cache restarts empty instead of accumulating projections
            assert embedder.direction_count == 0
            index = FlatIndex(dim=embedder.dim, metric="cosine")
            index.add(embedder.encode(registry.descriptions()))
            rows[namespace] = _top1_hits(index, embedder, names)
            probe_vectors[namespace] = embedder.encode_one(PROBES[0][0])
        return rows, probe_vectors

    (rows, probe_vectors) = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nprojection re-roll sweep (top-1 paraphrase retrieval, 10 probes)")
    for namespace, hits in rows.items():
        print(f"  {namespace:>16}: {hits}/10 hits")
    attach_rows(benchmark, {f"{ns}_hits": hits for ns, hits in rows.items()})

    # quality is a property of the feature model, not one lucky projection
    assert min(rows.values()) >= 8
    # each namespace really produced an independent projection (a leaky
    # reseed that kept serving old directions would repeat the vectors)
    vectors = list(probe_vectors.values())
    for i in range(len(vectors)):
        for j in range(i + 1, len(vectors)):
            assert not np.allclose(vectors[i], vectors[j])
    embedder.clear_cache()
    assert embedder.direction_count == 0

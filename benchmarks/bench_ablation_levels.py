"""Ablation A3: forcing a single Search Level vs the full Controller.

The paper argues the *hierarchy* is the contribution — pure Level-1
search "closely resembles" Gorilla and under-covers multi-tool chains,
pure Level-2 wastes prompt budget on simple queries, and Level 3 is the
expensive default.  Forcing each level isolates its contribution.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_rows, bench_queries
from repro.evaluation.metrics import summarize
from repro.evaluation.runner import ExperimentRunner
from repro.suites import load_suite

MODES = {"auto": None, "level1": 1, "level2": 2, "level3": 3}


def _run_forced(runner, force_level):
    agent = runner.make_agent("lis-k3", "hermes2-pro-8b", "q4_K_M",
                              force_level=force_level)
    return summarize([agent.run(q) for q in runner.suite.queries])


@pytest.mark.benchmark(group="ablation-levels")
@pytest.mark.parametrize("suite_name", ["bfcl", "geoengine"])
def test_forced_level_ablation(benchmark, suite_name):
    runner = ExperimentRunner(load_suite(suite_name, n_queries=bench_queries(40)))

    def sweep():
        return {mode: _run_forced(runner, level) for mode, level in MODES.items()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nforced-level ablation ({suite_name}, hermes2-pro-8b-q4_K_M)")
    for mode, summary in results.items():
        print(f"  {mode:>7}: success={summary.success_rate:.1%} "
              f"acc={summary.tool_accuracy:.1%} tools={summary.mean_tools_presented:.1f} "
              f"time={summary.mean_time_s:.1f}s")
    attach_rows(benchmark, {f"{mode}_success": round(s.success_rate, 4)
                            for mode, s in results.items()})

    auto = results["auto"]
    # the arbitrated controller is never much worse than the best single level
    best_single = max(results["level1"].success_rate, results["level2"].success_rate)
    assert auto.success_rate >= best_single - 0.08
    # Level 3 is the slow path on both suites
    assert results["level3"].mean_time_s > auto.mean_time_s
    if suite_name == "geoengine":
        # multi-tool chains: clusters beat individual-tool search
        assert results["level2"].success_rate >= results["level1"].success_rate

"""Table I: success rate of Llama3.1-8b precision variants (both suites).

Paper values (success rate, %):

    benchmark   full    q4_0   q4_1   q4_K_M  q8_0
    BFCL        63.04   20.43  34.35  39.57   44.35
    GeoEngine   63.91   43.04  59.57  56.96   53.04

Shape requirements reproduced here: (i) full precision dominates every
quantized variant on both suites; (ii) q4_0 is the worst variant on both;
(iii) on the *sequential* GeoEngine suite the ladder is not monotone in
bits — q8_0 does not beat the q4 mid-tier variants.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_rows
from repro.evaluation.reporting import render_metric_table

QUANTS = ["full", "q4_0", "q4_1", "q4_K_M", "q8_0"]
PAPER_BFCL = {"full": 0.6304, "q4_0": 0.2043, "q4_1": 0.3435,
              "q4_K_M": 0.3957, "q8_0": 0.4435}
PAPER_GEO = {"full": 0.6391, "q4_0": 0.4304, "q4_1": 0.5957,
             "q4_K_M": 0.5696, "q8_0": 0.5304}


def _run_ladder(runner):
    return {quant: runner.run("default", "llama3.1-8b", quant) for quant in QUANTS}


@pytest.mark.benchmark(group="table1")
def test_table1_bfcl(benchmark, bfcl_runner):
    results = benchmark.pedantic(_run_ladder, args=(bfcl_runner,),
                                 rounds=1, iterations=1)
    success = {quant: run.summary.success_rate for quant, run in results.items()}
    print("\n" + render_metric_table(
        {f"llama3.1-8b {q} (paper {PAPER_BFCL[q]:.1%})": run.summary
         for q, run in results.items()},
        title="Table I — BFCL, default agent"))
    attach_rows(benchmark, {f"success_{q}": round(success[q], 4) for q in QUANTS})

    # shape: full precision dominates, q4_0 is the worst quantized variant
    assert success["full"] == max(success.values())
    assert success["q4_0"] == min(success.values())
    # quantization costs at least 15 points of success on BFCL
    assert success["full"] - success["q4_0"] > 0.15


@pytest.mark.benchmark(group="table1")
def test_table1_geoengine(benchmark, geo_runner):
    results = benchmark.pedantic(_run_ladder, args=(geo_runner,),
                                 rounds=1, iterations=1)
    success = {quant: run.summary.success_rate for quant, run in results.items()}
    print("\n" + render_metric_table(
        {f"llama3.1-8b {q} (paper {PAPER_GEO[q]:.1%})": run.summary
         for q, run in results.items()},
        title="Table I — GeoEngine, default agent"))
    attach_rows(benchmark, {f"success_{q}": round(success[q], 4) for q in QUANTS})

    assert success["full"] == max(success.values())
    assert success["q4_0"] == min(success.values())
    # the paper's non-monotone ladder: 8-bit does not dominate the q4
    # mid-tier on long sequential chains
    assert success["q8_0"] <= max(success["q4_1"], success["q4_K_M"]) + 0.02

"""Ablation A4: why ToolLLM is absent from the paper's comparison.

"We also attempted to compare against ToolLLM, but its tree-based
exploration could not fit on the board."  The DFSDT search keeps one
decoding branch (and its KV cache) alive per explored path; this bench
reproduces the footprint arithmetic on the 32 GB AGX Orin and shows the
crossover branch count, plus a reduced-configuration run that *does* fit
(quantifying how much accuracy the memory-feasible variant gives up).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_rows, bench_queries
from repro.baselines import DefaultAgent, ToolLLMAgent
from repro.evaluation.metrics import summarize
from repro.llm import SimulatedLLM
from repro.suites import load_suite


@pytest.mark.benchmark(group="toolllm")
def test_toolllm_memory_wall(benchmark):
    suite = load_suite("bfcl", n_queries=bench_queries(30))
    llm = SimulatedLLM.from_registry("llama3.1-8b", "q4_K_M")

    def profile():
        rows = {}
        for branches in (1, 2, 4, 8, 12, 16, 24):
            agent = ToolLLMAgent(llm=llm, suite=suite, n_branches=branches)
            rows[branches] = (agent.memory_requirement_gb(), agent.fits_device())
        return rows

    rows = benchmark.pedantic(profile, rounds=1, iterations=1)
    print("\nToolLLM DFSDT footprint on Jetson AGX Orin (30 GB usable)")
    for branches, (gb, fits) in rows.items():
        print(f"  {branches:>2} branches: {gb:5.1f} GB  {'fits' if fits else 'DOES NOT FIT'}")
    attach_rows(benchmark, {f"branches_{b}_gb": round(gb, 2)
                            for b, (gb, _) in rows.items()})

    # the paper's configuration-scale search (12+ branches at 16K) is out
    assert not rows[12][1]
    assert not rows[16][1]
    # a heavily reduced search fits
    assert rows[1][1] and rows[2][1]


@pytest.mark.benchmark(group="toolllm")
def test_toolllm_reduced_configuration_cost(benchmark):
    suite = load_suite("bfcl", n_queries=bench_queries(30))
    llm = SimulatedLLM.from_registry("llama3.1-8b", "q4_K_M")

    def run_pair():
        reduced = ToolLLMAgent(llm=llm, suite=suite, n_branches=2,
                               context_window=4096)
        default = DefaultAgent(llm=llm, suite=suite)
        return (summarize([reduced.run(q) for q in suite.queries]),
                summarize([default.run(q) for q in suite.queries]))

    toolllm, default = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(f"\nToolLLM (2 branches, 4K): success={toolllm.success_rate:.1%} "
          f"time={toolllm.mean_time_s:.1f}s | default: "
          f"success={default.success_rate:.1%} time={default.mean_time_s:.1f}s")
    attach_rows(benchmark, {"toolllm_success": round(toolllm.success_rate, 4),
                            "default_success": round(default.success_rate, 4)})

    # the memory-feasible variant pays per-node LLM calls: visible time cost
    assert toolllm.n_episodes == default.n_episodes

"""Chaos suite: deterministic fault injection and supervised recovery.

The acceptance contract: a pool worker SIGKILLed mid-load must cost
nothing but latency — every in-flight request still completes with an
episode bitwise identical to the sequential
:class:`~repro.evaluation.runner.ExperimentRunner` path, the pool
respawns, and the recovery is visible in telemetry
(``worker_restarts``, ``slice_retries`` / ``inline_fallbacks``).
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

from repro.embedding.cache import CachedEmbedder
from repro.evaluation.runner import ExperimentRunner
from repro.registry import FAULT_HOOKS
from repro.serving import (
    DeadlineExceededError,
    FaultInjector,
    FaultPlan,
    Gateway,
    InjectedFaultError,
    ServingConfig,
    SessionManager,
    SupervisedEpisodeExecutor,
)
from repro.serving.faults import as_injector
from repro.suites import load_suite

MODEL, QUANT = "hermes2-pro-8b", "q4_K_M"
WORKERS = int(os.environ.get("REPRO_PROCESS_WORKERS", "2"))


# ----------------------------------------------------------------------
# FaultPlan / FaultInjector unit behavior
# ----------------------------------------------------------------------
def test_fault_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(worker_crash_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(exception_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(slow_batch_ms=-1.0)
    assert FaultPlan().is_empty
    assert not FaultPlan(exception_rate=0.5).is_empty


def test_fault_decisions_are_deterministic_per_plan():
    plan = FaultPlan(seed=7, worker_crash_rate=0.4, exception_rate=0.5)
    first = [FaultInjector(plan).decide("gateway.group")]
    injector_a, injector_b = FaultInjector(plan), FaultInjector(plan)
    seq_a = [injector_a.decide("gateway.group") for _ in range(64)]
    seq_b = [injector_b.decide("gateway.group") for _ in range(64)]
    assert seq_a == seq_b
    assert seq_a[0] == first[0]
    fired = [action for action in seq_a if action is not None]
    assert fired, "a 50% rate fired nothing in 64 draws"
    assert all(action.kind == "raise" for action in fired)
    # a different seed produces a different (still reproducible) sequence
    other = FaultInjector(FaultPlan(seed=8, exception_rate=0.5))
    seq_other = [other.decide("gateway.group") for _ in range(64)]
    assert [a is None for a in seq_other] != [a is None for a in seq_a]


def test_fault_hooks_are_independent_streams():
    plan = FaultPlan(seed=3, worker_crash_rate=0.5, slow_batch_rate=0.5,
                     slow_batch_ms=10.0)
    interleaved = FaultInjector(plan)
    alone = FaultInjector(plan)
    # interleaving draws at another hook must not shift this hook's stream
    crash_interleaved = []
    for _ in range(32):
        interleaved.decide("batch.process")
        crash_interleaved.append(interleaved.decide("process.execute"))
    crash_alone = [alone.decide("process.execute") for _ in range(32)]
    assert crash_interleaved == crash_alone


def test_unknown_hook_rejected():
    injector = FaultInjector(FaultPlan(exception_rate=1.0))
    with pytest.raises(ValueError, match="unknown fault hook"):
        injector.decide("no.such.hook")


def test_as_injector_normalization():
    assert as_injector(None) is None
    assert as_injector(FaultPlan()) is None  # empty plan: no hot-path checks
    injector = as_injector(FaultPlan(exception_rate=1.0))
    assert isinstance(injector, FaultInjector)
    assert as_injector(injector) is injector
    with pytest.raises(TypeError):
        as_injector("chaos")


def test_builtin_hooks_registered():
    for hook in ("process.execute", "batch.process", "gateway.group"):
        assert hook in FAULT_HOOKS


# ----------------------------------------------------------------------
# chaos: worker death mid-load
# ----------------------------------------------------------------------
def test_worker_sigkill_mid_load_recovers_bitwise():
    """SIGKILL a pool worker under load: every request completes, bitwise
    identical to the sequential runner, and the pool respawns."""
    suite = load_suite("edgehome", n_queries=12)
    reference = {
        episode.qid: episode
        for episode in ExperimentRunner(suite, embedder=CachedEmbedder())
        .run("lis-k3", MODEL, QUANT).episodes
    }

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        config = ServingConfig(max_batch_size=4, max_wait_ms=2.0,
                               execution_backend="process",
                               execution_workers=WORKERS,
                               execution_retries=2, retry_backoff_ms=20.0,
                               slice_timeout_s=20.0)
        async with Gateway(sessions, config=config) as gateway:
            stage = gateway._process_stage
            assert isinstance(stage, SupervisedEpisodeExecutor)
            old_pids = stage.worker_pids()
            assert len(old_pids) == WORKERS
            # one warm-up round trip, then kill a worker under load
            await gateway.submit("home", suite.queries[0])
            assert stage.kill_one_worker() in old_pids
            responses = await asyncio.gather(*(
                gateway.submit("home", query) for query in suite.queries
            ))
            # wait for the async respawn to land a fresh generation
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and not stage.running:
                await asyncio.sleep(0.1)
            assert stage.running, "pool did not respawn"
            assert stage.worker_pids(), "respawned pool has no live workers"
            assert not set(stage.worker_pids()) & set(old_pids)
            # the respawned pool serves again, still bitwise
            post = await gateway.submit("home", suite.queries[0])
            return responses + [post], gateway.metrics()

    responses, metrics = asyncio.run(scenario())
    for response in responses:
        assert response.episode == reference[response.episode.qid]
    assert metrics["worker_restarts"] >= 1
    # the failed slice was recovered one way or the other
    assert metrics["slice_retries"] + metrics["inline_fallbacks"] >= 1
    assert metrics["requests_failed"] == 0


def test_supervised_executor_survives_crash_fault_plan():
    """The ``process.execute`` hook SIGKILLs workers; serving never fails."""
    suite = load_suite("edgehome", n_queries=8)
    reference = {
        episode.qid: episode
        for episode in ExperimentRunner(suite, embedder=CachedEmbedder())
        .run("lis-k3", MODEL, QUANT).episodes
    }

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        config = ServingConfig(max_batch_size=4, max_wait_ms=2.0,
                               execution_backend="process",
                               execution_workers=WORKERS,
                               execution_retries=1, retry_backoff_ms=10.0,
                               slice_timeout_s=20.0)
        faults = FaultPlan(seed=11, worker_crash_rate=0.5)
        async with Gateway(sessions, config=config, faults=faults) as gateway:
            responses = await asyncio.gather(*(
                gateway.submit("home", query) for query in suite.queries
            ))
            return responses, gateway.metrics()

    responses, metrics = asyncio.run(scenario())
    for response in responses:
        assert response.episode == reference[response.episode.qid]
    assert metrics["requests_failed"] == 0
    assert metrics["faults_injected_by_hook"].get("process.execute", 0) >= 1


# ----------------------------------------------------------------------
# chaos: stalled batches and end-to-end deadlines
# ----------------------------------------------------------------------
def test_slow_batch_fault_trips_deadline():
    suite = load_suite("edgehome", n_queries=4)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        config = ServingConfig(max_batch_size=2, max_wait_ms=1.0,
                               timeout_ms=150.0)
        faults = FaultPlan(seed=1, slow_batch_rate=1.0, slow_batch_ms=600.0)
        async with Gateway(sessions, config=config, faults=faults) as gateway:
            with pytest.raises(DeadlineExceededError):
                await gateway.submit("home", suite.queries[0])
            return gateway.metrics()

    metrics = asyncio.run(scenario())
    assert metrics["deadline_timeouts"] == 1
    assert metrics["faults_injected_by_hook"].get("batch.process", 0) >= 1


def test_per_request_timeout_overrides_config():
    suite = load_suite("edgehome", n_queries=4)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        # config deadline is absurdly tight; the per-request override wins
        config = ServingConfig(max_batch_size=2, max_wait_ms=1.0,
                               timeout_ms=0.001)
        async with Gateway(sessions, config=config) as gateway:
            response = await gateway.submit("home", suite.queries[0],
                                            timeout_ms=30_000.0)
            return response

    response = asyncio.run(scenario())
    assert response.episode is not None


# ----------------------------------------------------------------------
# chaos: injected executor exceptions stay contained
# ----------------------------------------------------------------------
def test_injected_exception_fails_only_that_request():
    suite = load_suite("edgehome", n_queries=8)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        config = ServingConfig(max_batch_size=4, max_wait_ms=2.0)
        # every other group raises (the stream under seed 5 mixes hits
        # and misses); surviving requests must still complete
        faults = FaultPlan(seed=5, exception_rate=0.5)
        async with Gateway(sessions, config=config, faults=faults) as gateway:
            outcomes = await asyncio.gather(
                *(gateway.submit("home", query) for query in suite.queries),
                return_exceptions=True)
            return outcomes, gateway.metrics()

    outcomes, metrics = asyncio.run(scenario())
    injected = [o for o in outcomes if isinstance(o, InjectedFaultError)]
    served = [o for o in outcomes if not isinstance(o, BaseException)]
    assert len(injected) + len(served) == len(outcomes), \
        f"unexpected failure kinds: {outcomes}"
    assert metrics["faults_injected_by_hook"].get("gateway.group", 0) >= 1
    assert metrics["requests_completed"] == len(served)
    assert metrics["requests_failed"] == len(injected)


def test_config_validation_for_fault_tolerance_knobs():
    with pytest.raises(ValueError):
        ServingConfig(timeout_ms=0.0)
    with pytest.raises(ValueError):
        ServingConfig(worker_init_timeout_s=0.0)
    with pytest.raises(ValueError):
        ServingConfig(execution_retries=-1)
    with pytest.raises(ValueError):
        ServingConfig(retry_backoff_ms=-1.0)
    with pytest.raises(ValueError):
        ServingConfig(slice_timeout_s=0.0)
    assert ServingConfig(timeout_ms=250.0).timeout_s == 0.25
    assert ServingConfig().timeout_s is None

"""Tests for the markdown report generator."""

import pytest

from repro.evaluation.report import comparison_paragraph, grid_report
from repro.evaluation.runner import ExperimentRunner
from repro.suites import load_suite


@pytest.fixture(scope="module")
def grid():
    runner = ExperimentRunner(load_suite("bfcl", n_queries=12))
    return runner.run_grid(["default", "lis-k3"], ["qwen2-7b"], ["q4_K_M"])


class TestGridReport:
    def test_contains_all_cells(self, grid):
        text = grid_report(grid, ["qwen2-7b"], ["q4_K_M"], ["default", "lis-k3"])
        assert "## qwen2-7b" in text
        assert "| q4_K_M | default |" in text
        assert "| q4_K_M | lis-k3 |" in text

    def test_baseline_normalized_to_one(self, grid):
        text = grid_report(grid, ["qwen2-7b"], ["q4_K_M"], ["default", "lis-k3"])
        default_row = next(line for line in text.splitlines()
                           if "| default |" in line)
        assert "| 1.00 | 1.00 |" in default_row

    def test_ci_brackets_present(self, grid):
        text = grid_report(grid, ["qwen2-7b"], ["q4_K_M"], ["default", "lis-k3"])
        assert "[" in text and "]" in text

    def test_custom_title(self, grid):
        text = grid_report(grid, ["qwen2-7b"], ["q4_K_M"], ["default"],
                           title="Figure 2 panel")
        assert text.startswith("# Figure 2 panel")


class TestComparisonParagraph:
    def test_mentions_both_schemes_and_pvalue(self, grid):
        sentence = comparison_paragraph(grid, "qwen2-7b", "q4_K_M")
        assert "lis-k3" in sentence
        assert "default" in sentence
        assert "p=" in sentence
        assert ("significant" in sentence) or ("not significant" in sentence)

"""CachedEmbedder under concurrency: no stale and no torn vectors.

The serving gateway shares one cache between the event loop, the batch
worker and any parallel evaluation grid.  These tests hammer one cache
from many threads with overlapping hit/miss workloads — including a
projection :meth:`reseed` racing in-flight encodes — and assert that
every vector ever served is a coherent embedding of its text under one
projection generation: never a row-mix of two direction banks (torn),
and never an old-generation vector left behind after the cache switched
generations (stale).

Reference vectors come from an independent embedder, which interns its
vocabulary in a different order — bitwise-identical results are only
guaranteed *within* one embedder, so references compare with a tight
``allclose`` while intra-cache consistency is asserted bitwise.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.embedding.cache import CachedEmbedder
from repro.embedding.sentence import SentenceEmbedder

TEXTS = [
    f"tool number {i} to {verb} the {noun} in the smart home"
    for i, (verb, noun) in enumerate(
        (verb, noun)
        for verb in ("toggle", "dim", "schedule", "measure", "lock", "stream")
        for noun in ("lights", "thermostat", "camera", "blinds", "speaker")
    )
]


def canonical(namespace: str) -> dict[str, np.ndarray]:
    """Reference vectors computed on an independent embedder."""
    embedder = SentenceEmbedder(seed_namespace=namespace)
    vectors = embedder.encode(TEXTS)
    return {text: vectors[i] for i, text in enumerate(TEXTS)}


def close(vec: np.ndarray, reference: np.ndarray) -> bool:
    """Same embedding up to float addition order (vocab intern order)."""
    return np.allclose(vec, reference, rtol=0.0, atol=1e-9)


def test_many_threads_mixed_hits_and_misses_serve_canonical_vectors():
    cache = CachedEmbedder()
    reference = canonical("mpnet-substitute")
    served: dict[str, list[np.ndarray]] = {text: [] for text in TEXTS}
    served_lock = threading.Lock()

    def worker(seed: int) -> None:
        rng = np.random.default_rng(seed)
        for _ in range(30):
            picks = [TEXTS[int(i)] for i in rng.integers(0, len(TEXTS), size=5)]
            if rng.random() < 0.3:
                got = {picks[0]: cache.encode_one(picks[0])}
            else:
                got = dict(zip(picks, cache.encode(picks)))
            with served_lock:
                for text, vec in got.items():
                    served[text].append(vec)

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(worker, range(8)))

    for text, vectors in served.items():
        if not vectors:
            continue
        # the whole fleet observed ONE canonical vector per text, bitwise
        for vec in vectors[1:]:
            assert np.array_equal(vec, vectors[0]), text
        assert close(vectors[0], reference[text]), text
    info = cache.cache_info()
    assert info["hits"] > 0 and info["misses"] > 0


def test_mid_run_reseed_never_serves_stale_or_torn_vectors():
    cache = CachedEmbedder()
    old_reference = canonical("mpnet-substitute")
    new_reference = canonical("reseeded-namespace")
    served: list[tuple[str, np.ndarray]] = []
    served_lock = threading.Lock()
    stop = threading.Event()

    def hammer(seed: int) -> None:
        rng = np.random.default_rng(seed)
        while not stop.is_set():
            picks = [TEXTS[int(i)] for i in rng.integers(0, len(TEXTS), size=4)]
            vectors = cache.encode(picks)
            with served_lock:
                served.extend(zip(picks, vectors))

    threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(6)]
    for thread in threads:
        thread.start()
    # let traffic build, then swap the projection mid-flight
    while True:
        with served_lock:
            if len(served) > 200:
                break
    cache.reseed("reseeded-namespace")
    while True:
        with served_lock:
            if len(served) > 600:
                break
    stop.set()
    for thread in threads:
        thread.join()

    # every served vector embeds its text under exactly one of the two
    # projections — a torn vector (rows mixed across direction banks)
    # matches neither reference
    for text, vec in served:
        assert close(vec, old_reference[text]) or close(vec, new_reference[text]), text

    # and nothing stale survived the generation flip: the cache now
    # serves only new-projection vectors (a vector computed under the
    # old projection but stored after the flip would surface here)
    fresh = cache.encode(TEXTS)
    for text, vec in zip(TEXTS, fresh):
        assert close(vec, new_reference[text]), text


def test_reseed_through_cache_matches_direct_generation_tracking():
    cache = CachedEmbedder()
    before = cache.encode_one(TEXTS[0])
    cache.reseed("other-space")
    after = cache.encode_one(TEXTS[0])
    assert not np.array_equal(before, after)
    assert close(after, canonical("other-space")[TEXTS[0]])

"""Served episodes must equal the sequential evaluation path, bitwise.

This is the serving layer's core contract: micro-batching is a pure
performance transform.  Three layers are pinned down —

* the batch-invariant scoring kernels (every query's scores are the same
  no matter which batch it rides in),
* ``plan_batch`` against per-query ``plan``,
* full episodes served through the async gateway against the offline
  :class:`~repro.evaluation.runner.ExperimentRunner`.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.episode import EpisodeResult
from repro.embedding.cache import CachedEmbedder
from repro.evaluation.runner import ExperimentRunner
from repro.serving import Gateway, ServingConfig, SessionManager
from repro.serving.http import ASGITestClient, create_app
from repro.suites import load_suite

MODEL, QUANT = "hermes2-pro-8b", "q4_K_M"


@pytest.fixture(scope="module", params=["edgehome", "bfcl"])
def suite(request):
    return load_suite(request.param, n_queries=24)


def test_plan_batch_matches_sequential_plan(suite):
    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    agent = runner.make_agent("lis-k3", MODEL, QUANT)
    queries = suite.queries[:16]

    batched = agent.plan_batch(queries)
    for query, batched_plan in zip(queries, batched):
        single = agent.plan(query)
        assert [tool.name for tool in batched_plan.tools] == \
            [tool.name for tool in single.tools]
        assert batched_plan.level == single.level
        assert batched_plan.context_window == single.context_window
        assert batched_plan.overhead_s == single.overhead_s
        assert batched_plan.pre_usages == single.pre_usages


def test_decide_batch_matches_decide(suite):
    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    agent = runner.make_agent("lis-k3", MODEL, QUANT)
    controller = agent.controller
    rng = np.random.default_rng(7)
    blocks = [
        agent.embedder.encode([query.text])
        for query in suite.queries[:6]
    ]
    blocks.append(np.zeros((0, agent.embedder.dim)))  # empty block -> Level 3
    blocks.append(rng.normal(size=(3, agent.embedder.dim)))

    batched = controller.decide_batch(blocks)
    for block, decision in zip(blocks, batched):
        single = controller.decide(block)
        assert decision == single  # frozen dataclass: scores compare bitwise


def test_served_episodes_equal_sequential_runner(suite):
    """The acceptance criterion: gateway output == ExperimentRunner output."""
    reference_runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    reference = {
        episode.qid: episode
        for episode in reference_runner.run("lis-k3", MODEL, QUANT).episodes
    }

    async def serve_all():
        sessions = SessionManager()
        sessions.register("t", suite)
        config = ServingConfig(max_batch_size=8, max_wait_ms=5.0)
        async with Gateway(sessions, config=config) as gateway:
            responses = await asyncio.gather(*(
                gateway.submit("t", query) for query in suite.queries
            ))
        return responses

    responses = asyncio.run(serve_all())
    assert len(responses) == len(reference)
    micro_batched = [r for r in responses if r.batch_size > 1]
    assert micro_batched, "no request was actually micro-batched"
    for response in responses:
        # EpisodeResult equality covers steps, level, fallback, timing,
        # energy and token floats — bitwise, thanks to batch-invariant
        # kernels and per-query RNG streams
        assert response.episode == reference[response.episode.qid]


def test_http_call_equals_sequential_runner(suite):
    """The HTTP front door adds a JSON round-trip on top of the gateway;
    episodes decoded from ``POST /v1/call`` responses must still equal
    the sequential runner **bitwise** — Python's shortest-repr float
    JSON encoding decodes to identical IEEE-754 values, so serialization
    is not allowed to cost any precision.
    """
    reference_runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    reference = {
        episode.qid: episode
        for episode in reference_runner.run("lis-k3", MODEL, QUANT).episodes
    }

    async def serve_all():
        sessions = SessionManager(embedder=CachedEmbedder())
        sessions.register("t", suite)
        config = ServingConfig(max_batch_size=8, max_wait_ms=5.0,
                               default_scheme="lis-k3", default_model=MODEL,
                               default_quant=QUANT)
        app = create_app(Gateway(sessions, config=config))
        client = ASGITestClient(app)
        async with app:
            return await asyncio.gather(*(
                client.post("/v1/call", {"tenant": "t", "qid": query.qid})
                for query in suite.queries
            ))

    responses = asyncio.run(serve_all())
    assert len(responses) == len(reference)
    payloads = [response.json() for response in responses]
    assert [p for p in payloads if p["batch_size"] > 1], \
        "no request was actually micro-batched"
    for response, payload in zip(responses, payloads):
        assert response.status == 200
        episode = EpisodeResult.from_dict(payload["episode"])
        assert episode == reference[episode.qid]
        # the JSON round-trip also preserves the derived metrics
        assert payload["episode"]["success"] == episode.success
        assert response.trace_id == payload["trace_id"] != ""


def test_process_execution_stage_equals_sequential_runner(suite):
    """Worker-process episode execution must not change served results.

    Planning stays batched in the parent; the post-planning step loop of
    each flush runs across a 2-worker process pool
    (``execution_backend="process"``) — and every served episode must
    still equal the sequential :class:`ExperimentRunner` path bitwise.
    """
    import os

    workers = int(os.environ.get("REPRO_PROCESS_WORKERS", "2"))
    reference_runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    reference = {
        episode.qid: episode
        for episode in reference_runner.run("lis-k3", MODEL, QUANT).episodes
    }

    async def serve_all():
        sessions = SessionManager()
        sessions.register("t", suite)
        config = ServingConfig(max_batch_size=8, max_wait_ms=5.0,
                               execution_backend="process",
                               execution_workers=workers)
        async with Gateway(sessions, config=config) as gateway:
            return await asyncio.gather(*(
                gateway.submit("t", query) for query in suite.queries
            ))

    responses = asyncio.run(serve_all())
    assert len(responses) == len(reference)
    assert [r for r in responses if r.batch_size > 1], \
        "no request was actually micro-batched"
    for response in responses:
        assert response.episode == reference[response.episode.qid]


def test_late_registered_tenant_served_inline_with_process_stage():
    """Tenants registered after the pool was primed still serve correctly."""
    early = load_suite("edgehome", n_queries=6)
    late = load_suite("bfcl", n_queries=6)
    reference = {
        episode.qid: episode
        for episode in ExperimentRunner(late, embedder=CachedEmbedder())
        .run("lis-k3", MODEL, QUANT).episodes
    }

    async def serve():
        sessions = SessionManager()
        sessions.register("early", early)
        config = ServingConfig(max_batch_size=4, max_wait_ms=5.0,
                               execution_backend="process",
                               execution_workers=2)
        async with Gateway(sessions, config=config) as gateway:
            assert gateway._process_stage.covers("early")
            sessions.register("late", late)  # workers never saw this one
            assert not gateway._process_stage.covers("late")
            return await asyncio.gather(*(
                gateway.submit("late", query) for query in late.queries
            ))

    for response in asyncio.run(serve()):
        assert response.episode == reference[response.episode.qid]


def test_served_results_independent_of_batch_composition(suite):
    """The same query must serve identically alone and inside a batch."""

    async def serve(queries, config):
        sessions = SessionManager()
        sessions.register("t", suite)
        async with Gateway(sessions, config=config) as gateway:
            responses = await asyncio.gather(*(
                gateway.submit("t", query) for query in queries
            ))
        return {r.episode.qid: r.episode for r in responses}

    target = suite.queries[0]
    alone = asyncio.run(serve(
        [target], ServingConfig(max_batch_size=1, max_wait_ms=0.0)))
    crowded = asyncio.run(serve(
        suite.queries[:10], ServingConfig(max_batch_size=10, max_wait_ms=20.0)))
    assert alone[target.qid] == crowded[target.qid]

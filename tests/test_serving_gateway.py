"""Gateway-level tests: routing, admission, telemetry, multi-tenancy."""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import (
    Gateway,
    ServingConfig,
    SessionManager,
    UnknownTenantError,
    make_workload,
    percentile,
    run_closed_loop,
)
from repro.suites import load_suite

SMALL = dict(n_queries=12)


@pytest.fixture(scope="module")
def edgehome_suite():
    return load_suite("edgehome", **SMALL)


@pytest.fixture(scope="module")
def bfcl_suite():
    return load_suite("bfcl", **SMALL)


def make_sessions(**suites):
    sessions = SessionManager()
    for tenant, suite in suites.items():
        sessions.register(tenant, suite)
    return sessions


def test_submit_serves_one_episode(edgehome_suite):
    async def scenario():
        sessions = make_sessions(home=edgehome_suite)
        async with Gateway(sessions) as gateway:
            query = edgehome_suite.queries[0]
            response = await gateway.submit("home", query)
            return response

    response = asyncio.run(scenario())
    assert response.tenant == "home"
    assert response.episode.qid == edgehome_suite.queries[0].qid
    assert response.episode.scheme == "lis"
    assert response.batch_size == 1
    assert response.latency_s > 0.0


def test_submit_resolves_qid_strings(edgehome_suite):
    async def scenario():
        sessions = make_sessions(home=edgehome_suite)
        async with Gateway(sessions) as gateway:
            qid = edgehome_suite.queries[1].qid
            response = await gateway.submit("home", qid)
            return response

    response = asyncio.run(scenario())
    assert response.episode.qid == edgehome_suite.queries[1].qid


def test_unknown_tenant_and_unknown_qid(edgehome_suite):
    async def scenario():
        sessions = make_sessions(home=edgehome_suite)
        async with Gateway(sessions) as gateway:
            with pytest.raises(UnknownTenantError):
                await gateway.submit("nope", edgehome_suite.queries[0])
            with pytest.raises(KeyError):
                await gateway.submit("home", "no-such-qid")

    asyncio.run(scenario())


def test_concurrent_requests_get_micro_batched(edgehome_suite):
    async def scenario():
        sessions = make_sessions(home=edgehome_suite)
        config = ServingConfig(max_batch_size=8, max_wait_ms=20.0)
        async with Gateway(sessions, config=config) as gateway:
            responses = await asyncio.gather(*(
                gateway.submit("home", query)
                for query in edgehome_suite.queries[:8]
            ))
            return responses, gateway.metrics()

    responses, metrics = asyncio.run(scenario())
    assert len(responses) == 8
    # all eight were concurrently waiting, so they coalesced into few
    # batches; at least one real micro-batch formed
    assert metrics["max_batch_size"] >= 2
    assert metrics["requests_completed"] == 8
    assert sum(int(size) * count
               for size, count in metrics["batch_size_histogram"].items()) == 8


def test_multi_tenant_routing_and_isolation(edgehome_suite, bfcl_suite):
    async def scenario():
        sessions = make_sessions(home=edgehome_suite, bfcl=bfcl_suite)
        config = ServingConfig(max_batch_size=8, max_wait_ms=20.0)
        async with Gateway(sessions, config=config) as gateway:
            home_queries = edgehome_suite.queries[:4]
            bfcl_queries = bfcl_suite.queries[:4]
            responses = await asyncio.gather(
                *(gateway.submit("home", query) for query in home_queries),
                *(gateway.submit("bfcl", query) for query in bfcl_queries),
            )
            return responses

    responses = asyncio.run(scenario())
    home_qids = {response.episode.qid for response in responses[:4]}
    bfcl_qids = {response.episode.qid for response in responses[4:]}
    # each tenant's episodes came from its own suite (qid namespaces differ)
    assert home_qids.isdisjoint(bfcl_qids)
    assert all(response.tenant == "home" for response in responses[:4])
    assert all(response.tenant == "bfcl" for response in responses[4:])


def test_scheme_override_per_request(edgehome_suite):
    async def scenario():
        sessions = make_sessions(home=edgehome_suite)
        async with Gateway(sessions) as gateway:
            query = edgehome_suite.queries[0]
            default = await gateway.submit("home", query)
            override = await gateway.submit("home", query, scheme="default")
            return default, override

    default, override = asyncio.run(scenario())
    assert default.episode.scheme == "lis"
    assert override.episode.scheme == "default"


def test_bad_grid_cell_fails_only_its_own_requests(edgehome_suite):
    """An invalid model in one request must not fail co-batched traffic."""

    async def scenario():
        sessions = make_sessions(home=edgehome_suite)
        config = ServingConfig(max_batch_size=8, max_wait_ms=20.0)
        async with Gateway(sessions, config=config) as gateway:
            good = [gateway.submit("home", query)
                    for query in edgehome_suite.queries[:3]]
            bad = gateway.submit("home", edgehome_suite.queries[3],
                                 model="no-such-model")
            outcomes = await asyncio.gather(*good, bad, return_exceptions=True)
            return outcomes

    outcomes = asyncio.run(scenario())
    assert all(not isinstance(outcome, Exception) for outcome in outcomes[:3])
    assert isinstance(outcomes[3], Exception)


def test_empty_plan_batch_returns_empty(edgehome_suite):
    from repro.embedding.cache import CachedEmbedder
    from repro.evaluation.runner import ExperimentRunner

    runner = ExperimentRunner(edgehome_suite, embedder=CachedEmbedder())
    agent = runner.make_agent("lis-k3", "hermes2-pro-8b", "q4_K_M")
    assert agent.plan_batch([]) == []


def test_duplicate_tenant_registration_rejected(edgehome_suite):
    sessions = SessionManager()
    sessions.register("home", edgehome_suite)
    with pytest.raises(ValueError):
        sessions.register("home", edgehome_suite)


def test_closed_loop_loadgen_summary(edgehome_suite):
    async def scenario():
        sessions = make_sessions(home=edgehome_suite)
        config = ServingConfig(max_batch_size=8, max_wait_ms=5.0)
        async with Gateway(sessions, config=config) as gateway:
            workload = make_workload({"home": edgehome_suite}, n_requests=24)
            return await run_closed_loop(gateway, workload, concurrency=8)

    report = asyncio.run(scenario())
    assert report.n_requests == 24
    assert report.throughput_rps > 0.0
    assert len(report.latencies_s) == 24
    assert report.latency_p50_ms <= report.latency_p95_ms <= report.latency_p99_ms
    assert report.gateway_metrics["requests_completed"] == 24
    assert report.gateway_metrics["requests_failed"] == 0


def test_percentile_math():
    assert percentile([], 95.0) == 0.0
    assert percentile([3.0], 99.0) == 3.0
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 50.0) == 3.0
    assert percentile(values, 100.0) == 5.0
    assert percentile(values, 75.0) == 4.0
    with pytest.raises(ValueError):
        percentile(values, 101.0)


def test_telemetry_snapshot_counts():
    from repro.serving import Telemetry

    telemetry = Telemetry(max_samples=4)
    for depth in range(6):  # exceeds max_samples: ring buffer, not growth
        telemetry.record_admission(depth)
    telemetry.record_rejection()
    telemetry.record_flush(3)
    telemetry.record_flush(3)
    telemetry.record_completion(0.010)
    telemetry.record_completion(0.030)
    telemetry.record_completion(0.0, ok=False)
    snapshot = telemetry.snapshot()
    assert snapshot["requests_admitted"] == 6
    assert snapshot["requests_rejected"] == 1
    assert snapshot["requests_completed"] == 2
    assert snapshot["requests_failed"] == 1
    assert snapshot["n_batches"] == 2
    assert snapshot["mean_batch_size"] == 3.0
    assert snapshot["batch_size_histogram"] == {"3": 2}
    assert snapshot["latency_p50_ms"] == pytest.approx(20.0)

"""Carbon-intensity signals, the trace CSV loader and the EnergyMeter."""

from __future__ import annotations

import math
from pathlib import Path

import pytest

from repro.power import EnergyMeter, load_intensity_trace
from repro.power.signals import (
    DAY_S,
    SinusoidSignal,
    StaticSignal,
    TraceSignal,
    build_signal,
    dump_intensity_trace,
)
from repro.registry import CARBON_SIGNALS, register_carbon_signal
from repro.specs import BudgetSpec

COMMITTED_TRACE = (Path(__file__).resolve().parent.parent
                   / "benchmarks" / "data" / "grid_intensity_day.csv")


# ----------------------------------------------------------------------
# signals are pure functions of time
# ----------------------------------------------------------------------
def test_static_signal():
    signal = StaticSignal(intensity_g_per_kwh=123.0)
    assert signal.intensity(0.0) == 123.0
    assert signal.intensity(1e9) == 123.0
    with pytest.raises(ValueError):
        StaticSignal(intensity_g_per_kwh=-1.0)


def test_sinusoid_signal():
    signal = SinusoidSignal(mean_g_per_kwh=400.0, amplitude_g_per_kwh=100.0,
                            period_s=86400.0, phase_s=3600.0)
    # at the phase origin the curve sits on the mean, heading up
    assert signal.intensity(3600.0) == pytest.approx(400.0)
    # a quarter period later it peaks; three quarters later it troughs
    assert signal.intensity(3600.0 + 21600.0) == pytest.approx(500.0)
    assert signal.intensity(3600.0 + 64800.0) == pytest.approx(300.0)
    # purity: the same t always gives the same value
    assert signal.intensity(12345.0) == signal.intensity(12345.0)
    # a trough below zero clamps (a grid cannot emit negative carbon)
    deep = SinusoidSignal(mean_g_per_kwh=50.0, amplitude_g_per_kwh=150.0)
    assert deep.intensity(0.75 * DAY_S) == 0.0
    with pytest.raises(ValueError):
        SinusoidSignal(period_s=0.0)
    with pytest.raises(ValueError):
        SinusoidSignal(amplitude_g_per_kwh=-1.0)


def test_trace_signal_interpolation_and_wrap():
    signal = TraceSignal([(0.0, 100.0), (3600.0, 200.0)], period_s=7200.0)
    assert signal.intensity(0.0) == 100.0
    assert signal.intensity(1800.0) == pytest.approx(150.0)
    assert signal.intensity(3600.0) == 200.0
    # the wrap segment interpolates last -> first across the period edge
    assert signal.intensity(5400.0) == pytest.approx(150.0)
    # cyclic: any t and t + period agree exactly
    for t in (0.0, 417.0, 1800.0, 5400.0, 7199.0):
        assert signal.intensity(t) == pytest.approx(signal.intensity(t + 7200.0))
    # a single point is a constant
    assert TraceSignal([(0.0, 321.0)]).intensity(1e6) == 321.0


def test_trace_signal_validation():
    with pytest.raises(ValueError):
        TraceSignal([])
    with pytest.raises(ValueError):
        TraceSignal([(0.0, 1.0), (0.0, 2.0)])  # not strictly increasing
    with pytest.raises(ValueError):
        TraceSignal([(0.0, 1.0), (9000.0, 2.0)], period_s=7200.0)
    with pytest.raises(ValueError):
        TraceSignal([(0.0, -1.0)])
    with pytest.raises(ValueError):
        TraceSignal([(0.0, 1.0)], period_s=0.0)


# ----------------------------------------------------------------------
# the committed grid CSV and its loader
# ----------------------------------------------------------------------
def test_committed_trace_loads_and_replays():
    signal = load_intensity_trace(COMMITTED_TRACE)
    assert len(signal.points) == 24
    assert signal.period_s == DAY_S
    # duck-curve shape: midday solar dip well below the evening peak
    midday = signal.intensity(13 * 3600.0)
    evening = signal.intensity(20 * 3600.0)
    assert midday < 300.0 < evening
    assert evening > signal.intensity(4 * 3600.0)  # night is mild
    # tomorrow replays today exactly
    for hour in (0.0, 6.5, 13.0, 20.0, 23.9):
        t = hour * 3600.0
        assert signal.intensity(t) == pytest.approx(signal.intensity(t + DAY_S))


def test_trace_round_trip(tmp_path):
    original = load_intensity_trace(COMMITTED_TRACE)
    copy_path = tmp_path / "copy.csv"
    dump_intensity_trace(original, copy_path)
    reloaded = load_intensity_trace(copy_path)
    assert reloaded.points == original.points
    assert reloaded.period_s == original.period_s


def _write(tmp_path, text):
    path = tmp_path / "trace.csv"
    path.write_text(text)
    return path


def test_loader_rejects_bad_header(tmp_path):
    path = _write(tmp_path, "time,carbon\n0,100\n")
    with pytest.raises(ValueError, match="bad header"):
        load_intensity_trace(path)


def test_loader_rejects_missing_file(tmp_path):
    with pytest.raises(ValueError, match="not found"):
        load_intensity_trace(tmp_path / "nope.csv")


def test_loader_errors_carry_line_numbers(tmp_path):
    path = _write(tmp_path,
                  "hour,intensity_g_per_kwh\n0,100\n1,100,extra\n")
    with pytest.raises(ValueError, match=r":3: expected 2 columns"):
        load_intensity_trace(path)
    path = _write(tmp_path, "hour,intensity_g_per_kwh\n0,abc\n")
    with pytest.raises(ValueError, match=r":2: non-numeric"):
        load_intensity_trace(path)
    path = _write(tmp_path, "hour,intensity_g_per_kwh\n24,100\n")
    with pytest.raises(ValueError, match=r":2: hour must be in \[0, 24\)"):
        load_intensity_trace(path)
    path = _write(tmp_path, "hour,intensity_g_per_kwh\n3,-5\n")
    with pytest.raises(ValueError, match=r":2: intensity must be >= 0"):
        load_intensity_trace(path)


def test_loader_rejects_empty_inputs(tmp_path):
    with pytest.raises(ValueError, match="empty file"):
        load_intensity_trace(_write(tmp_path, ""))
    with pytest.raises(ValueError, match="no data rows"):
        load_intensity_trace(_write(tmp_path, "hour,intensity_g_per_kwh\n"))


def test_loader_tolerates_blank_lines_and_fractional_hours(tmp_path):
    path = _write(tmp_path,
                  "hour,intensity_g_per_kwh\n0,100\n\n6.5,250\n\n")
    signal = load_intensity_trace(path)
    assert signal.points == [(0.0, 100.0), (6.5 * 3600.0, 250.0)]


# ----------------------------------------------------------------------
# the CARBON_SIGNALS registry and build_signal
# ----------------------------------------------------------------------
def test_builtin_signals_registered():
    for name in ("static", "sinusoid", "trace"):
        assert name in CARBON_SIGNALS


def test_build_signal_from_spec():
    assert isinstance(build_signal(None), StaticSignal)
    static = build_signal(BudgetSpec(energy_budget_j=100.0,
                                     intensity_g_per_kwh=222.0))
    assert static.intensity(0.0) == 222.0
    sinusoid = build_signal(BudgetSpec(energy_budget_j=100.0,
                                       signal="sinusoid",
                                       intensity_g_per_kwh=300.0,
                                       intensity_amplitude=50.0,
                                       period_s=1000.0, phase_s=10.0))
    assert isinstance(sinusoid, SinusoidSignal)
    assert sinusoid.intensity(10.0) == pytest.approx(300.0)
    trace = build_signal(BudgetSpec(energy_budget_j=100.0, signal="trace",
                                    trace_path=str(COMMITTED_TRACE)))
    assert isinstance(trace, TraceSignal)


def test_custom_signal_registration():
    @register_carbon_signal("test-square")
    def _square(spec):
        class Square:
            def intensity(self, t_s):
                return (100.0 if math.sin(2 * math.pi * t_s / spec.period_s)
                        >= 0.0 else 500.0)
        return Square()

    try:
        spec = BudgetSpec(energy_budget_j=1.0, signal="test-square",
                          period_s=100.0)
        signal = spec.build_signal()
        assert signal.intensity(10.0) == 100.0
        assert signal.intensity(60.0) == 500.0
    finally:
        CARBON_SIGNALS.unregister("test-square")
    with pytest.raises(ValueError, match="unknown carbon signal"):
        BudgetSpec(energy_budget_j=1.0, signal="test-square")


# ----------------------------------------------------------------------
# the EnergyMeter: attribution, windows, power modes
# ----------------------------------------------------------------------
class _Episode:
    def __init__(self, qid, prompt_tokens, completion_tokens):
        self.qid = qid
        self.prompt_tokens = prompt_tokens
        self.completion_tokens = completion_tokens


def test_meter_attribution_is_deterministic():
    meter = EnergyMeter(signal=StaticSignal(500.0), clock=lambda: 0.0)
    episode = _Episode("q1", 1000, 120)
    first = meter.record("home", episode, model="hermes2-pro-8b",
                         quant="q4_K_M")
    second = meter.record("home", episode, model="hermes2-pro-8b",
                          quant="q4_K_M")
    assert first.energy_j > 0.0
    assert first.energy_j == second.energy_j  # same stream, same joules
    assert first.carbon_g == pytest.approx(
        first.energy_j / 3.6e6 * 500.0)
    assert first.power_mode == "MAXN"
    stats = meter.window_stats("home")
    assert stats.requests == 2
    assert stats.total_requests == 2
    assert stats.mean_energy_j == pytest.approx(first.energy_j)


def test_meter_power_mode_changes_accounting_only():
    episode = _Episode("q1", 1000, 120)
    meter = EnergyMeter(signal=StaticSignal(400.0), clock=lambda: 0.0)
    maxn = meter.record("home", episode, model="hermes2-pro-8b",
                        quant="q4_K_M")
    meter.set_power_mode("30w")  # case-insensitive
    assert meter.power_mode == "30W"
    capped = meter.record("home", episode, model="hermes2-pro-8b",
                          quant="q4_K_M")
    assert capped.power_mode == "30W"
    # 30W trades longer runtime for lower board power: net joules drop
    assert capped.energy_j < maxn.energy_j
    with pytest.raises(ValueError, match="unknown power mode"):
        meter.set_power_mode("5W")


def test_meter_window_rolls_and_totals_accumulate():
    meter = EnergyMeter(signal=StaticSignal(400.0), clock=lambda: 0.0,
                        window_requests=2)
    small = _Episode("small", 100, 10)
    big = _Episode("big", 4000, 400)
    meter.record("home", small, model="hermes2-pro-8b", quant="q4_K_M")
    big_record = meter.record("home", big, model="hermes2-pro-8b",
                              quant="q4_K_M")
    meter.record("home", big, model="hermes2-pro-8b", quant="q4_K_M")
    stats = meter.window_stats("home")
    assert stats.requests == 2           # the window dropped the first
    assert stats.total_requests == 3     # totals never forget
    assert stats.mean_energy_j == pytest.approx(big_record.energy_j)
    meter.record("other", big, model="hermes2-pro-8b", quant="q4_K_M")
    snapshot = meter.snapshot()
    assert snapshot["requests_by_tenant"] == {"home": 3, "other": 1}
    assert snapshot["energy_j"] == pytest.approx(
        sum(snapshot["energy_j_by_tenant"].values()))


def test_meter_edge_cases():
    meter = EnergyMeter(clock=lambda: 0.0)
    # unknown tenant: clean zero stats
    assert meter.window_stats("ghost").requests == 0
    # a token-free episode costs nothing
    empty = meter.record("home", _Episode("q0", 0, 0),
                         model="hermes2-pro-8b", quant="q4_K_M")
    assert empty.energy_j == 0.0
    # unknown model/quant falls back to the reference 8B/q4 shape
    fallback = meter.record("home", _Episode("q1", 500, 50),
                            model="mystery-model", quant="mystery-quant")
    reference = meter.record("home", _Episode("q1", 500, 50),
                             model="hermes2-pro-8b", quant="q4_K_M")
    assert fallback.energy_j == pytest.approx(reference.energy_j)
    with pytest.raises(ValueError):
        EnergyMeter(window_requests=0)


def test_meter_signal_drives_carbon_through_time():
    signal = TraceSignal([(0.0, 100.0), (3600.0, 500.0)], period_s=7200.0)
    meter = EnergyMeter(signal=signal, clock=lambda: 0.0)
    episode = _Episode("q1", 1000, 100)
    cheap = meter.record("home", episode, model="hermes2-pro-8b",
                         quant="q4_K_M", now_s=0.0)
    dirty = meter.record("home", episode, model="hermes2-pro-8b",
                         quant="q4_K_M", now_s=3600.0)
    assert cheap.energy_j == dirty.energy_j        # joules ignore the grid
    assert dirty.carbon_g == pytest.approx(5 * cheap.carbon_g)
    assert cheap.intensity_g_per_kwh == 100.0
    assert dirty.intensity_g_per_kwh == 500.0

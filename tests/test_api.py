"""Tests for the top-level convenience API (repro.api)."""

import pytest

import repro
from repro import build_agent, build_less_is_more, load_model, load_suite


class TestLoadSuite:
    def test_bfcl(self):
        suite = load_suite("bfcl", n_queries=4)
        assert suite.n_tools == 51
        assert len(suite.queries) == 4

    def test_seed_changes_queries(self):
        a = load_suite("bfcl", n_queries=6, seed=1)
        b = load_suite("bfcl", n_queries=6, seed=2)
        assert [q.text for q in a.queries] != [q.text for q in b.queries]


class TestLoadModel:
    def test_default_quant(self):
        llm = load_model("hermes2-pro-8b")
        assert llm.quant.name == "q4_K_M"

    def test_explicit_quant(self):
        assert load_model("qwen2-7b", "q8_0").quant.name == "q8_0"


class TestBuildAgents:
    """The legacy builders keep working (as deprecation shims)."""

    @pytest.fixture(scope="class")
    def suite(self):
        return load_suite("bfcl", n_queries=4)

    def test_build_less_is_more(self, suite):
        with pytest.deprecated_call():
            agent = build_less_is_more("llama3.1-8b", "q4_0", suite, k=5)
        assert agent.scheme == "lis"
        assert agent.k == 5

    def test_build_agent_schemes(self, suite):
        for scheme in ("default", "gorilla", "toolllm", "lis"):
            with pytest.deprecated_call():
                agent = build_agent(scheme, "qwen2-7b", "q4_0", suite)
            assert agent.scheme in ("default", "gorilla", "toolllm", "lis")

    def test_build_agent_unknown(self, suite):
        with pytest.deprecated_call(), pytest.raises(ValueError):
            build_agent("react", "qwen2-7b", "q4_0", suite)

    def test_episode_round_trip(self, suite):
        with pytest.deprecated_call():
            agent = build_less_is_more("qwen2-7b", "q4_K_M", suite)
        episode = agent.run(suite.queries[0])
        assert episode.qid == suite.queries[0].qid


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

"""Tests for repro.utils.vectorops — the shared zero-safe norm helpers."""

import numpy as np
import pytest

from repro.utils.vectorops import blend_and_normalize, normalize_rows, safe_norms


class TestSafeNorms:
    def test_plain_norms(self):
        matrix = np.array([[3.0, 4.0], [0.0, 2.0]])
        np.testing.assert_allclose(safe_norms(matrix), [[5.0], [2.0]])

    def test_zero_rows_guarded(self):
        matrix = np.array([[0.0, 0.0], [1.0, 0.0]])
        np.testing.assert_allclose(safe_norms(matrix), [[1.0], [1.0]])

    def test_no_keepdims(self):
        assert safe_norms(np.zeros((2, 3)), keepdims=False).shape == (2,)


class TestNormalizeRows:
    def test_unit_rows(self):
        out = normalize_rows(np.array([[3.0, 4.0], [0.0, 5.0]]))
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_zero_rows_stay_zero(self):
        out = normalize_rows(np.array([[0.0, 0.0], [2.0, 0.0]]))
        np.testing.assert_array_equal(out[0], [0.0, 0.0])
        assert not np.isnan(out).any()

    def test_input_not_mutated(self):
        matrix = np.array([[2.0, 0.0]])
        normalize_rows(matrix)
        np.testing.assert_array_equal(matrix, [[2.0, 0.0]])

    def test_one_dim_promoted(self):
        assert normalize_rows(np.array([2.0, 0.0])).shape == (1, 2)

    def test_empty(self):
        assert normalize_rows(np.zeros((0, 4))).shape == (0, 4)


class TestBlendAndNormalize:
    def test_blend_weights(self):
        vectors = np.array([[1.0, 0.0]])
        context = np.array([0.0, 1.0])
        out = blend_and_normalize(vectors, context, weight=0.75)
        expected = np.array([0.75, 0.25])
        expected /= np.linalg.norm(expected)
        np.testing.assert_allclose(out[0], expected)

    def test_weight_one_keeps_vectors(self):
        vectors = np.array([[0.0, 2.0], [3.0, 0.0]])
        out = blend_and_normalize(vectors, np.array([1.0, 1.0]), weight=1.0)
        np.testing.assert_allclose(out, [[0.0, 1.0], [1.0, 0.0]])

    def test_opposite_blend_zero_row_safe(self):
        out = blend_and_normalize(np.array([[1.0, 0.0]]), np.array([-3.0, 0.0]),
                                  weight=0.75)
        np.testing.assert_array_equal(out[0], [0.0, 0.0])

    def test_empty_batch(self):
        out = blend_and_normalize(np.zeros((0, 3)), np.ones(3))
        assert out.shape == (0, 3)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            blend_and_normalize(np.ones((1, 2)), np.ones(2), weight=1.5)

    def test_matches_historical_pipeline_arithmetic(self):
        rng = np.random.default_rng(7)
        vectors = rng.standard_normal((5, 8))
        context = rng.standard_normal(8)
        blended = 0.75 * vectors + 0.25 * context[None, :]
        norms = np.linalg.norm(blended, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        np.testing.assert_array_equal(blend_and_normalize(vectors, context),
                                      blended / norms)

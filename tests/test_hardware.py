"""Tests for repro.hardware: device model, memory, sessions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    JETSON_AGX_ORIN,
    InferenceRequest,
    InferenceTrace,
    MeasurementSession,
    kv_cache_gb,
    model_weights_gb,
    simulate_inference,
)
from repro.hardware.memory import fits_on_device, footprint_gb


def request(**overrides) -> InferenceRequest:
    base = dict(params_b=8.0, bits_per_weight=4.85, prompt_tokens=2000,
                generated_tokens=150, context_window=8192)
    base.update(overrides)
    return InferenceRequest(**base)


class TestMemoryModel:
    def test_8b_q4_weights_around_5gb(self):
        gb = model_weights_gb(8.0, 4.85)
        assert 4.5 <= gb <= 6.0

    def test_full_precision_doubles_q8(self):
        assert model_weights_gb(8.0, 16.0) == pytest.approx(
            2.0 * model_weights_gb(8.0, 8.0))

    def test_kv_cache_16k_about_2gb(self):
        assert 1.8 <= kv_cache_gb(16384, 8.0) <= 2.6

    def test_kv_scales_with_model_size(self):
        assert kv_cache_gb(8192, 1.5) < kv_cache_gb(8192, 8.0)

    def test_footprint_parallel_contexts(self):
        single = footprint_gb(8.0, 4.85, 16384, n_parallel_contexts=1)
        tree = footprint_gb(8.0, 4.85, 16384, n_parallel_contexts=12)
        assert tree > single
        assert fits_on_device(single, JETSON_AGX_ORIN.memory_gb)
        assert not fits_on_device(tree + 10, JETSON_AGX_ORIN.memory_gb)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            model_weights_gb(0.0, 4.0)
        with pytest.raises(ValueError):
            model_weights_gb(8.0, 0.0)
        with pytest.raises(ValueError):
            kv_cache_gb(-1)
        with pytest.raises(ValueError):
            footprint_gb(8.0, 4.0, 8192, n_parallel_contexts=0)


class TestInferenceRequestValidation:
    def test_negative_tokens(self):
        with pytest.raises(ValueError):
            request(prompt_tokens=-1)

    def test_zero_window(self):
        with pytest.raises(ValueError):
            request(context_window=0)

    def test_kv_cached_bounds(self):
        with pytest.raises(ValueError):
            request(kv_cached_tokens=99999)


class TestSimulateInference:
    def test_deterministic(self):
        a = simulate_inference(request(jitter_stream="x"))
        b = simulate_inference(request(jitter_stream="x"))
        assert a == b

    def test_jitter_stream_changes_result(self):
        a = simulate_inference(request(jitter_stream="x"))
        b = simulate_inference(request(jitter_stream="y"))
        assert a.total_s != b.total_s

    def test_more_prompt_tokens_slower(self):
        fast = simulate_inference(request(prompt_tokens=500))
        slow = simulate_inference(request(prompt_tokens=6000))
        assert slow.prefill_s > fast.prefill_s

    def test_kv_cache_reuse_cuts_prefill(self):
        cold = simulate_inference(request(prompt_tokens=4000))
        warm = simulate_inference(request(prompt_tokens=4000, kv_cached_tokens=3800))
        assert warm.prefill_s < cold.prefill_s * 0.2

    def test_larger_window_slower_and_hungrier(self):
        small = simulate_inference(request(context_window=8192))
        large = simulate_inference(request(context_window=16384))
        assert large.total_s > small.total_s
        assert large.peak_memory_gb > small.peak_memory_gb

    def test_smaller_model_decodes_faster(self):
        big = simulate_inference(request())
        small = simulate_inference(request(params_b=1.5))
        assert small.decode_s < big.decode_s

    def test_quantized_decodes_faster_than_q8(self):
        q4 = simulate_inference(request(bits_per_weight=4.5))
        q8 = simulate_inference(request(bits_per_weight=8.5))
        assert q4.decode_s < q8.decode_s

    def test_avg_power_between_idle_and_peak(self):
        trace = simulate_inference(request())
        device = JETSON_AGX_ORIN
        peak = device.idle_power_w + device.prefill_power_w + device.window_power_w + 1
        assert device.idle_power_w < trace.avg_power_w < peak

    def test_zero_generation(self):
        trace = simulate_inference(request(generated_tokens=0))
        assert trace.decode_s == 0.0

    @given(st.integers(100, 8000), st.integers(1, 400))
    @settings(max_examples=30, deadline=None)
    def test_times_positive_and_finite(self, prompt, gen):
        trace = simulate_inference(request(prompt_tokens=prompt, generated_tokens=gen))
        assert trace.prefill_s > 0
        assert trace.decode_s > 0
        assert trace.energy_j > 0


class TestMeasurementSession:
    def test_aggregates(self):
        session = MeasurementSession()
        session.add_trace(simulate_inference(request()))
        session.add_trace(simulate_inference(request(prompt_tokens=300)))
        session.add_api_latency(0.4)
        session.add_overhead(0.05)
        assert session.total_time_s == pytest.approx(
            session.llm_time_s + 0.45)
        assert session.energy_j > 0
        assert session.avg_power_w > JETSON_AGX_ORIN.idle_power_w * 0.9

    def test_empty_session(self):
        session = MeasurementSession()
        assert session.total_time_s == 0.0
        assert session.avg_power_w == 0.0
        assert session.peak_memory_gb == 0.0

    def test_api_time_draws_idle_power(self):
        busy = MeasurementSession()
        busy.add_trace(simulate_inference(request()))
        waiting = MeasurementSession()
        waiting.add_trace(simulate_inference(request()))
        waiting.add_api_latency(5.0)
        assert waiting.avg_power_w < busy.avg_power_w

    def test_negative_latency_rejected(self):
        session = MeasurementSession()
        with pytest.raises(ValueError):
            session.add_api_latency(-1.0)
        with pytest.raises(ValueError):
            session.add_overhead(-0.1)


class TestTraceProperties:
    def test_total_and_power(self):
        trace = InferenceTrace(prefill_s=2.0, decode_s=3.0, energy_j=100.0,
                               peak_memory_gb=5.0)
        assert trace.total_s == 5.0
        assert trace.avg_power_w == 20.0

    def test_zero_time_power(self):
        trace = InferenceTrace(0.0, 0.0, 0.0, 0.0)
        assert trace.avg_power_w == 0.0

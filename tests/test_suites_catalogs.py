"""Tests for the BFCL and GeoEngine tool catalogs (paper tool counts)."""

import json

import pytest

from repro.suites.bfcl_catalog import build_bfcl_registry
from repro.suites.geoengine_catalog import build_geoengine_registry


@pytest.fixture(scope="module")
def bfcl():
    return build_bfcl_registry()


@pytest.fixture(scope="module")
def geo():
    return build_geoengine_registry()


class TestBfclCatalog:
    def test_exactly_51_tools(self, bfcl):
        # paper Section IV: "51 functions from BFCL"
        assert len(bfcl) == 51

    def test_unique_names(self, bfcl):
        assert len(set(bfcl.names)) == 51

    def test_every_tool_has_description(self, bfcl):
        for tool in bfcl:
            assert len(tool.description.split()) >= 5, tool.name

    def test_category_spread(self, bfcl):
        assert len(bfcl.categories) >= 8

    def test_json_schemas_parse(self, bfcl):
        for tool in bfcl:
            parsed = json.loads(tool.json_text())
            assert parsed["function"]["name"] == tool.name

    def test_enum_parameters_well_formed(self, bfcl):
        units = bfcl.get("get_current_weather").parameter("units")
        assert units.enum == ("metric", "imperial")


class TestGeoCatalog:
    def test_exactly_46_tools(self, geo):
        # paper Section IV: "46 functions from GeoEngine"
        assert len(geo) == 46

    def test_unique_names(self, geo):
        assert len(set(geo.names)) == 46

    def test_every_tool_has_description(self, geo):
        for tool in geo:
            assert len(tool.description.split()) >= 5, tool.name

    def test_domain_categories_present(self, geo):
        assert {"data_access", "detection", "vqa", "visualization",
                "export"} <= set(geo.categories)

    def test_paper_example_tools_exist(self, geo):
        # "Plot the fmow VQA captions in UK from Fall 2009"
        for name in ("load_dataset", "filter_images_by_region",
                     "filter_images_by_season", "generate_vqa_captions",
                     "plot_captions_on_map"):
            assert name in geo, name

    def test_dataset_enum(self, geo):
        dataset = geo.get("load_dataset").parameter("dataset")
        assert "fmow" in dataset.enum

    def test_no_name_collision_between_catalogs(self, bfcl, geo):
        assert not set(bfcl.names) & set(geo.names)

"""Tests for repro.core.levels: offline Search Level construction."""

import numpy as np
import pytest

from repro.core.levels import SearchLevelBuilder
from repro.embedding.cache import shared_embedder
from repro.suites.bfcl import build_bfcl_suite
from repro.suites.geoengine import build_geoengine_suite


@pytest.fixture(scope="module")
def geo_suite():
    return build_geoengine_suite(n_queries=20, n_train=60)


@pytest.fixture(scope="module")
def geo_levels(geo_suite):
    return SearchLevelBuilder(embedder=shared_embedder()).build(geo_suite)


class TestLevel1:
    def test_one_vector_per_tool(self, geo_suite, geo_levels):
        assert len(geo_levels.tool_index) == geo_suite.n_tools
        assert geo_levels.tool_names == geo_suite.registry.names

    def test_tool_lookup_by_own_description(self, geo_suite, geo_levels):
        embedder = shared_embedder()
        hits = 0
        for row, name in enumerate(geo_levels.tool_names[:20]):
            description = geo_suite.registry.get(name).description
            result = geo_levels.tool_index.search_one(embedder.encode_one(description), 1)
            hits += int(result.top()[1] == row)
        assert hits >= 19  # exact self-retrieval on the tool corpus


class TestLevel2:
    def test_clusters_nonempty(self, geo_levels):
        assert geo_levels.n_clusters >= 4
        for cluster in geo_levels.clusters:
            assert cluster.tools
            assert cluster.n_samples >= 1

    def test_cluster_index_matches_cluster_list(self, geo_levels):
        assert len(geo_levels.cluster_index) == geo_levels.n_clusters

    def test_clusters_capture_co_usage(self, geo_suite, geo_levels):
        # load_dataset is chained with region filtering in every workflow:
        # some cluster must contain both (the synergy Level 2 exists for)
        assert any(
            "load_dataset" in cluster.tools and "filter_images_by_region" in cluster.tools
            for cluster in geo_levels.clusters
        )

    def test_tools_of_cluster(self, geo_levels):
        first = geo_levels.clusters[0]
        assert geo_levels.tools_of_cluster(0) == first.tools

    def test_centroids_unit_norm(self, geo_levels):
        for cluster in geo_levels.clusters:
            centroid = geo_levels.cluster_index.reconstruct(cluster.cluster_id)
            assert np.linalg.norm(centroid) == pytest.approx(1.0, abs=1e-6)

    def test_cluster_sizes_are_reductions(self, geo_suite, geo_levels):
        # every cluster must be a strict subset of the pool (paper: the
        # whole point is presenting fewer tools)
        for cluster in geo_levels.clusters:
            assert len(cluster.tools) < geo_suite.n_tools


class TestBuilderOptions:
    def test_explicit_cluster_count(self, geo_suite):
        levels = SearchLevelBuilder(embedder=shared_embedder(), n_clusters=5).build(geo_suite)
        assert levels.n_clusters == 5

    def test_deterministic_build(self, geo_suite):
        a = SearchLevelBuilder(embedder=shared_embedder()).build(geo_suite)
        b = SearchLevelBuilder(embedder=shared_embedder()).build(geo_suite)
        assert [c.tools for c in a.clusters] == [c.tools for c in b.clusters]

    def test_works_on_bfcl(self):
        suite = build_bfcl_suite(n_queries=10, n_train=60)
        levels = SearchLevelBuilder(embedder=shared_embedder()).build(suite)
        assert len(levels.tool_index) == 51
        assert levels.n_clusters >= 4

"""Tests for the vectorized embedding engine: batched-vs-sequential
equivalence, the direction bank, and the batch-aware cache."""

import numpy as np
import pytest

from repro.embedding import DirectionBank, SentenceEmbedder
from repro.embedding.cache import CachedEmbedder
from repro.suites import load_suite

CORPUS = [
    "turn on the smart light in the kitchen",
    "fetch the current weather conditions for a town",
    "translate a sentence into german",
    "",
    "set an alert for seven in the morning",
    "turn on the smart light in the kitchen",  # duplicate on purpose
    "plot a chart of the quarterly results",
]


@pytest.fixture(scope="module")
def embedder():
    return SentenceEmbedder()


class TestBatchedEquivalence:
    def test_batch_bitwise_equals_stacked_encode_one(self, embedder):
        batch = embedder.encode(CORPUS)
        singles = np.stack([embedder.encode_one(text) for text in CORPUS])
        np.testing.assert_array_equal(batch, singles)

    def test_batch_bitwise_stable_across_batch_sizes(self, embedder):
        full = embedder.encode(CORPUS)
        pairs = np.vstack([embedder.encode(CORPUS[i:i + 2])
                           for i in range(0, len(CORPUS), 2)])
        np.testing.assert_array_equal(full, pairs[: len(CORPUS)])

    def test_matches_reference_loop(self, embedder):
        batch = embedder.encode(CORPUS)
        reference = np.stack([embedder.encode_one_reference(text) for text in CORPUS])
        np.testing.assert_allclose(batch, reference, rtol=1e-12, atol=1e-13)

    def test_edgehome_corpus_matches_reference(self, embedder):
        corpus = load_suite("edgehome").registry.descriptions()
        batch = embedder.encode(corpus)
        reference = np.stack([embedder.encode_one_reference(t) for t in corpus])
        np.testing.assert_allclose(batch, reference, rtol=1e-12, atol=1e-13)

    def test_features_match_reference(self, embedder):
        for text in CORPUS:
            assert embedder.features(text) == embedder.features_reference(text)

    def test_cold_vs_warm_start_bitwise(self):
        text = "detect ships in satellite imagery"
        cold = SentenceEmbedder().encode_one(text)
        warm_embedder = SentenceEmbedder()
        warm_embedder.encode(CORPUS)
        np.testing.assert_allclose(cold, warm_embedder.encode_one(text),
                                   rtol=1e-12, atol=1e-13)


class TestDirectionCache:
    def test_direction_count_grows_and_clears(self):
        embedder = SentenceEmbedder()
        assert embedder.direction_count == 0
        embedder.encode(CORPUS)
        count = embedder.direction_count
        assert count > 0
        assert embedder.cache_nbytes == count * embedder.dim * 8
        embedder.clear_cache()
        assert embedder.direction_count == 0
        assert embedder.cache_nbytes == 0

    def test_encode_after_clear_is_equivalent(self):
        embedder = SentenceEmbedder()
        before = embedder.encode(CORPUS)
        embedder.clear_cache()
        np.testing.assert_allclose(before, embedder.encode(CORPUS),
                                   rtol=1e-12, atol=1e-13)

    def test_reseed_rerolls_projection(self):
        embedder = SentenceEmbedder()
        original = embedder.encode_one("weather")
        embedder.reseed("rerolled")
        rerolled = embedder.encode_one("weather")
        assert not np.allclose(original, rerolled)
        # and matches a fresh embedder built in the new namespace
        np.testing.assert_allclose(
            rerolled, SentenceEmbedder(seed_namespace="rerolled").encode_one("weather"))

    def test_bank_intern_is_idempotent(self):
        bank = DirectionBank(dim=16, namespace="t")
        rows = bank.intern([("token", "a"), ("token", "b"), ("token", "a")])
        assert rows == [0, 1, 0]
        assert len(bank) == 2
        again = bank.intern([("token", "b")])
        assert again == [1]
        np.testing.assert_array_equal(bank.matrix[0], bank.direction(("token", "a")))

    def test_bank_directions_are_unit_norm(self):
        bank = DirectionBank(dim=32, namespace="t")
        bank.intern([("token", str(i)) for i in range(300)])  # force growth
        np.testing.assert_allclose(np.linalg.norm(bank.matrix, axis=1), 1.0)


class TestCachedEmbedderBatch:
    def test_batch_partitions_hits_and_misses(self):
        cache = CachedEmbedder()
        calls = []
        inner_encode = cache.embedder.encode
        cache.embedder.encode = lambda texts: (calls.append(list(texts)),
                                               inner_encode(texts))[1]
        cache.encode(CORPUS[:3])
        assert calls == [CORPUS[:3]]
        cache.encode(CORPUS[:5])  # 3 hits, 2 misses -> one batched call
        assert len(calls) == 2
        assert calls[1] == CORPUS[3:5]
        info = cache.cache_info()
        assert info["hits"] == 3
        assert info["size"] == 5

    def test_duplicates_embedded_once(self):
        cache = CachedEmbedder()
        result = cache.encode(["same text", "same text", "other"])
        assert len(cache) == 2
        np.testing.assert_array_equal(result[0], result[1])

    def test_matches_uncached_embedder(self):
        cache = CachedEmbedder()
        np.testing.assert_array_equal(cache.encode(CORPUS),
                                      SentenceEmbedder().encode(CORPUS))
        # warm pass returns identical vectors
        np.testing.assert_array_equal(cache.encode(CORPUS),
                                      SentenceEmbedder().encode(CORPUS))

    def test_lru_bound_evicts_oldest(self):
        cache = CachedEmbedder(max_entries=3)
        cache.encode(["a", "b", "c"])
        cache.encode_one("a")          # refresh "a"
        cache.encode_one("d")          # evicts "b"
        assert len(cache) == 3
        info = cache.cache_info()
        assert info["evictions"] == 1
        assert info["max_entries"] == 3
        calls = []
        inner_encode = cache.embedder.encode
        cache.embedder.encode = lambda texts: (calls.append(list(texts)),
                                               inner_encode(texts))[1]
        cache.encode(["a", "d"])       # both still resident
        assert calls == []
        cache.encode(["b"])            # was evicted -> recompute
        assert calls == [["b"]]

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            CachedEmbedder(max_entries=0)

    def test_clear(self):
        cache = CachedEmbedder()
        cache.encode(["a", "b"])
        cache.clear()
        assert len(cache) == 0

    def test_reseed_invalidates_cached_vectors(self):
        cache = CachedEmbedder()
        before = cache.encode_one("weather in paris").copy()
        cache.embedder.reseed("rerolled")
        after = cache.encode_one("weather in paris")
        assert not np.allclose(before, after)
        np.testing.assert_allclose(
            after, SentenceEmbedder(seed_namespace="rerolled").encode_one("weather in paris"))

    def test_rejects_bare_string(self):
        with pytest.raises(TypeError):
            CachedEmbedder().encode("not a list")

    def test_empty_batch(self):
        assert CachedEmbedder().encode([]).shape == (0, 768)

"""Tests for evaluation statistics and JSON export."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.episode import EpisodeResult, StepRecord
from repro.evaluation.export import dump_run, episode_from_dict, episode_to_dict, load_run
from repro.evaluation.runner import EvaluationRun
from repro.evaluation.metrics import summarize
from repro.evaluation.stats import (
    bootstrap_ci,
    compare_runs,
    success_rate_ci,
    two_proportion_z,
)


def episode(success=True, qid="q0"):
    result = EpisodeResult(qid=qid, scheme="lis", model="m", quant="q",
                           selected_level=1, time_s=5.0, energy_j=100.0,
                           avg_power_w=20.0, n_llm_calls=2,
                           prompt_tokens=500, completion_tokens=60)
    result.steps.append(StepRecord(0, "tool_a", success, success, 5, retried=False))
    return result


class TestBootstrapCI:
    def test_contains_point(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.low <= ci.point <= ci.high
        assert ci.point == pytest.approx(2.5)

    def test_deterministic(self):
        a = bootstrap_ci([0.0, 1.0, 1.0, 0.0, 1.0])
        b = bootstrap_ci([0.0, 1.0, 1.0, 0.0, 1.0])
        assert (a.low, a.high) == (b.low, b.high)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=0.4)

    def test_interval_narrows_with_samples(self):
        rng = np.random.default_rng(0)
        small = bootstrap_ci(rng.normal(size=20))
        large = bootstrap_ci(rng.normal(size=500))
        assert (large.high - large.low) < (small.high - small.low)

    @given(st.lists(st.floats(0, 1), min_size=2, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_bounds_ordered(self, values):
        ci = bootstrap_ci(values, n_resamples=200)
        assert ci.low <= ci.high

    def test_contains_dunder(self):
        ci = bootstrap_ci([0.5] * 10)
        assert 0.5 in ci
        assert 0.9 not in ci


class TestSuccessRateCI:
    def test_metrics(self):
        episodes = [episode(True), episode(False), episode(True)]
        ci = success_rate_ci(episodes)
        assert ci.point == pytest.approx(2 / 3)
        acc_ci = success_rate_ci(episodes, metric="tool_accuracy")
        assert acc_ci.point == pytest.approx(2 / 3)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            success_rate_ci([episode()], metric="latency")


class TestTwoProportionZ:
    def test_identical_rates_p_one(self):
        assert two_proportion_z(5, 10, 5, 10) == pytest.approx(1.0)

    def test_extreme_difference_significant(self):
        assert two_proportion_z(95, 100, 5, 100) < 1e-6

    def test_symmetry(self):
        assert two_proportion_z(30, 100, 50, 100) == pytest.approx(
            two_proportion_z(50, 100, 30, 100))

    def test_validation(self):
        with pytest.raises(ValueError):
            two_proportion_z(1, 0, 1, 10)
        with pytest.raises(ValueError):
            two_proportion_z(11, 10, 1, 10)

    def test_degenerate_all_success(self):
        assert two_proportion_z(10, 10, 10, 10) == 1.0


class TestCompareRuns:
    def test_summary_keys(self):
        a = [episode(True) for _ in range(30)]
        b = [episode(False) for _ in range(30)]
        report = compare_runs(a, b)
        assert report["significant_05"]
        assert report["rate_a"].point == 1.0
        assert report["rate_b"].point == 0.0


class TestExport:
    def test_episode_round_trip(self):
        original = episode(success=False, qid="q42")
        restored = episode_from_dict(episode_to_dict(original))
        assert restored.qid == "q42"
        assert restored.success == original.success
        assert restored.steps == original.steps
        assert restored.prompt_tokens == original.prompt_tokens

    def test_run_round_trip(self):
        episodes = [episode(True, "a"), episode(False, "b")]
        run = EvaluationRun("lis", "m", "q", episodes, summarize(episodes))
        restored = load_run(dump_run(run))
        assert restored.key == run.key
        assert restored.summary.success_rate == run.summary.success_rate
        assert len(restored.episodes) == 2

    def test_real_pipeline_round_trip(self):
        from repro.evaluation.runner import ExperimentRunner
        from repro.suites import load_suite

        runner = ExperimentRunner(load_suite("bfcl", n_queries=5))
        run = runner.run("lis-k3", "qwen2-7b", "q4_K_M")
        restored = load_run(dump_run(run))
        assert restored.summary.success_rate == run.summary.success_rate
        assert restored.summary.mean_time_s == pytest.approx(run.summary.mean_time_s)

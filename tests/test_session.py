"""Session facade: open_session forms, run/run_grid/serve, lazy imports."""

import asyncio
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import AgentSpec, ExperimentSpec, GridSpec, ServingSpec, SuiteSpec, \
    TenantSpec, open_session
from repro.session import Session

MODEL = dict(model="hermes2-pro-8b", quant="q4_K_M")


class TestOpenSessionForms:
    def test_from_suite_name(self):
        session = open_session("edgehome", n_queries=4)
        assert session.suite.name == "edgehome"
        assert len(session.suite.queries) == 4

    def test_from_suite_spec(self):
        session = open_session(SuiteSpec(name="bfcl", n_queries=3))
        assert session.suite.name == "bfcl"

    def test_from_experiment_spec(self):
        spec = ExperimentSpec(suite=SuiteSpec(name="edgehome", n_queries=3),
                              agent=AgentSpec(scheme="default", **MODEL))
        run = open_session(spec).run()
        assert [e.scheme for e in run.episodes] == ["default"] * 3

    def test_from_dict(self):
        session = open_session({"suite": {"name": "edgehome", "n_queries": 2,
                                          "seed": None}})
        assert len(session.suite.queries) == 2

    def test_from_suite_object(self):
        from repro.suites import load_suite

        suite = load_suite("edgehome", n_queries=3)
        session = open_session(suite=suite)
        assert session.suite is suite

    def test_from_serving_spec(self):
        spec = ServingSpec(tenants=(TenantSpec("home", "edgehome"),))
        session = open_session(spec)
        assert session.spec.serving is spec

    def test_rejects_nothing(self):
        with pytest.raises(ValueError, match="open_session needs"):
            open_session()

    def test_rejects_n_queries_with_non_string_spec(self):
        """n_queries/seed must not be silently dropped for spec inputs."""
        with pytest.raises(ValueError, match="n_queries/seed only apply"):
            open_session(SuiteSpec(name="bfcl"), n_queries=20)
        with pytest.raises(ValueError, match="n_queries/seed only apply"):
            open_session(ExperimentSpec(suite=SuiteSpec(name="bfcl")), seed=7)

    def test_session_rejects_non_spec(self):
        with pytest.raises(TypeError, match="ExperimentSpec"):
            Session("edgehome")

    def test_suiteless_session_explains(self):
        session = open_session(ServingSpec(
            tenants=(TenantSpec("home", "edgehome"),)))
        with pytest.raises(ValueError, match="no suite"):
            _ = session.suite


class TestSessionRuns:
    @pytest.fixture(scope="class")
    def session(self):
        return open_session("edgehome", n_queries=4)

    def test_run_with_explicit_spec(self, session):
        run = session.run(AgentSpec(scheme="lis-k3", **MODEL))
        assert run.scheme == "lis-k3"
        assert len(run.episodes) == 4

    def test_run_scheme_shorthand_uses_spec_defaults(self):
        spec = ExperimentSpec(suite=SuiteSpec(name="edgehome", n_queries=2),
                              agent=AgentSpec(scheme="lis-k3", **MODEL))
        session = open_session(spec)
        run = session.run("default")
        assert run.scheme == "default"
        assert run.model == "hermes2-pro-8b"

    def test_run_without_agent_spec_explains(self, session):
        with pytest.raises(ValueError, match="AgentSpec"):
            session.run()

    def test_run_grid_matches_individual_runs(self, session):
        grid = GridSpec(schemes=("default", "lis-k3"),
                        models=("hermes2-pro-8b",), quants=("q4_K_M",),
                        backend="sequential", n_queries=3)
        results = session.run_grid(grid)
        assert set(results) == {("default", "hermes2-pro-8b", "q4_K_M"),
                                ("lis-k3", "hermes2-pro-8b", "q4_K_M")}
        solo = session.run(AgentSpec(scheme="lis-k3", **MODEL), n_queries=3)
        assert results[("lis-k3", "hermes2-pro-8b", "q4_K_M")].episodes \
            == solo.episodes

    def test_run_grid_without_spec_explains(self, session):
        with pytest.raises(ValueError, match="GridSpec"):
            session.run_grid()

    def test_shared_levels_across_agents(self, session):
        lis_a = session.build_agent(AgentSpec(scheme="lis-k3", **MODEL))
        lis_b = session.build_agent(AgentSpec(scheme="lis-k5", **MODEL))
        assert lis_a.levels is lis_b.levels

    def test_agent_knobs_from_spec(self, session):
        agent = session.build_agent(AgentSpec(
            scheme="lis-k3", confidence_threshold=0.4, force_level=2, **MODEL))
        assert agent.controller.force_level == 2


class TestSessionServe:
    def test_serve_from_tenant_specs(self):
        spec = ServingSpec(
            tenants=(TenantSpec("home", SuiteSpec("edgehome", n_queries=4)),),
            max_batch_size=4, max_wait_ms=1.0)
        session = open_session(spec)

        async def scenario():
            async with session.serve() as gateway:
                query = gateway.sessions.get("home").suite.queries[0]
                return await gateway.submit("home", query)

        response = asyncio.run(scenario())
        assert response.tenant == "home"
        assert response.episode.qid.startswith("edge")

    def test_serve_defaults_to_session_suite(self):
        session = open_session("edgehome", n_queries=4)

        async def scenario():
            async with session.serve(ServingSpec(max_batch_size=2,
                                                 max_wait_ms=1.0)) as gateway:
                query = session.suite.queries[0]
                return await gateway.submit("edgehome", query)

        response = asyncio.run(scenario())
        assert response.tenant == "edgehome"

    def test_serve_shares_session_embedder(self):
        session = open_session("edgehome", n_queries=4)
        gateway = session.serve()
        assert gateway.sessions.embedder is session.embedder


class TestLazyPackageImport:
    def test_import_repro_is_cheap(self):
        """`import repro` must not drag in any heavy submodule."""
        code = (
            "import sys; import repro; "
            "heavy = sorted(m for m in sys.modules if m.startswith('repro.')); "
            "print(','.join(heavy))"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONPATH=src)
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        loaded = [m for m in out.stdout.strip().split(",") if m]
        assert loaded == [], f"import repro loaded: {loaded}"

    def test_public_names_import_from_package_root(self):
        code = (
            "from repro import open_session, AgentSpec, load_suite; "
            "print('ok')"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONPATH=src)
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == "ok"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist

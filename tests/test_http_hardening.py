"""Edge hardening on the HTTP front door: API-key auth + rate limiting.

Both knobs live on :class:`~repro.specs.HttpSpec` and are **off by
default** — the first tests pin that, so adding hardening cannot break
an existing deployment.  Auth is a Bearer check in front of routing
(``/healthz`` stays open for probes); rate limiting is a per-tenant
token bucket answering 429 with a ``Retry-After`` hint.  The
:class:`~repro.serving.http.limits.RateLimiter` itself is tested with
an injected clock — no sleeps, no flakes.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.embedding.cache import CachedEmbedder
from repro.serving import Gateway, ServingConfig, SessionManager
from repro.serving.http import ASGITestClient, create_app
from repro.serving.http.limits import RateLimiter
from repro.specs import HttpSpec
from repro.suites import load_suite

MODEL, QUANT = "hermes2-pro-8b", "q4_K_M"


@pytest.fixture(scope="module")
def suite():
    return load_suite("edgehome", n_queries=6)


def make_app(suite, http: HttpSpec | None = None):
    sessions = SessionManager(embedder=CachedEmbedder())
    sessions.register("home", suite)
    config = ServingConfig(max_batch_size=4, max_wait_ms=2.0,
                           default_scheme="lis-k3", default_model=MODEL,
                           default_quant=QUANT)
    return create_app(Gateway(sessions, config=config), http=http)


def serve(suite, scenario, http: HttpSpec | None = None):
    async def go():
        app = make_app(suite, http=http)
        async with app:
            return await scenario(ASGITestClient(app), app)

    return asyncio.run(go())


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# the token bucket itself
# ----------------------------------------------------------------------
class TestRateLimiter:
    def test_burst_defaults_to_ceil_rps(self):
        assert RateLimiter(2.5).burst == 3
        assert RateLimiter(0.5).burst == 1
        assert RateLimiter(4.0, burst=10).burst == 10

    def test_rps_must_be_positive(self):
        with pytest.raises(ValueError, match="rps"):
            RateLimiter(0.0)

    def test_burst_admitted_then_throttled(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=2, clock=clock)
        assert limiter.try_acquire("t") == 0.0
        assert limiter.try_acquire("t") == 0.0
        wait = limiter.try_acquire("t")
        assert wait == pytest.approx(1.0)  # bucket empty: 1 token / 1 rps

    def test_refills_over_time(self):
        clock = FakeClock()
        limiter = RateLimiter(2.0, burst=1, clock=clock)
        assert limiter.try_acquire("t") == 0.0
        assert limiter.try_acquire("t") > 0.0
        clock.advance(0.5)  # 2 rps x 0.5 s = exactly one token back
        assert limiter.try_acquire("t") == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        limiter = RateLimiter(10.0, burst=2, clock=clock)
        clock.advance(3600.0)  # an hour idle never banks more than burst
        assert limiter.try_acquire("t") == 0.0
        assert limiter.try_acquire("t") == 0.0
        assert limiter.try_acquire("t") > 0.0

    def test_keys_are_independent(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=1, clock=clock)
        assert limiter.try_acquire("tenant-a") == 0.0
        assert limiter.try_acquire("tenant-a") > 0.0
        assert limiter.try_acquire("tenant-b") == 0.0  # own bucket

    def test_wait_hint_shrinks_as_bucket_refills(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=1, clock=clock)
        limiter.try_acquire("t")
        long_wait = limiter.try_acquire("t")
        clock.advance(0.6)
        short_wait = limiter.try_acquire("t")
        assert 0.0 < short_wait < long_wait


# ----------------------------------------------------------------------
# HttpSpec knobs
# ----------------------------------------------------------------------
class TestHttpSpec:
    def test_hardening_off_by_default(self):
        spec = HttpSpec()
        assert spec.api_key is None
        assert spec.rate_limit_rps is None

    def test_burst_requires_rps(self):
        with pytest.raises(ValueError, match="rate_limit_rps"):
            HttpSpec(rate_limit_burst=5)

    def test_rps_must_be_positive(self):
        with pytest.raises(ValueError, match="rate_limit_rps"):
            HttpSpec(rate_limit_rps=0.0)

    def test_empty_api_key_rejected(self):
        with pytest.raises(ValueError, match="api_key"):
            HttpSpec(api_key="")


# ----------------------------------------------------------------------
# Bearer auth in front of routing
# ----------------------------------------------------------------------
AUTH = HttpSpec(api_key="sk-secret")


class TestAuth:
    def test_off_by_default(self, suite):
        async def scenario(client, app):
            return await client.get("/v1/tenants")

        assert serve(suite, scenario).status == 200

    def test_missing_key_is_401(self, suite):
        async def scenario(client, app):
            return await client.get("/v1/tenants")

        response = serve(suite, scenario, http=AUTH)
        assert response.status == 401
        assert response.headers["www-authenticate"] == "Bearer"
        error = response.json()["error"]
        assert error["type"] == "Unauthorized"
        assert "Bearer" in error["message"]

    def test_wrong_key_is_401(self, suite):
        async def scenario(client, app):
            return await client.post(
                "/v1/call", {"tenant": "home"},
                headers={"Authorization": "Bearer sk-wrong"})

        assert serve(suite, scenario, http=AUTH).status == 401

    def test_non_bearer_scheme_is_401(self, suite):
        async def scenario(client, app):
            return await client.get(
                "/v1/tenants", headers={"Authorization": "Basic dXNlcg=="})

        assert serve(suite, scenario, http=AUTH).status == 401

    def test_correct_key_passes(self, suite):
        qid = suite.queries[0].qid

        async def scenario(client, app):
            return await client.post(
                "/v1/call", {"tenant": "home", "qid": qid},
                headers={"Authorization": "Bearer sk-secret"})

        response = serve(suite, scenario, http=AUTH)
        assert response.status == 200
        assert response.json()["episode"]["qid"] == qid

    def test_scheme_word_is_case_insensitive(self, suite):
        async def scenario(client, app):
            return await client.get(
                "/v1/tenants", headers={"Authorization": "bearer sk-secret"})

        assert serve(suite, scenario, http=AUTH).status == 200

    def test_healthz_exempt_for_probes(self, suite):
        async def scenario(client, app):
            return await client.get("/healthz")

        response = serve(suite, scenario, http=AUTH)
        assert response.status == 200
        assert response.json()["status"] == "ok"


# ----------------------------------------------------------------------
# per-tenant rate limiting on /v1/call
# ----------------------------------------------------------------------
class TestRateLimiting:
    def test_429_with_retry_after(self, suite):
        qid = suite.queries[0].qid
        http = HttpSpec(rate_limit_rps=1.0, rate_limit_burst=1)

        async def scenario(client, app):
            # deterministic: freeze the limiter's clock so the second
            # request always lands inside the same bucket window
            app.rate_limiter = RateLimiter(1.0, burst=1, clock=FakeClock())
            first = await client.post("/v1/call",
                                      {"tenant": "home", "qid": qid})
            second = await client.post("/v1/call",
                                       {"tenant": "home", "qid": qid})
            return first, second

        first, second = serve(suite, scenario, http=http)
        assert first.status == 200
        assert second.status == 429
        assert int(second.headers["retry-after"]) >= 1
        error = second.json()["error"]
        assert error["type"] == "RateLimited"
        assert "home" in error["message"]
        assert error["retry_after_s"] > 0.0

    def test_tenants_throttle_independently(self, suite):
        qid = suite.queries[0].qid
        http = HttpSpec(rate_limit_rps=1.0, rate_limit_burst=1)

        async def scenario(client, app):
            app.rate_limiter = RateLimiter(1.0, burst=1, clock=FakeClock())
            sessions = app.gateway.sessions
            sessions.register("work", suite)
            home = await client.post("/v1/call",
                                     {"tenant": "home", "qid": qid})
            throttled = await client.post("/v1/call",
                                          {"tenant": "home", "qid": qid})
            work = await client.post("/v1/call",
                                     {"tenant": "work", "qid": qid})
            return home, throttled, work

        home, throttled, work = serve(suite, scenario, http=http)
        assert home.status == 200
        assert throttled.status == 429
        assert work.status == 200  # a noisy neighbour starves nobody else

    def test_refill_readmits(self, suite):
        qid = suite.queries[0].qid
        http = HttpSpec(rate_limit_rps=1.0, rate_limit_burst=1)

        async def scenario(client, app):
            clock = FakeClock()
            app.rate_limiter = RateLimiter(1.0, burst=1, clock=clock)
            await client.post("/v1/call", {"tenant": "home", "qid": qid})
            throttled = await client.post("/v1/call",
                                          {"tenant": "home", "qid": qid})
            clock.advance(1.5)
            recovered = await client.post("/v1/call",
                                          {"tenant": "home", "qid": qid})
            return throttled, recovered

        throttled, recovered = serve(suite, scenario, http=http)
        assert throttled.status == 429
        assert recovered.status == 200

    def test_off_by_default(self, suite):
        qid = suite.queries[0].qid

        async def scenario(client, app):
            assert app.rate_limiter is None
            responses = []
            for _ in range(5):
                responses.append(await client.post(
                    "/v1/call", {"tenant": "home", "qid": qid}))
            return responses

        assert all(r.status == 200 for r in serve(suite, scenario))

    def test_auth_and_limits_compose(self, suite):
        qid = suite.queries[0].qid
        http = HttpSpec(api_key="sk-secret", rate_limit_rps=1.0,
                        rate_limit_burst=1)
        bearer = {"Authorization": "Bearer sk-secret"}

        async def scenario(client, app):
            app.rate_limiter = RateLimiter(1.0, burst=1, clock=FakeClock())
            unauthed = await client.post("/v1/call",
                                         {"tenant": "home", "qid": qid})
            ok = await client.post("/v1/call", {"tenant": "home", "qid": qid},
                                   headers=bearer)
            throttled = await client.post(
                "/v1/call", {"tenant": "home", "qid": qid}, headers=bearer)
            return unauthed, ok, throttled

        unauthed, ok, throttled = serve(suite, scenario, http=http)
        assert unauthed.status == 401  # auth wins before the bucket
        assert ok.status == 200
        assert throttled.status == 429
